"""Table I, rows 7-9: the Complex Layout (r_t = 3 min, r_s = 1 km).

Paper values:   verification 14025 vars / UNSAT / 22 sections /  63.33 s
                generation   14025 vars / SAT   / 23 sections / 17 steps
                optimization 14025 vars / SAT   / 25 sections / 14 steps
"""

from __future__ import annotations

from conftest import record_row

from repro.tasks import generate_layout, optimize_schedule, verify_schedule


def test_verification(benchmark, studies):
    study = studies["Complex Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: verify_schedule(net, study.schedule, study.r_t_min),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[0], result)
    assert not result.satisfiable
    assert result.num_sections == 22  # paper: 22 TTDs


def test_generation(benchmark, studies):
    study = studies["Complex Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: generate_layout(net, study.schedule, study.r_t_min),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[1], result)
    assert result.satisfiable and result.proven_optimal
    assert result.num_sections == 23  # paper: 23 sections
    assert result.time_steps == 17  # paper: 17 steps


def test_optimization(benchmark, studies):
    study = studies["Complex Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min,
            minimize_borders_secondary=True,
        ),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[2], result)
    assert result.satisfiable and result.proven_optimal
    # Paper: 25 sections / 14 steps; the optimum must beat generation's 17.
    assert result.time_steps < 17
    assert 22 < result.num_sections <= 27
