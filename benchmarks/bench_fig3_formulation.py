"""Fig. 3 / Examples 3-5: the symbolic formulation of the running example.

The paper's discretisation at r_s = 0.5 km / r_t = 0.5 min yields 16
segments, 10 time steps, and 654 variables (640 occupies + borders).  This
bench regenerates those numbers and sweeps the resolutions to show how the
formulation scales (the paper's discretisation trade-off).
"""

from __future__ import annotations

from repro.encoding.encoder import EtcsEncoding
from repro.network.discretize import DiscreteNetwork


def test_example3_graph_representation(benchmark, studies):
    """Example 3: r_s = 0.5 km turns Fig. 1 into the Fig. 3 graph."""
    study = studies["Running Example"]
    net = benchmark(lambda: DiscreteNetwork(study.network, 0.5))
    benchmark.extra_info["segments"] = net.num_segments
    benchmark.extra_info["vertices"] = net.num_vertices
    assert net.num_segments == 16
    assert net.num_ttds == 4


def test_example5_time_discretisation(benchmark, studies):
    """Example 5: r_t = 0.5 min over 5 minutes -> 10 time steps."""
    study = studies["Running Example"]
    net = study.discretize()

    def build():
        return EtcsEncoding(net, study.schedule, study.r_t_min).build()

    encoding = benchmark.pedantic(build, rounds=1, iterations=1)
    stats = encoding.stats()
    benchmark.extra_info["t_max"] = stats["t_max"]
    benchmark.extra_info["paper_equivalent_vars"] = stats[
        "paper_equivalent_vars"
    ]
    benchmark.extra_info["actual_vars_after_cone"] = stats["total"]
    benchmark.extra_info["clauses"] = stats["clauses"]
    assert stats["t_max"] == 10
    # Paper: 654 variables; ours differ only by endpoint-vertex counting.
    assert abs(stats["paper_equivalent_vars"] - 654) <= 10


def test_resolution_sweep(benchmark, studies):
    """Formulation size as a function of the spatial resolution."""
    study = studies["Running Example"]

    def sweep():
        sizes = {}
        for r_s in (1.0, 0.5, 0.25):
            net = DiscreteNetwork(study.network, r_s)
            encoding = EtcsEncoding(net, study.schedule, study.r_t_min)
            encoding.build()
            sizes[r_s] = {
                "segments": net.num_segments,
                "paper_vars": encoding.paper_equivalent_vars(),
                "clauses": encoding.cnf.num_clauses,
            }
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["sizes"] = sizes
    # Halving r_s roughly doubles segments and variables.
    assert sizes[0.25]["segments"] == 2 * sizes[0.5]["segments"]
    assert sizes[0.5]["paper_vars"] > sizes[1.0]["paper_vars"]


def test_temporal_resolution_sweep(benchmark, studies):
    """Formulation size as a function of the temporal resolution."""
    study = studies["Running Example"]
    net = study.discretize()

    def sweep():
        sizes = {}
        for r_t in (1.0, 0.5, 0.25):
            encoding = EtcsEncoding(net, study.schedule, r_t)
            encoding.build()
            sizes[r_t] = {
                "t_max": encoding.t_max,
                "paper_vars": encoding.paper_equivalent_vars(),
            }
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["sizes"] = sizes
    assert sizes[0.25]["t_max"] == 2 * sizes[0.5]["t_max"]
