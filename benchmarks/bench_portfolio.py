"""Portfolio vs serial wall-clock on Table I case studies.

Races the 2-process portfolio against the single-config serial solver on
the verification and generation tasks of the Running Example and the Simple
Layout, asserting that the verdicts and decoded metadata agree exactly and
recording the speedup ratio in ``benchmark.extra_info``.

When does parallelism help?  The portfolio keeps the serial configuration
as its primary member, so a SAT answer costs at most the serial time (plus
process overhead); the win comes from UNSAT answers — infeasible
verifications and the final "prove optimality" steps of a descent — where
the *fastest* diversified member decides for everyone.  Consequently:

* on a **single-core host** (such as a 1-CPU CI container) the workers
  time-slice one core and the portfolio measures ~parity-to-slower than
  serial — the recorded ``speedup`` will be <= 1.  That is expected and
  documented, not a regression: the verdict/metadata equality assertions
  are what must hold everywhere;
* with **two or more cores** the UNSAT-heavy rows (every ``verification``
  row of Table I is UNSAT, and every descent ends in an UNSAT bound proof)
  inherit the minimum member runtime, which is where the measured speedup
  materialises.

``speedup = serial_s / portfolio_s`` (> 1 means the portfolio won) is
recorded for each case so the claim is checkable on any machine.

The numbers are funnelled through the same :class:`MetricsRegistry` as the
pipeline's ``--metrics`` output, under stable ``bench.*`` keys, so BENCH
JSON and task metrics share one vocabulary.
"""

from __future__ import annotations

import os
import time

from repro.obs.metrics import MetricsRegistry
from repro.tasks import generate_layout, verify_schedule

PROCESSES = 2


def _best_of(fn, repeat=3):
    """Run ``fn`` a few times; return (last value, best wall time)."""
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return value, best


def _record(benchmark, serial, serial_s, portfolio, portfolio_s):
    reg = MetricsRegistry()
    reg.set("bench.processes", PROCESSES)
    reg.set("bench.host_cpus", os.cpu_count())
    reg.set("bench.serial_s", round(serial_s, 4))
    reg.set("bench.portfolio_s", round(portfolio_s, 4))
    reg.set("bench.speedup", round(serial_s / portfolio_s, 3))
    reg.merge_dict(portfolio.metrics)
    benchmark.extra_info.update(
        {
            **reg.as_dict(),
            "verdict": serial.satisfiable,
            "winner": (portfolio.portfolio or {}).get("winner_name")
            or (portfolio.portfolio or {}).get("winners"),
        }
    )
    assert portfolio.satisfiable == serial.satisfiable
    assert portfolio.num_sections == serial.num_sections


def _bench_case(benchmark, study, task_fn):
    net = study.discretize()
    serial, serial_s = _best_of(
        lambda: task_fn(net, study.schedule, study.r_t_min)
    )
    __, portfolio_s = _best_of(
        lambda: task_fn(net, study.schedule, study.r_t_min,
                        parallel=PROCESSES)
    )
    portfolio = benchmark(
        lambda: task_fn(net, study.schedule, study.r_t_min,
                        parallel=PROCESSES)
    )
    _record(benchmark, serial, serial_s, portfolio, portfolio_s)
    return serial, portfolio


def test_verify_running_example(benchmark, studies):
    serial, portfolio = _bench_case(
        benchmark, studies["Running Example"], verify_schedule
    )
    assert not portfolio.satisfiable  # paper: No


def test_generate_running_example(benchmark, studies):
    serial, portfolio = _bench_case(
        benchmark, studies["Running Example"], generate_layout
    )
    assert portfolio.satisfiable
    assert portfolio.objective_value == serial.objective_value


def test_verify_simple_layout(benchmark, studies):
    serial, portfolio = _bench_case(
        benchmark, studies["Simple Layout"], verify_schedule
    )
    assert not portfolio.satisfiable  # paper: No


def test_generate_simple_layout(benchmark, studies):
    serial, portfolio = _bench_case(
        benchmark, studies["Simple Layout"], generate_layout
    )
    assert portfolio.satisfiable
    assert portfolio.objective_value == serial.objective_value
