"""Lazy (CEGAR) vs eager VSS encoding across the four case studies.

Runs the verification task on each case study twice — once with the
eager encoder (every cross-train clause instantiated up front) and once
with the lazy CEGAR loop (:mod:`repro.encoding.lazy`, only *violated*
separation/collision/swap instances added between solver calls) — and
records clause counts, refinement rounds, and wall time under stable
``bench.lazy.*`` keys.  The generation descent is benchmarked on the
running example the same way, and every cell of the refiner's
grouping/selection strategy matrix is timed on that descent under
``bench.lazy.strategy.*`` — the data that picks
:data:`~repro.encoding.lazy.DESCENT_LAZY_STRATEGY`.

The verdict/objective agreement between the modes is asserted, so the
benchmark doubles as an end-to-end differential check.

Run via ``make bench-lazy`` (writes ``BENCH_lazy.json``) or directly::

    PYTHONPATH=src python benchmarks/bench_lazy.py --out out.json
"""

from __future__ import annotations

import argparse
import os
import time

from repro.casestudies.base import all_case_studies
from repro.casestudies.running_example import running_example
from repro.encoding.lazy import DEFAULT_LAZY_STRATEGY, DESCENT_LAZY_STRATEGY
from repro.obs.metrics import MetricsRegistry
from repro.tasks import generate_layout, verify_schedule

REPEAT = 2


def _slug(name: str) -> str:
    return name.lower().replace(" ", "-")


def _best_of(fn, repeat: int = REPEAT):
    """Run ``fn`` a few times; return (last value, best wall time)."""
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return value, best


def bench_verification(reg: MetricsRegistry, study) -> None:
    net = study.discretize()

    def run(lazy: bool):
        return verify_schedule(
            net, study.schedule, study.r_t_min, lazy=lazy
        )

    eager, eager_s = _best_of(lambda: run(False))
    lazy, lazy_s = _best_of(lambda: run(True))

    assert lazy.satisfiable == eager.satisfiable, study.name

    prefix = f"bench.lazy.{_slug(study.name)}."
    eager_clauses = eager.clauses
    lazy_clauses = lazy.clauses
    reg.set(f"{prefix}eager_clauses", eager_clauses)
    reg.set(f"{prefix}lazy_clauses", lazy_clauses)
    reg.set(f"{prefix}clauses_saved", eager_clauses - lazy_clauses)
    reg.set(f"{prefix}rounds", lazy.metrics.get("lazy.rounds", 0))
    reg.set(f"{prefix}constraints_added",
            lazy.metrics.get("lazy.constraints_added", 0))
    reg.set(f"{prefix}eager_s", round(eager_s, 4))
    reg.set(f"{prefix}lazy_s", round(lazy_s, 4))
    reg.set(f"{prefix}speedup", round(eager_s / lazy_s, 3))
    print(f"{study.name}: clauses {eager_clauses} -> {lazy_clauses} "
          f"(saved {eager_clauses - lazy_clauses}), "
          f"wall {eager_s:.3f}s -> {lazy_s:.3f}s")


def bench_generation(reg: MetricsRegistry) -> None:
    """Lazy vs eager generation descent on the running example."""
    study = running_example()
    net = study.discretize()

    def run(lazy: bool):
        return generate_layout(
            net, study.schedule, study.r_t_min, lazy=lazy
        )

    eager, eager_s = _best_of(lambda: run(False))
    lazy, lazy_s = _best_of(lambda: run(True))

    assert lazy.satisfiable == eager.satisfiable
    assert lazy.objective_value == eager.objective_value

    prefix = "bench.lazy.generation."
    reg.set(f"{prefix}eager_s", round(eager_s, 4))
    reg.set(f"{prefix}lazy_s", round(lazy_s, 4))
    reg.set(f"{prefix}speedup", round(eager_s / lazy_s, 3))
    reg.set(f"{prefix}rounds", lazy.metrics.get("lazy.rounds", 0))
    reg.set(f"{prefix}clauses_saved",
            lazy.metrics.get("lazy.clauses_saved", 0))
    print(f"generation (running example): wall {eager_s:.3f}s -> "
          f"{lazy_s:.3f}s, objective {lazy.objective_value} (agree)")


def bench_strategy_matrix(reg: MetricsRegistry, repeat: int = 3) -> None:
    """Time every strategy cell on the running-example descent.

    The eager reference and all six cells are measured *interleaved*
    (one full sweep per repeat, best-of per config) so a load drift on
    the host hits every config alike instead of skewing the ratios.
    """
    study = running_example()
    net = study.discretize()

    def run(lazy: bool, strategy: str = DEFAULT_LAZY_STRATEGY):
        return generate_layout(
            net, study.schedule, study.r_t_min, lazy=lazy,
            lazy_strategy=strategy,
        )

    cells = [
        f"{grouping}/{selection}"
        for grouping in ("violation", "pair", "family")
        for selection in ("all", "first-1")
    ]
    configs: list[str | None] = [None, *cells]  # None = eager reference
    best: dict[str | None, float] = {}
    results: dict[str | None, object] = {}
    for __ in range(repeat):
        for config in configs:
            start = time.perf_counter()
            result = run(config is not None, config or DEFAULT_LAZY_STRATEGY)
            elapsed = time.perf_counter() - start
            if config not in best or elapsed < best[config]:
                best[config] = elapsed
            results[config] = result

    eager = results[None]
    eager_s = best[None]
    print("strategy matrix (generation descent, running example):")
    for cell in cells:
        result, wall = results[cell], best[cell]
        assert result.satisfiable == eager.satisfiable, cell
        assert result.objective_value == eager.objective_value, cell
        prefix = f"bench.lazy.strategy.{cell.replace('/', '-')}."
        reg.set(f"{prefix}wall_s", round(wall, 4))
        reg.set(f"{prefix}speedup", round(eager_s / wall, 3))
        reg.set(f"{prefix}rounds", result.metrics.get("lazy.rounds", 0))
        marker = " *" if cell == DESCENT_LAZY_STRATEGY else ""
        print(f"  {cell:18s} {wall:.3f}s "
              f"({eager_s / wall:.2f}x vs eager, "
              f"{result.metrics.get('lazy.rounds', 0)} rounds){marker}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_lazy.json",
                        help="output JSON path (MetricsRegistry format)")
    parser.add_argument("--history", default="BENCH_HISTORY.jsonl",
                        help="bench history JSONL to append to "
                             "('' disables)")
    args = parser.parse_args(argv)

    reg = MetricsRegistry()
    reg.set("bench.host_cpus", os.cpu_count())
    for study in all_case_studies():
        bench_verification(reg, study)
    bench_generation(reg)
    bench_strategy_matrix(reg)
    reg.write_json(args.out)
    print(f"wrote {args.out}")
    if args.history:
        from history import append_history

        append_history("lazy", reg.as_dict(), path=args.history)
        print(f"history -> {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
