"""Fig. 1 / Example 2: the Fig. 1b schedule deadlocks on pure TTDs, and a
VSS enrichment of the same network (Fig. 1a's 7 sections) makes it feasible.

The paper's narrative: "after all four trains have departed, all four TTDs
are blocked and no train can move on" — verified here as UNSAT — while the
VSS layout found by the generation task realises the schedule.
"""

from __future__ import annotations

from repro.network.sections import VSSLayout
from repro.tasks import generate_layout, verify_schedule


def test_pure_ttd_deadlock(benchmark, studies):
    """Example 2, first half: verification fails on the pure TTD layout."""
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark(
        lambda: verify_schedule(
            net, study.schedule, study.r_t_min,
            layout=VSSLayout.pure_ttd(net),
        )
    )
    benchmark.extra_info["paper"] = "UNSAT (all four TTDs blocked)"
    benchmark.extra_info["measured_sat"] = result.satisfiable
    assert not result.satisfiable


def test_vss_layout_repairs_schedule(benchmark, studies):
    """Example 2, second half: a VSS layout realises the Fig. 1b schedule."""
    study = studies["Running Example"]
    net = study.discretize()
    generated = generate_layout(net, study.schedule, study.r_t_min)
    assert generated.satisfiable
    layout = generated.solution.layout

    result = benchmark(
        lambda: verify_schedule(
            net, study.schedule, study.r_t_min, layout=layout
        )
    )
    benchmark.extra_info["paper"] = "SAT with VSS (Fig. 1a layout)"
    benchmark.extra_info["measured_sat"] = result.satisfiable
    benchmark.extra_info["sections"] = layout.num_sections
    assert result.satisfiable


def test_finest_vss_also_works(benchmark, studies):
    """Sanity bound: the finest VSS split trivially dominates."""
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark(
        lambda: verify_schedule(
            net, study.schedule, study.r_t_min,
            layout=VSSLayout.finest(net),
        )
    )
    benchmark.extra_info["sections"] = net.num_segments
    assert result.satisfiable
