"""CDCL core throughput: legacy object-graph loop vs the array kernel.

Times the raw solver — clause loading plus one search — on the eager
verification CNFs of the running example and Nordlandsbanen, once per
available engine (``legacy``, ``interpreted``, and ``compiled`` when the
optional extension is built), and records propagations per second of
search under stable ``bench.core.*`` keys.

Because the kernel is trace-lockstep with the legacy engine (same
decisions, same conflicts, same learned clauses under a fixed seed),
the propagation *count* is identical across engines and the props/s
ratio is a pure interpreter-overhead measurement; the benchmark asserts
that lockstep (verdict + search counters) on every instance, so it
doubles as an end-to-end differential check.

Run via ``make bench-core`` (writes ``BENCH_core.json``) or directly::

    PYTHONPATH=src python benchmarks/bench_core.py --out out.json
"""

from __future__ import annotations

import argparse
import os
import time

from repro.casestudies.base import all_case_studies
from repro.obs.metrics import MetricsRegistry
from repro.sat.kernel import kernel_build
from repro.sat.solver import Solver
from repro.sat.types import SolverConfig
from repro.tasks.common import build_encoding

#: Case studies the acceptance gate names; the remaining two are close
#: cousins of Nordlandsbanen and would only slow the CI lane down.
INSTANCES = ("Running Example", "Nordlandsbanen")

REPEAT = 3


def _slug(name: str) -> str:
    return name.lower().replace(" ", "-")


def available_engines() -> list[str]:
    """Engines this host can run: legacy, interpreted, compiled-if-built."""
    engines = ["legacy", "interpreted"]
    if kernel_build() == "compiled":
        engines.append("compiled")
    return engines


def run_engine(kind: str, num_vars: int, clauses: list[list[int]]) -> dict:
    """Best-of-``REPEAT`` load/solve timings for one engine."""
    best_load = best_solve = None
    fingerprint = None
    for __ in range(REPEAT):
        solver = Solver(SolverConfig(kernel=kind))
        start = time.perf_counter()
        solver.ensure_var(max(num_vars, 1))
        for clause in clauses:
            solver.add_clause(clause)
        load_s = time.perf_counter() - start
        start = time.perf_counter()
        verdict = solver.solve()
        solve_s = time.perf_counter() - start
        best_load = load_s if best_load is None else min(best_load, load_s)
        best_solve = (
            solve_s if best_solve is None else min(best_solve, solve_s)
        )
        stats = solver.stats
        fingerprint = (
            verdict,
            stats.propagations,
            stats.conflicts,
            stats.decisions,
            stats.restarts,
        )
    return {
        "load_s": best_load,
        "solve_s": best_solve,
        "fingerprint": fingerprint,
        "props_per_s": fingerprint[1] / best_solve if best_solve else 0.0,
    }


def bench_instance(reg: MetricsRegistry, study, engines) -> None:
    encoding = build_encoding(
        study.discretize(), study.schedule, study.r_t_min, None
    )
    clauses = encoding.cnf.clauses
    num_vars = encoding.cnf.num_vars
    prefix = f"bench.core.{_slug(study.name)}."
    reg.set(f"{prefix}vars", num_vars)
    reg.set(f"{prefix}clauses", len(clauses))

    results = {}
    # Interleave the engines per repeat? The engines run back to back,
    # best-of-3 each; load drift over a <10 s window is below the gate's
    # noise threshold.
    for kind in engines:
        results[kind] = run_engine(kind, num_vars, clauses)

    reference = results["legacy"]["fingerprint"]
    for kind, result in results.items():
        # Lockstep: every engine must search the exact same tree.
        assert result["fingerprint"] == reference, (
            study.name, kind, result["fingerprint"], reference
        )
        reg.set(f"{prefix}{kind}.load_s", round(result["load_s"], 4))
        reg.set(f"{prefix}{kind}.solve_s", round(result["solve_s"], 4))
        reg.set(f"{prefix}{kind}.props_per_s",
                round(result["props_per_s"], 1))
        if kind != "legacy":
            speedup = (
                result["props_per_s"] / results["legacy"]["props_per_s"]
            )
            reg.set(f"{prefix}{kind}.speedup", round(speedup, 3))
    verdict, props = reference[0], reference[1]
    print(f"{study.name}: {num_vars} vars, {len(clauses)} clauses, "
          f"{verdict.value}, {props} propagations")
    for kind, result in results.items():
        print(f"  {kind:12s} load {result['load_s']:.3f}s  "
              f"solve {result['solve_s']:.3f}s  "
              f"{result['props_per_s']:>12,.0f} props/s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output JSON path (MetricsRegistry format)")
    parser.add_argument("--history", default="BENCH_HISTORY.jsonl",
                        help="bench history JSONL to append to "
                             "('' disables)")
    args = parser.parse_args(argv)

    engines = available_engines()
    reg = MetricsRegistry()
    reg.set("bench.host_cpus", os.cpu_count())
    reg.set(f"bench.core.build.{kernel_build()}", 1)
    for study in all_case_studies():
        if study.name in INSTANCES:
            bench_instance(reg, study, engines)
    reg.write_json(args.out)
    print(f"wrote {args.out}")
    if args.history:
        from history import append_history

        append_history("core", reg.as_dict(), path=args.history)
        print(f"history -> {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
