"""Extension bench: the VSS-budget vs makespan capacity curve.

Regenerates the trade-off curve on the Running Example (fast) and records
the whole curve in extra_info; the asserted shape — monotone non-increasing
makespan, strict improvement somewhere, saturation at the unconstrained
optimum — is the quantified ETCS Level 3 business case.
"""

from __future__ import annotations

from repro.tasks import capacity_curve, optimize_schedule


def test_running_example_capacity_curve(benchmark, studies):
    study = studies["Running Example"]
    net = study.discretize()
    budgets = [0, 1, 2, 3, 5, None]

    points = benchmark.pedantic(
        lambda: capacity_curve(
            net, study.schedule, study.r_t_min, budgets=budgets
        ),
        rounds=1, iterations=1,
    )
    curve = {
        ("inf" if p.budget is None else p.budget): p.makespan for p in points
    }
    benchmark.extra_info["curve"] = curve

    makespans = [p.makespan for p in points if p.feasible]
    # Monotone non-increasing and saturating at the plain optimum.
    assert makespans == sorted(makespans, reverse=True)
    unconstrained = optimize_schedule(net, study.schedule, study.r_t_min)
    assert points[-1].makespan == unconstrained.time_steps == 7
    # Budget 0 is pure TTD operation: the Example 2 deadlock — the four
    # trains cannot even complete, deadlines aside.
    assert not points[0].feasible
    # A single virtual border already restores operability.
    assert points[1].feasible and points[1].makespan == 8
