"""Benchmarks for this repository's extensions beyond the paper's Table I.

* objective ablation: makespan vs total-arrival (paper §III-C's two
  readings of "efficient"),
* clause preprocessing before verification,
* incremental layout exploration vs fresh per-layout verification,
* proof-backed verification overhead (DRAT logging + RUP checking).
"""

from __future__ import annotations

import pytest

from repro.network.sections import VSSLayout
from repro.tasks import LayoutExplorer, optimize_schedule, verify_schedule


@pytest.mark.parametrize("objective", ["makespan", "total-arrival"])
def test_objective_ablation(benchmark, studies, objective):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min, objective=objective
        ),
        rounds=1, iterations=1,
    )
    assert result.satisfiable and result.proven_optimal
    arrivals = {
        t.name: t.arrival_step for t in result.solution.trajectories
    }
    benchmark.extra_info["objective"] = objective
    benchmark.extra_info["arrivals"] = arrivals
    benchmark.extra_info["makespan"] = result.solution.makespan
    benchmark.extra_info["summed_arrivals"] = sum(arrivals.values())


@pytest.mark.parametrize("presimplify", [False, True])
def test_preprocessing_ablation(benchmark, studies, presimplify):
    study = studies["Simple Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: verify_schedule(
            net, study.schedule, study.r_t_min, presimplify=presimplify
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["presimplify"] = presimplify
    assert not result.satisfiable  # verdict unchanged


def test_explorer_vs_fresh_verification(benchmark, studies):
    """Check 8 single-border layouts: incremental explorer vs fresh runs."""
    study = studies["Running Example"]
    net = study.discretize()
    candidates = net.free_border_candidates()[:8]

    def incremental():
        explorer = LayoutExplorer(net, study.schedule, study.r_t_min)
        return [
            explorer.check(
                VSSLayout(net, set(net.forced_borders) | {vertex})
            )
            for vertex in candidates
        ]

    verdicts = benchmark.pedantic(incremental, rounds=1, iterations=1)
    # Cross-check against fresh verification runs.
    fresh = [
        verify_schedule(
            net, study.schedule, study.r_t_min,
            layout=VSSLayout(net, set(net.forced_borders) | {vertex}),
        ).satisfiable
        for vertex in candidates
    ]
    benchmark.extra_info["layouts_checked"] = len(candidates)
    benchmark.extra_info["feasible"] = sum(verdicts)
    assert verdicts == fresh


def test_proof_backed_verification_overhead(benchmark, studies):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: verify_schedule(
            net, study.schedule, study.r_t_min, with_proof=True
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["proof_checked"] = result.proof_checked
    assert not result.satisfiable
    assert result.proof_checked is True
