"""Ablation: cone-of-influence reduction (DESIGN.md §5).

Without the per-train reachability pruning every (train, segment, step)
triple gets an occupies variable; with it, only positions compatible with
departure points and deadlines exist.  This bench quantifies the saving in
variables/clauses and the effect on solving time.
"""

from __future__ import annotations

import pytest

from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.tasks import verify_schedule


@pytest.mark.parametrize("use_cone", [True, False])
def test_encoding_size(benchmark, studies, use_cone):
    study = studies["Simple Layout"]
    net = study.discretize()
    options = EncodingOptions(use_cone=use_cone)

    def build():
        return EtcsEncoding(
            net, study.schedule, study.r_t_min, options
        ).build()

    encoding = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["use_cone"] = use_cone
    benchmark.extra_info["vars"] = encoding.cnf.num_vars
    benchmark.extra_info["clauses"] = encoding.cnf.num_clauses
    benchmark.extra_info["occupies_vars"] = encoding.reg.num_occupies


@pytest.mark.parametrize("use_cone", [True, False])
def test_verification_runtime(benchmark, studies, use_cone):
    study = studies["Running Example"]
    net = study.discretize()
    options = EncodingOptions(use_cone=use_cone)
    result = benchmark(
        lambda: verify_schedule(
            net, study.schedule, study.r_t_min, options=options
        )
    )
    benchmark.extra_info["use_cone"] = use_cone
    benchmark.extra_info["vars"] = result.actual_vars
    # The verdict must be identical either way (pruning is sound).
    assert not result.satisfiable


def test_cone_saving_factor(benchmark, studies):
    """Report the variable-count ratio on the largest case study."""
    study = studies["Nordlandsbanen"]
    net = study.discretize()

    def measure():
        pruned = EtcsEncoding(
            net, study.schedule, study.r_t_min, EncodingOptions()
        )
        dense_positions = (
            len(pruned.runs) * net.num_segments * pruned.t_max
        )
        return pruned.cone.total_positions(), dense_positions

    pruned_positions, dense_positions = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    benchmark.extra_info["pruned_positions"] = pruned_positions
    benchmark.extra_info["dense_positions"] = dense_positions
    benchmark.extra_info["saving_factor"] = round(
        dense_positions / max(pruned_positions, 1), 1
    )
    assert pruned_positions < dense_positions / 2
