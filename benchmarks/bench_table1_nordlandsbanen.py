"""Table I, rows 10-12: Nordlandsbanen (r_t = 5 min, r_s = 5 km).

Paper values:   verification 21156 vars / UNSAT / 51 sections / 62.39 s
                generation   21156 vars / SAT   / 53 sections / 48 steps
                optimization 21156 vars / SAT   / 57 sections / 44 steps
"""

from __future__ import annotations

from conftest import record_row

from repro.tasks import generate_layout, optimize_schedule, verify_schedule


def test_verification(benchmark, studies):
    study = studies["Nordlandsbanen"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: verify_schedule(net, study.schedule, study.r_t_min),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[0], result)
    assert not result.satisfiable
    assert 45 <= result.num_sections <= 55  # paper: 51 TTDs

def test_generation(benchmark, studies):
    study = studies["Nordlandsbanen"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: generate_layout(net, study.schedule, study.r_t_min),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[1], result)
    assert result.satisfiable and result.proven_optimal
    # Paper: 53 = 51 TTDs + 2 added; ours: TTDs + a few added borders.
    assert 1 <= result.objective_value <= 8


def test_optimization(benchmark, studies):
    study = studies["Nordlandsbanen"]
    net = study.discretize()
    generated = generate_layout(net, study.schedule, study.r_t_min)
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min,
            minimize_borders_secondary=True,
        ),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[2], result)
    assert result.satisfiable and result.proven_optimal
    # Shape: optimization adds VSS beyond generation and cuts the makespan
    # (paper: 57 > 53 sections, 44 < 48 steps).
    assert result.time_steps < generated.time_steps
