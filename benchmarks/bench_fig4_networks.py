"""Fig. 4: the Simple Layout and Complex Layout networks.

The figure shows the two topologies; this bench regenerates their structural
statistics (stations, TTD counts, track length) and measures construction +
discretisation cost.
"""

from __future__ import annotations

from repro.casestudies.complex_layout import complex_layout_network
from repro.casestudies.simple_layout import simple_layout_network
from repro.network.discretize import DiscreteNetwork


def test_fig4a_simple_layout_structure(benchmark):
    network = benchmark(simple_layout_network)
    benchmark.extra_info["stations"] = len(network.stations)
    benchmark.extra_info["ttds"] = network.num_ttds
    benchmark.extra_info["length_km"] = network.total_length_km
    assert len(network.stations) == 3  # top, middle, bottom
    assert network.num_ttds == 10


def test_fig4b_complex_layout_structure(benchmark):
    network = benchmark(complex_layout_network)
    benchmark.extra_info["stations"] = len(network.stations)
    benchmark.extra_info["ttds"] = network.num_ttds
    benchmark.extra_info["length_km"] = network.total_length_km
    assert len(network.stations) == 6  # "a total of 6 stations"
    assert network.num_ttds == 22


def test_fig4a_discretisation(benchmark):
    network = simple_layout_network()
    net = benchmark(lambda: DiscreteNetwork(network, 0.5))
    benchmark.extra_info["segments"] = net.num_segments
    assert net.num_segments == 48


def test_fig4b_discretisation(benchmark):
    network = complex_layout_network()
    net = benchmark(lambda: DiscreteNetwork(network, 1.0))
    benchmark.extra_info["segments"] = net.num_segments
    assert net.num_segments == 157


def test_nordlandsbanen_construction(benchmark):
    """The real-life-inspired 58-station network (the paper's §IV list)."""
    from repro.casestudies.nordlandsbanen import nordlandsbanen_network

    network = benchmark(nordlandsbanen_network)
    benchmark.extra_info["stations"] = len(network.stations)
    benchmark.extra_info["length_km"] = network.total_length_km
    assert len(network.stations) == 58
    # 822 km of line (plus loop tracks and the Bodø stub).
    assert network.total_length_km >= 822.0
