"""Gateway economics: cold solve vs cache hit vs delta-close warm-start.

Boots a real in-process gateway (:class:`repro.gateway.GatewayThread`)
and runs the running example's generation task through it three ways:

* **cold** — first request, full descent in a pool worker;
* **cached** — the exact same request again, answered from the
  fingerprint-keyed result cache without touching a worker;
* **warm** — a delta-close request (one arrival deadline relaxed) that
  family-matches the cached entry, so the descent starts from the
  cached model instead of from scratch.

The requests use ``guarded_arrivals`` so the relaxed instance shares
the base instance's variable numbering (the warm-start precondition;
see ``doc/architecture.md`` §9).  The cached hit must be at least
``MIN_CACHED_SPEEDUP``× faster than the cold solve — that bound is the
benchmark's pass/fail verdict — and the warm-started descent must reach
the same optimum as a cold solve of the relaxed instance.

Run via ``make bench-gateway`` (writes ``BENCH_gateway.json``) or::

    PYTHONPATH=src python benchmarks/bench_gateway.py --out out.json
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.casestudies import all_case_studies
from repro.gateway import GatewayClient, GatewayConfig, GatewayThread
from repro.network.io import network_to_json
from repro.obs.metrics import MetricsRegistry
from repro.trains.io import schedule_to_json

#: The cache hit skips admission-to-worker round trips and the whole
#: descent; anything under 20x means the cache path regressed.
MIN_CACHED_SPEEDUP = 20.0

#: Exact-repeat requests; the best time is the cache-hit latency.
CACHED_REPEATS = 5


def _base_payload() -> dict:
    study = next(
        s for s in all_case_studies() if s.name == "Running Example"
    )
    return {
        "task": "generate",
        "network": json.loads(network_to_json(study.network)),
        "schedule": json.loads(schedule_to_json(study.schedule)),
        "r_s": study.r_s_km,
        "r_t": study.r_t_min,
        "params": {"strategy": "linear", "guarded_arrivals": True},
    }


def _relaxed(payload: dict, by_min: float = 1.0) -> dict:
    close = json.loads(json.dumps(payload))
    train = min(
        (t for t in close["schedule"]["trains"]
         if t.get("arrival_min") is not None),
        key=lambda t: t["arrival_min"],
    )
    train["arrival_min"] = min(
        train["arrival_min"] + by_min, close["schedule"]["duration_min"]
    )
    return close


def _timed(client: GatewayClient, payload: dict) -> tuple[dict, float]:
    start = time.perf_counter()
    response = client.request(payload)
    elapsed = time.perf_counter() - start
    assert response.get("ok"), response
    return response, elapsed


def bench_gateway(reg: MetricsRegistry, socket_path: str) -> bool:
    config = GatewayConfig(
        socket_path=socket_path, workers=1, cache_entries=64,
    )
    base = _base_payload()
    relaxed = _relaxed(base)
    with GatewayThread(config):
        client = GatewayClient(socket_path=socket_path)

        cold, cold_s = _timed(client, base)
        assert not cold.get("cached") and not cold["warm_started"]

        cached_s = None
        for __ in range(CACHED_REPEATS):
            cached, elapsed = _timed(client, base)
            assert cached.get("cached"), cached
            cached_s = elapsed if cached_s is None else min(
                cached_s, elapsed
            )

        warm, warm_s = _timed(client, relaxed)
        assert warm["warm_started"] and not warm.get("cached"), warm

        # Fair cold reference for the warm speedup: the same relaxed
        # instance with the cache bypassed entirely.
        cold_relaxed, cold_relaxed_s = _timed(
            client, {**relaxed, "no_cache": True}
        )
        assert not cold_relaxed["warm_started"]
        assert warm["objective_value"] == cold_relaxed["objective_value"]

    speedup_cached = cold_s / cached_s
    speedup_warm = cold_relaxed_s / warm_s
    reg.set("bench.gateway.cold_s", round(cold_s, 4))
    reg.set("bench.gateway.cached_s", round(cached_s, 6))
    reg.set("bench.gateway.warm_s", round(warm_s, 4))
    reg.set("bench.gateway.cold_relaxed_s", round(cold_relaxed_s, 4))
    reg.set("bench.gateway.speedup_cached", round(speedup_cached, 1))
    reg.set("bench.gateway.speedup_warm", round(speedup_warm, 3))
    reg.set("bench.gateway.cold_solve_calls", cold["solve_calls"])
    reg.set("bench.gateway.warm_solve_calls", warm["solve_calls"])
    reg.set("bench.gateway.objective", cold["objective_value"])
    passed = speedup_cached >= MIN_CACHED_SPEEDUP
    reg.set("bench.gateway.cached_speedup_ok", passed)
    return passed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_gateway.json",
                        help="output JSON path (MetricsRegistry format)")
    parser.add_argument("--history", default="BENCH_HISTORY.jsonl",
                        help="bench history JSONL to append to "
                             "('' disables)")
    args = parser.parse_args(argv)

    reg = MetricsRegistry()
    reg.set("bench.host_cpus", os.cpu_count())
    socket_path = f"bench-gateway-{os.getpid()}.sock"
    try:
        passed = bench_gateway(reg, socket_path)
    finally:
        if os.path.exists(socket_path):
            os.unlink(socket_path)
    summary = reg.as_dict()
    print(f"cold {summary['bench.gateway.cold_s']}s, "
          f"cached {summary['bench.gateway.cached_s']}s "
          f"({summary['bench.gateway.speedup_cached']}x), "
          f"warm {summary['bench.gateway.warm_s']}s vs cold "
          f"{summary['bench.gateway.cold_relaxed_s']}s "
          f"({summary['bench.gateway.speedup_warm']}x), "
          f"{'PASS' if passed else 'FAIL'} "
          f"(cached >= {MIN_CACHED_SPEEDUP}x required)")
    reg.write_json(args.out)
    print(f"wrote {args.out}")
    if args.history:
        from history import append_history

        append_history("gateway", reg.as_dict(), path=args.history)
        print(f"history -> {args.history}")
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
