"""Git-SHA-keyed benchmark history: the performance observatory's log.

Every bench run appends one JSON line to ``BENCH_HISTORY.jsonl``::

    {"sha": "<git sha>", "time": <unix>, "bench": "descent",
     "metrics": {"bench.generation.persistent_s": 1.23, ...}}

so the repository accumulates a per-commit performance trajectory that

* ``repro trend`` renders as per-key sparkline trajectories,
* ``check_regression.py --history`` gates against (rolling median of
  the last N runs instead of a single committed baseline).

The file is append-only JSONL: torn trailing lines (a killed bench) are
skipped by every reader, and histories from different machines merge by
concatenation.  ``git_sha`` degrades to ``"unknown"`` outside a git
checkout so benches still record history in exported tarballs.

Use from a bench script (after ``reg.write_json(out)``)::

    from history import append_history
    append_history("descent", reg.as_dict())

or from the shell::

    python benchmarks/history.py --bench descent \
        --metrics BENCH_descent.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time

#: Default history file, at the repository root (where ``make bench-*``
#: runs).
HISTORY_PATH = "BENCH_HISTORY.jsonl"

#: Rolling-baseline window: the median of this many most-recent runs.
DEFAULT_WINDOW = 5


def git_sha() -> str:
    """The current commit SHA, or "unknown" when git is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def append_history(
    bench: str,
    metrics: dict,
    path: str = HISTORY_PATH,
    sha: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """Append one bench run to the history file; returns the record.

    Only scalar metric values are recorded (histogram summaries are
    dropped) so every record stays one flat comparable dict.
    """
    record = {
        "sha": sha if sha is not None else git_sha(),
        "time": timestamp if timestamp is not None else time.time(),
        "bench": bench,
        "metrics": {
            key: value
            for key, value in sorted(metrics.items())
            if isinstance(value, (int, float, bool))
        },
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
    return record


def load_history(path: str = HISTORY_PATH,
                 bench: str | None = None) -> list[dict]:
    """All history records (optionally one bench), oldest first.

    Missing file -> empty list; undecodable lines (torn appends) are
    skipped.
    """
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict) or "metrics" not in record:
            continue
        if bench is not None and record.get("bench") != bench:
            continue
        records.append(record)
    return records


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def rolling_baseline(records: list[dict],
                     window: int = DEFAULT_WINDOW) -> dict:
    """Per-key median over the last ``window`` records.

    The median resists one-off outlier runs (a loaded CI host) far
    better than the single most recent value, so the regression gate
    compares against a stable reference.  Keys appear only when at
    least one of the windowed records carries them.
    """
    tail = records[-window:] if window > 0 else records
    per_key: dict[str, list[float]] = {}
    for record in tail:
        for key, value in record.get("metrics", {}).items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            per_key.setdefault(key, []).append(value)
    return {key: _median(values) for key, values in per_key.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True,
                        help="benchmark name (history record key)")
    parser.add_argument("--metrics", required=True,
                        help="BENCH_*.json produced by the bench run")
    parser.add_argument("--path", default=HISTORY_PATH,
                        help=f"history file (default {HISTORY_PATH})")
    args = parser.parse_args(argv)

    with open(args.metrics) as handle:
        metrics = json.load(handle)
    record = append_history(args.bench, metrics, path=args.path)
    print(f"history: {args.bench} @ {record['sha'][:9]} "
          f"({len(record['metrics'])} keys) -> {args.path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
