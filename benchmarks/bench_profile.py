"""Hot-path phase profiler: overhead bound and attribution sanity.

Runs the running example's verification serially twice — once with the
phase profiler off (the production default) and once with it on — under
best-of-``REPEAT`` timing, and records:

* ``bench.profile.baseline_s`` / ``bench.profile.profiled_s`` — best
  wall clock without/with profiling;
* ``bench.profile.overhead`` — the relative cost of profiling, which
  this benchmark *asserts* stays within ``OVERHEAD_BUDGET`` (5 %): the
  profiler counts every operation but only times a 1-in-``period``
  sample of conflict intervals, so clock reads are amortised off the
  hot path;
* the attribution itself — per-phase shares (must sum to ~100 %) and
  the dominant phase's share — so a refactor that silently breaks the
  sampling shows up as a benchmark diff, not just a wrong table.

Run via ``make bench-profile`` (writes ``BENCH_profile.json`` and
appends to ``BENCH_HISTORY.jsonl``) or directly::

    PYTHONPATH=src python benchmarks/bench_profile.py --out out.json
"""

from __future__ import annotations

import argparse
import os
import time

from history import append_history

from repro.casestudies.running_example import running_example
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import extract_profile, profile_summary
from repro.tasks import verify_schedule

REPEAT = 5
#: The profiler's contract: at most 5 % wall-clock overhead.
OVERHEAD_BUDGET = 0.05


def _run(profile: bool):
    study = running_example()
    net = study.discretize()
    # Eager + serial: the densest per-conflict hot path the profiler
    # has to stay out of (no fork/IPC noise in the measurement).
    return verify_schedule(
        net, study.schedule, study.r_t_min,
        lazy=False, parallel=1, profile=profile,
    )


def _best_of(fn, repeat: int = REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return value, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_profile.json",
                        help="output JSON path (MetricsRegistry format)")
    parser.add_argument("--history", default="BENCH_HISTORY.jsonl",
                        help="bench history JSONL to append to "
                             "('' disables)")
    parser.add_argument("--repeat", type=int, default=REPEAT)
    args = parser.parse_args(argv)

    baseline_res, baseline_s = _best_of(lambda: _run(False), args.repeat)
    profiled_res, profiled_s = _best_of(lambda: _run(True), args.repeat)

    # Differential guard: profiling must not change the verdict.
    assert profiled_res.satisfiable == baseline_res.satisfiable

    overhead = profiled_s / baseline_s - 1.0
    summary = profile_summary(extract_profile(profiled_res.metrics))
    shares = {
        phase: data["share"]
        for phase, data in summary.get("phases", {}).items()
    }
    share_total = sum(shares.values())

    reg = MetricsRegistry()
    reg.set("bench.host_cpus", os.cpu_count())
    reg.set("bench.profile.baseline_s", round(baseline_s, 4))
    reg.set("bench.profile.profiled_s", round(profiled_s, 4))
    reg.set("bench.profile.overhead", round(overhead, 4))
    reg.set("bench.profile.within_budget", overhead <= OVERHEAD_BUDGET)
    reg.set("bench.profile.share_total", round(share_total, 4))
    for phase, share in sorted(shares.items()):
        reg.set(f"bench.profile.share.{phase}", round(share, 4))
    dominant = summary.get("dominant")
    if dominant:
        reg.set("bench.profile.dominant_share",
                round(shares.get(dominant, 0.0), 4))
    reg.write_json(args.out)

    print(f"baseline {baseline_s:.4f}s, profiled {profiled_s:.4f}s "
          f"(overhead {overhead:+.1%}, budget {OVERHEAD_BUDGET:.0%})")
    print(f"dominant phase: {dominant} "
          f"(shares sum to {share_total:.1%})")
    print(f"wrote {args.out}")
    if args.history:
        append_history("profile", reg.as_dict(), path=args.history)
        print(f"history -> {args.history}")

    if not 0.99 <= share_total <= 1.01:
        print(f"FAIL: phase shares sum to {share_total:.3f}, not ~1.0")
        return 1
    if overhead > OVERHEAD_BUDGET:
        print(f"FAIL: profiler overhead {overhead:.1%} exceeds "
              f"{OVERHEAD_BUDGET:.0%} budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
