"""Ablation: optimisation strategy (linear vs binary vs core-guided).

All three engines must find the same optimum; they differ in the number of
SAT calls and where the work lands (SAT-side model improvement vs UNSAT-side
core extraction).
"""

from __future__ import annotations

import pytest

from repro.tasks import generate_layout, optimize_schedule


@pytest.mark.parametrize("strategy", ["linear", "binary", "core"])
def test_generation_strategy(benchmark, studies, strategy):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark(
        lambda: generate_layout(
            net, study.schedule, study.r_t_min, strategy=strategy
        )
    )
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["solve_calls"] = result.solve_calls
    benchmark.extra_info["objective"] = result.objective_value
    assert result.satisfiable and result.proven_optimal
    assert result.objective_value == 1  # all strategies agree


@pytest.mark.parametrize("strategy", ["linear", "binary", "core"])
def test_makespan_strategy(benchmark, studies, strategy):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min, strategy=strategy
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["solve_calls"] = result.solve_calls
    assert result.satisfiable and result.proven_optimal
    assert result.time_steps == 7  # all strategies agree with Table I


@pytest.mark.parametrize("strategy", ["linear", "binary"])
def test_generation_strategy_simple_layout(benchmark, studies, strategy):
    """The larger instance separates the strategies more clearly."""
    study = studies["Simple Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: generate_layout(
            net, study.schedule, study.r_t_min, strategy=strategy
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["solve_calls"] = result.solve_calls
    assert result.satisfiable and result.proven_optimal
