"""Shared helpers for the benchmark harness.

Every Table I / figure benchmark records paper-vs-measured values in
``benchmark.extra_info`` so that ``pytest benchmarks/ --benchmark-only``
output doubles as the reproduction record (EXPERIMENTS.md is generated from
the same numbers).
"""

from __future__ import annotations

import pytest

from repro.casestudies import all_case_studies


@pytest.fixture(scope="session")
def studies():
    """All four case studies, keyed by name."""
    return {study.name: study for study in all_case_studies()}


def record_row(benchmark, paper_row, result) -> None:
    """Attach a paper-vs-measured comparison to the benchmark record."""
    benchmark.extra_info.update(
        {
            "task": result.task,
            "paper_sat": paper_row.satisfiable,
            "measured_sat": result.satisfiable,
            "paper_sections": paper_row.sections,
            "measured_sections": result.num_sections,
            "paper_time_steps": paper_row.time_steps,
            "measured_time_steps": result.time_steps,
            "paper_vars": paper_row.variables,
            "measured_vars": result.variables,
            "paper_runtime_s": paper_row.runtime_s,
            "measured_runtime_s": round(result.runtime_s, 3),
        }
    )
