"""Ablation: contribution of individual CDCL features.

Measured on crafted instances: the pigeonhole principle (hard UNSAT, tests
clause learning quality) and the running example's generation instance (the
actual workload).  Every configuration must stay sound — only speed differs.
"""

from __future__ import annotations

import random

import pytest

from repro.sat import Solver, SolveResult
from repro.sat.types import SolverConfig

CONFIGS = {
    "full": SolverConfig(),
    "no-restarts": SolverConfig(use_restarts=False),
    "no-vsids": SolverConfig(use_vsids=False),
    "no-phase-saving": SolverConfig(use_phase_saving=False),
    "no-minimization": SolverConfig(use_minimization=False),
    "no-deletion": SolverConfig(use_clause_deletion=False),
}


def pigeonhole(holes: int) -> list[list[int]]:
    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(holes + 1)]
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def random_3sat(num_vars: int, ratio: float, seed: int) -> list[list[int]]:
    rng = random.Random(seed)
    clauses = []
    for _ in range(int(num_vars * ratio)):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v * rng.choice([1, -1]) for v in chosen])
    return clauses


@pytest.mark.parametrize("name", list(CONFIGS))
def test_pigeonhole_by_config(benchmark, name):
    clauses = pigeonhole(6)

    def solve():
        solver = Solver(CONFIGS[name])
        for clause in clauses:
            solver.add_clause(clause)
        verdict = solver.solve()
        return verdict, solver.stats.conflicts

    verdict, conflicts = benchmark.pedantic(solve, rounds=1, iterations=1)
    benchmark.extra_info["config"] = name
    benchmark.extra_info["conflicts"] = conflicts
    assert verdict is SolveResult.UNSAT


@pytest.mark.parametrize("name", ["full", "no-vsids", "no-restarts"])
def test_random_3sat_by_config(benchmark, name):
    clauses = random_3sat(120, 4.26, seed=7)

    def solve():
        solver = Solver(CONFIGS[name])
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve(), solver.stats.conflicts

    verdict, conflicts = benchmark.pedantic(solve, rounds=1, iterations=1)
    benchmark.extra_info["config"] = name
    benchmark.extra_info["conflicts"] = conflicts
    assert verdict in (SolveResult.SAT, SolveResult.UNSAT)


@pytest.mark.parametrize("name", ["full", "no-vsids"])
def test_etcs_workload_by_config(benchmark, studies, name):
    """The actual paper workload: running-example generation instance."""
    from repro.encoding.encoder import EtcsEncoding

    study = studies["Running Example"]
    net = study.discretize()
    encoding = EtcsEncoding(net, study.schedule, study.r_t_min).build()

    def solve():
        solver = Solver(CONFIGS[name])
        solver.ensure_var(encoding.cnf.num_vars)
        for clause in encoding.cnf.clauses:
            solver.add_clause(clause)
        return solver.solve()

    verdict = benchmark(solve)
    benchmark.extra_info["config"] = name
    assert verdict is SolveResult.SAT  # free borders: feasible
