"""Ablation: at-most-one encoding flavour in the placement constraint.

The exactly-one-chain constraint (paper §III-B) dominates the encoding; this
bench compares the pairwise / ladder / commander AMO encodings on the same
generation task, measuring both encoding size and end-to-end runtime.
"""

from __future__ import annotations

import pytest

from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.tasks import generate_layout


@pytest.mark.parametrize("amo", ["pairwise", "ladder", "commander"])
def test_generation_with_amo(benchmark, studies, amo):
    study = studies["Simple Layout"]
    net = study.discretize()
    options = EncodingOptions(amo=amo)

    result = benchmark.pedantic(
        lambda: generate_layout(
            net, study.schedule, study.r_t_min, options=options
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["amo"] = amo
    benchmark.extra_info["clauses"] = result.clauses
    benchmark.extra_info["vars"] = result.actual_vars
    assert result.satisfiable and result.proven_optimal


@pytest.mark.parametrize("amo", ["pairwise", "ladder", "commander"])
def test_encoding_size_by_amo(benchmark, studies, amo):
    """Pure encoding-size comparison (no solving)."""
    study = studies["Complex Layout"]
    net = study.discretize()
    options = EncodingOptions(amo=amo)

    def build():
        return EtcsEncoding(
            net, study.schedule, study.r_t_min, options
        ).build()

    encoding = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["amo"] = amo
    benchmark.extra_info["clauses"] = encoding.cnf.num_clauses
    benchmark.extra_info["literals"] = encoding.cnf.literals_size()
    benchmark.extra_info["aux_vars"] = encoding.reg.pool.num_aux
