"""One-shot vs persistent-incremental parallel descent (perf trajectory).

Runs the running example's generation and optimization descents at
``parallel=4`` twice — once on the one-shot portfolio (fresh fork +
full clause reload per bound probe) and once on the resident incremental
solver service (CNF shipped once, probes send assumptions + clause
deltas, learned clauses kept and shared) — and records wall time,
probes/s, and the clauses-shipped economics under stable ``bench.*``
keys.

Why the service wins even on a single core: the one-shot path pays
``processes × (fork + clause load + cold search)`` on *every* probe,
while the service pays the fork/load once per descent and every warm
probe resumes a solver that already holds the learned clauses, VSIDS
activities, and saved phases of the previous bounds — the same
incremental advantage the serial descent enjoys, plus the race.

Run via ``make bench-descent`` (writes ``BENCH_descent.json``, the perf
trajectory's first data point) or directly::

    PYTHONPATH=src python benchmarks/bench_descent.py --out out.json

The verdict/objective agreement between the engines is asserted, so the
benchmark doubles as an end-to-end differential check.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.casestudies.running_example import running_example
from repro.obs.metrics import MetricsRegistry
from repro.tasks import generate_layout, optimize_schedule

PROCESSES = 4
REPEAT = 3
TASKS = ("generation", "optimization")


def _run_task(task: str, persistent: bool):
    study = running_example()
    net = study.discretize()
    if task == "generation":
        return generate_layout(
            net, study.schedule, study.r_t_min,
            parallel=PROCESSES, persistent=persistent,
        )
    return optimize_schedule(
        net, study.schedule, study.r_t_min,
        parallel=PROCESSES, persistent=persistent,
    )


def _best_of(fn, repeat: int = REPEAT):
    """Run ``fn`` a few times; return (last value, best wall time)."""
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return value, best


def bench_task(reg: MetricsRegistry, task: str) -> bool:
    """Benchmark one task; returns whether persistent beat one-shot."""
    oneshot, oneshot_s = _best_of(lambda: _run_task(task, False))
    resident, resident_s = _best_of(lambda: _run_task(task, True))

    assert resident.satisfiable == oneshot.satisfiable
    assert resident.objective_value == oneshot.objective_value
    assert resident.proven_optimal == oneshot.proven_optimal

    probes = resident.solve_calls
    prefix = f"bench.{task}."
    reg.set(f"{prefix}oneshot_s", round(oneshot_s, 4))
    reg.set(f"{prefix}persistent_s", round(resident_s, 4))
    reg.set(f"{prefix}speedup", round(oneshot_s / resident_s, 3))
    reg.set(f"{prefix}probes", probes)
    reg.set(f"{prefix}oneshot_probes_per_s",
            round(oneshot.solve_calls / oneshot_s, 2))
    reg.set(f"{prefix}persistent_probes_per_s",
            round(probes / resident_s, 2))
    # Delta-shipping economics of the service session (last run).
    for key in ("service.clauses_loaded", "service.clauses_shipped",
                "service.clauses_skipped", "share.broadcast",
                "share.imported"):
        value = resident.metrics.get(key)
        if value is not None:
            reg.set(f"{prefix}{key}", value)
    won = resident_s < oneshot_s
    reg.set(f"{prefix}persistent_beats_oneshot", won)
    return won


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_descent.json",
                        help="output JSON path (MetricsRegistry format)")
    parser.add_argument("--history", default="BENCH_HISTORY.jsonl",
                        help="bench history JSONL to append to "
                             "('' disables)")
    args = parser.parse_args(argv)

    reg = MetricsRegistry()
    reg.set("bench.processes", PROCESSES)
    reg.set("bench.host_cpus", os.cpu_count())
    all_won = True
    for task in TASKS:
        won = bench_task(reg, task)
        all_won = all_won and won
        summary = reg.as_dict()
        print(f"{task}: one-shot {summary[f'bench.{task}.oneshot_s']}s, "
              f"persistent {summary[f'bench.{task}.persistent_s']}s "
              f"(speedup {summary[f'bench.{task}.speedup']}x, "
              f"{'win' if won else 'LOSS'})")
    reg.write_json(args.out)
    print(f"wrote {args.out}")
    if args.history:
        from history import append_history

        append_history("descent", reg.as_dict(), path=args.history)
        print(f"history -> {args.history}")
    return 0 if all_won else 1


if __name__ == "__main__":
    raise SystemExit(main())
