"""Compare a fresh ``BENCH_*.json`` against a committed baseline.

The benchmark JSON files are flat ``{"bench.<...>": number}`` dicts
(:meth:`repro.obs.metrics.MetricsRegistry.write_json`).  This script
flags any key that moved more than ``--threshold`` (fraction, default
0.25) in the *bad* direction and exits non-zero, so the CI benchmark
job fails on a real performance regression but tolerates normal noise.

Which direction is "bad" is inferred from the key name:

* lower-is-better: wall-clock (``..._s``), formula size (``..._clauses``,
  ``...constraints_added``) and refinement effort (``...rounds``);
* higher-is-better: ``speedup``, ``probes_per_s``, ``props_per_s``,
  ``clauses_saved``, ``clauses_skipped`` and the boolean ``_beats_``
  wins;
* anything else (environment facts like ``bench.host_cpus``, raw
  ``probes`` counts) is informational and never gated.

Keys present only in the baseline or only in the current run are
reported as warnings, not failures, so adding/renaming benchmarks does
not require touching this script.

Usage::

    python benchmarks/check_regression.py \
        --baseline .bench-baseline/BENCH_lazy.json \
        --current BENCH_lazy.json --threshold 0.25

With ``--history`` the baseline is instead the *rolling median* of the
last ``--window`` runs of one bench recorded in ``BENCH_HISTORY.jsonl``
(``benchmarks/history.py``), which resists one-off outlier runs better
than any single committed file.  An empty or missing history passes
(first run seeds the history)::

    python benchmarks/check_regression.py \
        --history BENCH_HISTORY.jsonl --bench descent \
        --current BENCH_descent.json --window 5
"""

from __future__ import annotations

import argparse
import json

LOWER_IS_BETTER_SUFFIXES = (
    "_s", "_clauses", "constraints_added", ".rounds",
)
HIGHER_IS_BETTER_TOKENS = (
    "speedup", "probes_per_s", "props_per_s", "clauses_saved",
    "clauses_skipped", "_beats_",
)


def direction(key: str) -> str | None:
    """Return "lower", "higher", or None (ungated) for a metric key."""
    for token in HIGHER_IS_BETTER_TOKENS:
        if token in key:
            return "higher"
    for suffix in LOWER_IS_BETTER_SUFFIXES:
        if key.endswith(suffix):
            return "lower"
    return None


def compare(baseline: dict, current: dict, threshold: float):
    """Yield (key, kind, message) for every noteworthy delta."""
    for key in sorted(set(baseline) | set(current)):
        if key not in current:
            yield key, "warn", "missing from current run"
            continue
        if key not in baseline:
            yield key, "warn", "new key (no baseline)"
            continue
        sense = direction(key)
        if sense is None:
            continue
        base, cur = baseline[key], current[key]
        if isinstance(base, bool) or isinstance(cur, bool):
            if bool(base) and not bool(cur):
                yield key, "fail", f"regressed {base} -> {cur}"
            continue
        if not isinstance(base, (int, float)):
            continue
        if abs(base) < 1e-9:
            # A near-zero baseline makes the relative delta meaningless
            # (e.g. 0 refinement rounds on a trivially clean case).
            yield key, "warn", f"baseline ~0 ({base!r}), skipped"
            continue
        delta = (cur - base) / abs(base)
        if sense == "lower" and delta > threshold:
            yield key, "fail", f"{base} -> {cur} (+{delta:.0%})"
        elif sense == "higher" and delta < -threshold:
            yield key, "fail", f"{base} -> {cur} ({delta:.0%})"


def history_baseline(path: str, bench: str | None,
                     window: int) -> dict | None:
    """Rolling-median baseline from a history file, or None when the
    history has no usable records yet (first run: nothing to gate)."""
    try:
        from history import load_history, rolling_baseline
    except ImportError:  # script run from another cwd
        import importlib.util
        import os

        spec = importlib.util.spec_from_file_location(
            "history",
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "history.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        load_history = module.load_history
        rolling_baseline = module.rolling_baseline
    records = load_history(path, bench=bench)
    if not records:
        return None
    baseline = rolling_baseline(records, window=window)
    return baseline or None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative slack (default 0.25)")
    parser.add_argument("--history", metavar="FILE", default=None,
                        help="gate against the rolling median of "
                             "BENCH_HISTORY.jsonl instead of --baseline")
    parser.add_argument("--bench", metavar="NAME", default=None,
                        help="history bench name to gate against "
                             "(with --history)")
    parser.add_argument("--window", type=int, default=5,
                        help="rolling-median window for --history "
                             "(default 5)")
    args = parser.parse_args(argv)

    if bool(args.baseline) == bool(args.history):
        parser.error("exactly one of --baseline or --history is required")

    if args.history:
        baseline = history_baseline(args.history, args.bench, args.window)
        if baseline is None:
            print(f"ok: no usable history in {args.history!r} yet — "
                  "nothing to gate against (run recorded as the seed)")
            return 0
        reference = (
            f"rolling median of {args.history}"
            + (f" [{args.bench}]" if args.bench else "")
        )
    else:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        reference = args.baseline
    with open(args.current) as fh:
        current = json.load(fh)

    failures = 0
    for key, kind, message in compare(baseline, current, args.threshold):
        if kind == "fail":
            failures += 1
            print(f"REGRESSION {key}: {message}")
        else:
            print(f"warning    {key}: {message}")
    if failures:
        print(f"{failures} regression(s) beyond "
              f"{args.threshold:.0%} vs {reference}")
        return 1
    print(f"ok: no regressions beyond {args.threshold:.0%} "
          f"vs {reference}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
