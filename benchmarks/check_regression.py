"""Compare a fresh ``BENCH_*.json`` against a committed baseline.

The benchmark JSON files are flat ``{"bench.<...>": number}`` dicts
(:meth:`repro.obs.metrics.MetricsRegistry.write_json`).  This script
flags any key that moved more than ``--threshold`` (fraction, default
0.25) in the *bad* direction and exits non-zero, so the CI benchmark
job fails on a real performance regression but tolerates normal noise.

Which direction is "bad" is inferred from the key name:

* lower-is-better: wall-clock (``..._s``), formula size (``..._clauses``,
  ``...constraints_added``) and refinement effort (``...rounds``);
* higher-is-better: ``speedup``, ``probes_per_s``, ``clauses_saved``,
  ``clauses_skipped`` and the boolean ``_beats_`` wins;
* anything else (environment facts like ``bench.host_cpus``, raw
  ``probes`` counts) is informational and never gated.

Keys present only in the baseline or only in the current run are
reported as warnings, not failures, so adding/renaming benchmarks does
not require touching this script.

Usage::

    python benchmarks/check_regression.py \
        --baseline .bench-baseline/BENCH_lazy.json \
        --current BENCH_lazy.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import json

LOWER_IS_BETTER_SUFFIXES = (
    "_s", "_clauses", "constraints_added", ".rounds",
)
HIGHER_IS_BETTER_TOKENS = (
    "speedup", "probes_per_s", "clauses_saved", "clauses_skipped",
    "_beats_",
)


def direction(key: str) -> str | None:
    """Return "lower", "higher", or None (ungated) for a metric key."""
    for token in HIGHER_IS_BETTER_TOKENS:
        if token in key:
            return "higher"
    for suffix in LOWER_IS_BETTER_SUFFIXES:
        if key.endswith(suffix):
            return "lower"
    return None


def compare(baseline: dict, current: dict, threshold: float):
    """Yield (key, kind, message) for every noteworthy delta."""
    for key in sorted(set(baseline) | set(current)):
        if key not in current:
            yield key, "warn", "missing from current run"
            continue
        if key not in baseline:
            yield key, "warn", "new key (no baseline)"
            continue
        sense = direction(key)
        if sense is None:
            continue
        base, cur = baseline[key], current[key]
        if isinstance(base, bool) or isinstance(cur, bool):
            if bool(base) and not bool(cur):
                yield key, "fail", f"regressed {base} -> {cur}"
            continue
        if not isinstance(base, (int, float)):
            continue
        if abs(base) < 1e-9:
            # A near-zero baseline makes the relative delta meaningless
            # (e.g. 0 refinement rounds on a trivially clean case).
            yield key, "warn", f"baseline ~0 ({base!r}), skipped"
            continue
        delta = (cur - base) / abs(base)
        if sense == "lower" and delta > threshold:
            yield key, "fail", f"{base} -> {cur} (+{delta:.0%})"
        elif sense == "higher" and delta < -threshold:
            yield key, "fail", f"{base} -> {cur} ({delta:.0%})"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative slack (default 0.25)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    failures = 0
    for key, kind, message in compare(baseline, current, args.threshold):
        if kind == "fail":
            failures += 1
            print(f"REGRESSION {key}: {message}")
        else:
            print(f"warning    {key}: {message}")
    if failures:
        print(f"{failures} regression(s) beyond "
              f"{args.threshold:.0%} vs {args.baseline}")
        return 1
    print(f"ok: no regressions beyond {args.threshold:.0%} "
          f"vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
