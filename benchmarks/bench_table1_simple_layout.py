"""Table I, rows 4-6: the Simple Layout (r_t = 1 min, r_s = 0.5 km).

Paper values:   verification 3910 vars / UNSAT / 10 sections /  3.26 s
                generation   3910 vars / SAT   / 14 sections / 19 steps
                optimization 3910 vars / SAT   / 14 sections / 15 steps
"""

from __future__ import annotations

from conftest import record_row

from repro.tasks import generate_layout, optimize_schedule, verify_schedule


def test_verification(benchmark, studies):
    study = studies["Simple Layout"]
    net = study.discretize()
    result = benchmark(
        lambda: verify_schedule(net, study.schedule, study.r_t_min)
    )
    record_row(benchmark, study.paper_rows[0], result)
    assert not result.satisfiable
    assert result.num_sections == 10  # paper: 10 TTDs


def test_generation(benchmark, studies):
    study = studies["Simple Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: generate_layout(net, study.schedule, study.r_t_min),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[1], result)
    assert result.satisfiable and result.proven_optimal
    # Paper: 14 sections (10 TTDs + 4); ours repairs with a handful too.
    assert 11 <= result.num_sections <= 15


def test_optimization(benchmark, studies):
    study = studies["Simple Layout"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min,
            minimize_borders_secondary=True,
        ),
        rounds=1, iterations=1,
    )
    record_row(benchmark, study.paper_rows[2], result)
    assert result.satisfiable and result.proven_optimal
    # Paper: 15 steps on their geometry; the shape target is that the
    # optimum stays within the generation deadlines' makespan.
    assert result.time_steps <= 15
