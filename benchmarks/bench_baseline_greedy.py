"""Baseline comparison: greedy myopic dispatch vs the SAT methodology.

The paper's §IV argues the tasks were previously done manually; a myopic
dispatcher is the straightforward automation of that practice.  These
benches measure — per case study, on the very VSS layout the SAT generation
task produces — whether greedy can realise the schedule at all, and how its
outcome compares to the SAT witness.
"""

from __future__ import annotations

import pytest

from repro.baseline import greedy_dispatch
from repro.network.sections import VSSLayout
from repro.tasks import generate_layout

CASES = ["Running Example", "Simple Layout", "Complex Layout",
         "Nordlandsbanen"]


@pytest.mark.parametrize("case", CASES)
def test_greedy_on_sat_generated_layout(benchmark, studies, case):
    study = studies[case]
    net = study.discretize()
    generated = generate_layout(net, study.schedule, study.r_t_min)
    assert generated.satisfiable  # SAT realises the schedule
    layout = generated.solution.layout

    result = benchmark.pedantic(
        lambda: greedy_dispatch(
            net, study.schedule, study.r_t_min, layout=layout
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["sat_feasible"] = True
    benchmark.extra_info["sat_makespan"] = generated.time_steps
    benchmark.extra_info["greedy_success"] = result.success
    benchmark.extra_info["greedy_reason"] = result.reason
    benchmark.extra_info["greedy_arrivals"] = {
        k: v for k, v in result.arrivals.items()
    }
    # The reproduction claim: SAT succeeds; greedy's verdict is recorded.
    # (Greedy fails on every paper case study — that is the point.)


@pytest.mark.parametrize("case", CASES)
def test_greedy_on_finest_layout(benchmark, studies, case):
    """Even unlimited VSS does not save a dispatcher without lookahead."""
    study = studies[case]
    net = study.discretize()
    layout = VSSLayout.finest(net)
    result = benchmark.pedantic(
        lambda: greedy_dispatch(
            net, study.schedule, study.r_t_min, layout=layout
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["greedy_success"] = result.success
    benchmark.extra_info["greedy_reason"] = result.reason
