"""Fig. 2: the improved VSS layout and schedule of the running example.

Fig. 2b reports the optimised arrivals (in steps of 30 s):

    train 1: 0:03:30 (step 7)     train 2: 0:02:30 (step 5)
    train 3: 0:02:30 (step 5)     train 4: 0:03:30 (step 7)

against the Fig. 1b deadlines 4:30 / 4:00 / 3:00 / 5:00.  We regenerate the
optimised schedule and compare train-by-train arrival steps: the makespan
(7 steps) must match, individual arrivals must beat the original deadlines.
"""

from __future__ import annotations

from repro.tasks import optimize_schedule

#: Fig. 2b arrival steps, per train name.
PAPER_ARRIVALS = {"1": 7, "2": 5, "3": 5, "4": 7}

#: Fig. 1b deadlines converted to steps (r_t = 0.5 min).
ORIGINAL_DEADLINES = {"1": 9, "2": 8, "3": 6, "4": 10}


def test_optimized_schedule_matches_fig2(benchmark, studies):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min,
            minimize_borders_secondary=True,
        ),
        rounds=1, iterations=1,
    )
    assert result.satisfiable and result.proven_optimal
    assert result.time_steps == 7  # Fig. 2b makespan

    measured = {
        trajectory.name: trajectory.arrival_step
        for trajectory in result.solution.trajectories
    }
    benchmark.extra_info["paper_arrivals"] = PAPER_ARRIVALS
    benchmark.extra_info["measured_arrivals"] = measured

    # Every train arrives within the 7-step makespan (the paper's Fig. 2b
    # slowest arrival), and the slowest arrival matches the paper exactly.
    # Individual arrivals vary between equally-optimal models; the paper's
    # particular witness also beats each Fig. 1b deadline, ours merely beats
    # the joint makespan — both certify the same optimum.
    for name, arrival in measured.items():
        assert arrival <= max(PAPER_ARRIVALS.values())
    assert max(measured.values()) == max(PAPER_ARRIVALS.values())
    benchmark.extra_info["within_fig1b_deadlines"] = all(
        measured[name] <= ORIGINAL_DEADLINES[name] for name in measured
    )


def test_refined_arrivals_match_fig2b_sum(benchmark, studies):
    """Lexicographic makespan-then-arrivals reproduces Fig. 2b's summed
    arrival times (7+5+5+7 = 24) exactly."""
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark.pedantic(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min, refine_arrivals=True
        ),
        rounds=1, iterations=1,
    )
    arrivals = {
        t.name: t.arrival_step for t in result.solution.trajectories
    }
    benchmark.extra_info["paper_arrival_sum"] = sum(PAPER_ARRIVALS.values())
    benchmark.extra_info["measured_arrivals"] = arrivals
    assert result.time_steps == 7
    assert sum(arrivals.values()) == sum(PAPER_ARRIVALS.values()) == 24


def test_improvement_over_generation(benchmark, studies):
    """Fig. 1b vs Fig. 2b: optimization strictly improves the makespan."""
    from repro.tasks import generate_layout

    study = studies["Running Example"]
    net = study.discretize()

    def both():
        generated = generate_layout(net, study.schedule, study.r_t_min)
        optimized = optimize_schedule(net, study.schedule, study.r_t_min)
        return generated, optimized

    generated, optimized = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["generation_steps"] = generated.time_steps
    benchmark.extra_info["optimization_steps"] = optimized.time_steps
    assert optimized.time_steps < generated.time_steps
