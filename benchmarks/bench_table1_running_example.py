"""Table I, rows 1-3: the Running Example (r_t = 0.5 min, r_s = 0.5 km).

Paper values:   verification 654 vars / UNSAT / 4 sections / 0.10 s
                generation   654 vars / SAT   / 5 sections / 10 steps / 0.14 s
                optimization 654 vars / SAT   / 7 sections /  7 steps / 0.25 s
"""

from __future__ import annotations

from conftest import record_row

from repro.tasks import generate_layout, optimize_schedule, verify_schedule


def test_verification(benchmark, studies):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark(
        lambda: verify_schedule(net, study.schedule, study.r_t_min)
    )
    record_row(benchmark, study.paper_rows[0], result)
    assert not result.satisfiable  # paper: No
    assert result.num_sections == 4  # paper: 4 TTDs


def test_generation(benchmark, studies):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark(
        lambda: generate_layout(net, study.schedule, study.r_t_min)
    )
    record_row(benchmark, study.paper_rows[1], result)
    assert result.satisfiable and result.proven_optimal
    assert result.num_sections == 5  # paper: 5 sections


def test_optimization(benchmark, studies):
    study = studies["Running Example"]
    net = study.discretize()
    result = benchmark(
        lambda: optimize_schedule(
            net, study.schedule, study.r_t_min,
            minimize_borders_secondary=True,
        )
    )
    record_row(benchmark, study.paper_rows[2], result)
    assert result.satisfiable and result.proven_optimal
    assert result.time_steps == 7  # paper: 7 steps
    assert result.num_sections == 7  # paper: 7 sections
