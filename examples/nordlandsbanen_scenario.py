"""Nordlandsbanen: planning a morning on Norway's longest railway line.

The paper's real-life case study: 822 km of single track from Trondheim to
Bodø with 58 stations, of which every fifth has a crossing loop.  On today's
infrastructure the long TTD sections between loops force huge headways; this
scenario shows how the SAT methodology answers the dispatcher's questions:

* Can the planned morning service run on the existing (pure TTD) blocks?
* If not — where exactly do virtual subsections have to go?
* And which stations see trains crossing?

Run:  python examples/nordlandsbanen_scenario.py
"""

from __future__ import annotations

from repro.casestudies.nordlandsbanen import (
    STATIONS,
    is_crossing_station,
    nordlandsbanen,
)
from repro.tasks import generate_layout, verify_schedule
from repro.viz import format_task_result


def station_of_segment(net, segment: int) -> str | None:
    """Which station (if any) owns a segment?"""
    track = net.segments[segment].track
    for name, tracks in net.network.stations.items():
        if track in tracks:
            return name
    return None


def main() -> None:
    study = nordlandsbanen()
    net = study.discretize()

    loops = [
        name for index, name in enumerate(STATIONS)
        if is_crossing_station(index)
    ]
    print(f"Nordlandsbanen: {len(STATIONS)} stations, "
          f"{study.network.total_length_km:.0f} km of track, "
          f"{net.num_ttds} TTD sections")
    print(f"Crossing loops at: {', '.join(loops)}")
    print()
    print("Morning service:")
    for run in study.schedule:
        print(
            f"  train {run.train.name}: {run.start} -> {run.goal}, "
            f"dep {run.departure_min:.0f} min, "
            f"deadline {run.arrival_min:.0f} min"
        )
    print()

    print("== Can it run on the existing TTD blocks? ==")
    verification = verify_schedule(net, study.schedule, study.r_t_min)
    print(format_task_result(verification))
    print(
        "  -> NO: train 3 cannot keep its deadline while staying a full "
        "block section\n     behind train 1 over the long remote TTDs."
    )
    print()

    print("== Where do virtual subsections have to go? ==")
    generation = generate_layout(net, study.schedule, study.r_t_min)
    print(format_task_result(generation))
    layout = generation.solution.layout
    print(f"  {len(layout.added_borders)} VSS borders added:")
    for vertex in sorted(layout.added_borders):
        touching = [
            net.segments[s].track for s in net.segments_at[vertex]
        ]
        print(f"    vertex {vertex} between {' and '.join(touching)}")
    print()

    print("== Where do trains meet? ==")
    for step in range(generation.solution.t_max):
        at_station: dict[str, list[str]] = {}
        for trajectory in generation.solution.trajectories:
            for segment in trajectory.steps[step]:
                station = station_of_segment(net, segment)
                if station:
                    at_station.setdefault(station, []).append(trajectory.name)
        for station, trains in sorted(at_station.items()):
            if len(trains) > 1:
                print(
                    f"  step {step} ({step * study.r_t_min:.0f} min): trains "
                    f"{' and '.join(sorted(trains))} cross at {station}"
                )

    print()
    arrivals = {
        t.name: t.arrival_step for t in generation.solution.trajectories
    }
    for name, step in sorted(arrivals.items()):
        print(f"  train {name} arrives at step {step} "
              f"({step * study.r_t_min:.0f} min)")


if __name__ == "__main__":
    main()
