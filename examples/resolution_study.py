"""Resolution study: how fine must the discretisation be?

The paper's formulation (§III-A) hinges on two knobs — the spatial
resolution r_s and the temporal resolution r_t.  Finer grids express more
VSS layouts and schedules but blow up the encoding.  This study sweeps both
knobs on the running example and shows:

* how the variable/clause counts scale (linear in 1/r_s and 1/r_t),
* where the verification verdict stabilises,
* what the paper's chosen point (r_s = 0.5 km, r_t = 0.5 min) costs.

Run:  python examples/resolution_study.py
"""

from __future__ import annotations

from repro.analysis import resolution_sweep
from repro.analysis.sensitivity import format_sweep
from repro.casestudies.running_example import (
    running_example_network,
    running_example_schedule,
)


def main() -> None:
    network = running_example_network()
    schedule = running_example_schedule()

    print("Verification verdict and encoding size across resolutions")
    print("(the paper's point is r_s = 0.5 km, r_t = 0.5 min):\n")
    resolutions = [
        (2.0, 1.0),
        (1.0, 1.0),
        (1.0, 0.5),
        (0.5, 0.5),   # the paper's Table I point
        (0.25, 0.5),
        (0.25, 0.25),
    ]
    points = resolution_sweep(network, schedule, resolutions, task="verify")
    print(format_sweep(points))
    print()

    paper_point = next(
        p for p in points if p.r_s_km == 0.5 and p.r_t_min == 0.5
    )
    print(
        f"The paper's point: {paper_point.segments} segments, "
        f"{paper_point.t_max} steps, {paper_point.paper_vars} variables "
        f"(Table I: 654), verdict "
        f"{'SAT' if paper_point.satisfiable else 'UNSAT'} (Table I: No)."
    )
    print()
    print(
        "Reading: the deadlock verdict is stable from coarse to fine grids —\n"
        "the infeasibility is structural, not a discretisation artefact —\n"
        "while the encoding grows linearly with each halving of r_s or r_t."
    )

    print()
    print("Layout generation across spatial resolutions (r_t = 0.5 min):")
    gen_points = resolution_sweep(
        network, schedule, [(1.0, 0.5), (0.5, 0.5), (0.25, 0.5)],
        task="generate",
    )
    print(format_sweep(gen_points))
    print()
    print(
        "Finer spatial grids expose more candidate VSS borders: the same\n"
        "schedule may need fewer (shorter) virtual sections at r_s = 0.25 km\n"
        "than the 0.5 km grid can express."
    )


if __name__ == "__main__":
    main()
