"""Designing your own network: a branch line with a junction.

Shows the full public API on a network that is *not* one of the paper's case
studies: a main line with a branch to a port, mixed passenger/freight
traffic, an intermediate stop requirement, and JSON round-tripping.

Run:  python examples/custom_network.py
"""

from __future__ import annotations

from repro.network import NetworkBuilder
from repro.network.discretize import DiscreteNetwork
from repro.network.io import network_from_json, network_to_json
from repro.tasks import generate_layout, optimize_schedule, verify_schedule
from repro.trains import Schedule, Stop, Train, TrainRun
from repro.viz import format_task_result, render_layout, render_spacetime


def build_network():
    """City — Junction — Harbour, with a branch Junction — Port."""
    return (
        NetworkBuilder()
        .boundary("City-end")
        .link("c1")
        .switch("jct")
        .link("h1")
        .boundary("Harbour-end")
        .boundary("Port-end")
        .track("City-end", "c1", length_km=1.0, ttd="CITY", name="staCity")
        .track("c1", "jct", length_km=3.0, ttd="MAIN1", name="mainWest")
        .track("jct", "h1", length_km=3.0, ttd="MAIN2", name="mainEast")
        .track("h1", "Harbour-end", length_km=1.0, ttd="HARB", name="staHarbour")
        .track("jct", "Port-end", length_km=2.0, ttd="PORT", name="branchPort")
        .station("City", ["staCity"])
        .station("Harbour", ["staHarbour"])
        .station("Port", ["branchPort"])
        .build()
    )


def build_schedule():
    return Schedule(
        [
            # A passenger shuttle with an intermediate stop requirement at
            # Harbour cannot exist (wrong direction) — it goes City->Harbour.
            TrainRun(
                Train("IC-1", length_m=200, max_speed_kmh=120),
                start="City",
                goal="Harbour",
                departure_min=0.0,
                arrival_min=6.0,
            ),
            # A freight train to the Port branch, departing right behind.
            TrainRun(
                Train("FRT-2", length_m=600, max_speed_kmh=60),
                start="City",
                goal="Port",
                departure_min=1.0,
                arrival_min=9.0,
            ),
            # A second passenger service following on the main line.
            TrainRun(
                Train("IC-3", length_m=200, max_speed_kmh=120),
                start="City",
                goal="Harbour",
                departure_min=2.0,
                arrival_min=8.0,
            ),
        ],
        duration_min=12.0,
    )


def main() -> None:
    network = build_network()

    # JSON round-trip: this is how you would persist a hand-designed network.
    restored = network_from_json(network_to_json(network))
    net = DiscreteNetwork(restored, r_s_km=0.5)
    print(f"Network: {restored}")
    print(f"Discretised: {net}")
    print()

    schedule = build_schedule()
    r_t = 0.5  # minutes per step

    print("== Verification on pure TTDs ==")
    verification = verify_schedule(net, schedule, r_t)
    print(format_task_result(verification))
    print()

    if not verification.satisfiable:
        print("== Generating the cheapest VSS layout ==")
        generation = generate_layout(net, schedule, r_t)
        print(format_task_result(generation))
        print(render_layout(generation.solution.layout))
        print()
        print(render_spacetime(net, generation.solution))
        print()

    print("== What is the best possible timetable? ==")
    optimization = optimize_schedule(
        net, schedule, r_t, minimize_borders_secondary=True
    )
    print(format_task_result(optimization))
    for trajectory in optimization.solution.trajectories:
        print(
            f"  {trajectory.name}: arrives step {trajectory.arrival_step} "
            f"({trajectory.arrival_step * r_t:.1f} min)"
        )


if __name__ == "__main__":
    main()
