"""Capacity study: how many VSS borders buy how much schedule time?

A design-space exploration the paper's methodology enables but does not show
explicitly: on the Simple Layout, sweep a *budget* of allowed VSS borders
and ask the solver for the best achievable makespan under each budget —
the infrastructure-investment vs timetable-quality trade-off curve
(``repro.tasks.capacity_curve``).

Run:  python examples/capacity_study.py
"""

from __future__ import annotations

from repro.casestudies.simple_layout import simple_layout
from repro.tasks import capacity_curve
from repro.tasks.capacity import format_capacity_curve


def main() -> None:
    study = simple_layout()
    net = study.discretize()
    print(
        f"Simple Layout: {net.num_ttds} TTDs, "
        f"{len(net.free_border_candidates())} candidate VSS border positions"
    )
    print()
    points = capacity_curve(
        net, study.schedule, study.r_t_min,
        budgets=[0, 1, 2, 3, 5, 8, None],
    )
    print(format_capacity_curve(points))
    print()
    print(
        "Reading: budget 0 is classic fixed-block operation; the first few "
        "virtual\nborders buy most of the speed-up — exactly the ETCS Level 3 "
        "pitch."
    )


if __name__ == "__main__":
    main()
