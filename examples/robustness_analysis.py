"""Robustness analysis: how much delay can the timetable absorb?

A design task beyond the paper's three (its footnote 3 invites exactly this
kind of extension): after generating a minimal VSS layout, ask — per train —
how many time steps its departure may slip before the whole timetable
becomes unrealisable.  Then compare against a more generous layout: virtual
subsections don't just make tight timetables possible, they buy *slack*.

Run:  python examples/robustness_analysis.py
"""

from __future__ import annotations

from repro.casestudies.running_example import running_example
from repro.network.sections import VSSLayout
from repro.tasks import generate_layout, robustness_report


def main() -> None:
    study = running_example()
    net = study.discretize()
    r_t = study.r_t_min

    generated = generate_layout(net, study.schedule, r_t)
    minimal = generated.solution.layout
    finest = VSSLayout.finest(net)

    print("Running example, Fig. 1b schedule with its original deadlines.")
    print(f"Minimal VSS layout: {minimal.num_sections} sections "
          f"({len(minimal.added_borders)} added border(s))")
    print(f"Finest VSS layout:  {finest.num_sections} sections")
    print()

    print("Departure-delay tolerance per train (in 30 s steps):")
    print(f"{'train':>6} {'minimal layout':>16} {'finest layout':>15}")
    on_minimal = robustness_report(
        net, study.schedule, r_t, layout=minimal, max_steps=6
    )
    on_finest = robustness_report(
        net, study.schedule, r_t, layout=finest, max_steps=6
    )
    for name in sorted(on_minimal):
        print(f"{name:>6} {on_minimal[name]:>16} {on_finest[name]:>15}")
    print()
    print(
        "A tolerance of k means: that train may depart up to k steps late\n"
        "and routes still exist meeting every deadline. -1 means the base\n"
        "plan itself fails on that layout. More VSS -> more operational slack."
    )


if __name__ == "__main__":
    main()
