"""Quickstart: the paper's running example, end to end.

Reproduces the §II story of the paper:

1. verify the Fig. 1b schedule on the pure TTD layout  -> provably impossible,
2. generate a minimal VSS layout that makes it work    -> 5 sections,
3. optimise the schedule itself                        -> 7 sections, 7 steps,

printing the layouts and the space-time diagrams along the way.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.casestudies.running_example import running_example
from repro.tasks import generate_layout, optimize_schedule, verify_schedule
from repro.viz import (
    format_task_result,
    render_layout,
    render_network_summary,
    render_spacetime,
)


def main() -> None:
    study = running_example()
    net = study.discretize()

    print("=== The network (Fig. 1a) ===")
    print(render_network_summary(net))
    print()
    print("=== Schedule (Fig. 1b) ===")
    for run in study.schedule:
        deadline = (
            f"by {run.arrival_min} min" if run.arrival_min else "open"
        )
        print(
            f"  train {run.train.name}: {run.start} -> {run.goal}  "
            f"({run.train.max_speed_kmh:.0f} km/h, {run.train.length_m:.0f} m, "
            f"dep {run.departure_min} min, arr {deadline})"
        )
    print()

    print("=== Task 1: verification on the pure TTD layout ===")
    verification = verify_schedule(net, study.schedule, study.r_t_min)
    print(format_task_result(verification))
    print(
        "  -> the solver PROVED the schedule impossible with TTDs alone\n"
        "     (Example 2: after all four trains depart, every TTD is blocked)."
    )
    print()

    print("=== Task 2: generate a minimal VSS layout ===")
    generation = generate_layout(net, study.schedule, study.r_t_min)
    print(format_task_result(generation))
    print(render_layout(generation.solution.layout))
    print()
    print(render_spacetime(net, generation.solution))
    print()

    print("=== Task 3: optimise the schedule (drop the deadlines) ===")
    optimization = optimize_schedule(
        net, study.schedule, study.r_t_min, minimize_borders_secondary=True
    )
    print(format_task_result(optimization))
    print(render_layout(optimization.solution.layout))
    print()
    print(render_spacetime(net, optimization.solution))
    print()
    for trajectory in optimization.solution.trajectories:
        arrival_min = (
            trajectory.arrival_step * study.r_t_min
            if trajectory.arrival_step is not None
            else None
        )
        print(
            f"  train {trajectory.name}: arrives at step "
            f"{trajectory.arrival_step} ({arrival_min} min)"
        )
    print(
        f"\nAll trains done after {optimization.time_steps} steps "
        f"(paper Fig. 2b: 7 steps)."
    )


if __name__ == "__main__":
    main()
