PYTHON ?= python

.PHONY: tier1 test test-faults test-gateway smoke fuzz lint check bench \
	bench-portfolio bench-descent bench-lazy bench-profile bench-core \
	bench-gateway

# Tier-1 gate: the full test suite plus a 2-process portfolio/batch smoke
# on the running example, so the parallel paths are exercised on every run.
tier1: test smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Deterministic fault-injection suite: worker kills, hangs, slow starts,
# checkpoint write failures (REPRO_FAULTS plans; see repro.testing.faults).
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m faults

# Solve-gateway suite incl. chaos drills (cache hit, warm-start, deadline
# expiry, worker kill); REPRO_GATEWAY_FAULTS arms the inject hooks.
test-gateway:
	PYTHONPATH=src REPRO_GATEWAY_FAULTS=1 $(PYTHON) -m pytest -x -q \
		-m gateway

# The running-example verification is UNSAT by design, so exit 1 is the
# expected outcome; any other code (0 = unexpectedly SAT, >=2 = crash) is
# a distinct, loud failure rather than being folded into the same test.
smoke:
	PYTHONPATH=src $(PYTHON) -m repro generate --case running-example -j 2
	PYTHONPATH=src $(PYTHON) -m repro verify --case running-example -j 2; \
		rc=$$?; \
		if [ $$rc -eq 1 ]; then \
			echo "smoke: verify UNSAT as expected"; \
		elif [ $$rc -eq 0 ]; then \
			echo "smoke: verify unexpectedly SAT" >&2; exit 1; \
		else \
			echo "smoke: verify crashed with exit $$rc" >&2; \
			exit $$rc; \
		fi

# Differential fuzz: FUZZ_COUNT seeded scenarios through all four solver
# paths; failing seeds are shrunk and written to fuzz-failures/.
FUZZ_COUNT ?= 25
FUZZ_SEED ?= 0
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed $(FUZZ_SEED) \
		--count $(FUZZ_COUNT) -j 2 --report fuzz-report.json

# Lint with ruff when it is installed (CLI or module); skip gracefully on
# machines without it, so `make check` works in minimal containers too.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi

check: lint tier1 test-faults

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-portfolio:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_portfolio.py \
		--benchmark-only -q

# One-shot vs persistent-incremental descent on the running example;
# writes the perf-trajectory data point BENCH_descent.json.
bench-descent:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_descent.py \
		--out BENCH_descent.json

# Lazy (CEGAR) vs eager encoding on all four case studies; writes clause
# counts, refinement rounds and wall-clock to BENCH_lazy.json.
bench-lazy:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_lazy.py \
		--out BENCH_lazy.json

# Phase-profiler overhead bound (<=5%) and attribution sanity on the
# running example; writes BENCH_profile.json.  Every bench-* target
# also appends a git-SHA-keyed record to BENCH_HISTORY.jsonl — render
# the trajectories with `python -m repro trend`.
bench-profile:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_profile.py \
		--out BENCH_profile.json

# Raw CDCL throughput (props/s) of every available engine — legacy,
# interpreted kernel, compiled kernel when built — on the running
# example and Nordlandsbanen; writes BENCH_core.json.
bench-core:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_core.py \
		--out BENCH_core.json

# Gateway economics — cold solve vs fingerprint-cache hit vs delta-close
# warm start through a real in-process gateway; fails unless the cached
# hit is >=20x faster than the cold solve.  Writes BENCH_gateway.json.
bench-gateway:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_gateway.py \
		--out BENCH_gateway.json
