PYTHON ?= python

.PHONY: tier1 test test-faults smoke lint check bench bench-portfolio \
	bench-descent

# Tier-1 gate: the full test suite plus a 2-process portfolio/batch smoke
# on the running example, so the parallel paths are exercised on every run.
tier1: test smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Deterministic fault-injection suite: worker kills, hangs, slow starts,
# checkpoint write failures (REPRO_FAULTS plans; see repro.testing.faults).
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m faults

smoke:
	PYTHONPATH=src $(PYTHON) -m repro generate --case running-example -j 2
	PYTHONPATH=src $(PYTHON) -m repro verify --case running-example -j 2; \
		test $$? -eq 1  # running example verification is UNSAT by design

# Lint with ruff when it is installed (CLI or module); skip gracefully on
# machines without it, so `make check` works in minimal containers too.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi

check: lint tier1 test-faults

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-portfolio:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_portfolio.py \
		--benchmark-only -q

# One-shot vs persistent-incremental descent on the running example;
# writes the perf-trajectory data point BENCH_descent.json.
bench-descent:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_descent.py \
		--out BENCH_descent.json
