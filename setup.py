"""Setup shim: legacy installs plus the optional compiled SAT kernel.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this
legacy path; all real metadata lives in pyproject.toml.

Setting ``REPRO_BUILD_KERNEL=1`` compiles the CDCL hot path
(``src/repro/sat/_kernel.py``, written in a mypyc-compilable subset)
into a C extension whose ``.so`` shadows the source module — see
:mod:`repro.sat.kernel` for how the solver picks it up at runtime::

    pip install mypy
    REPRO_BUILD_KERNEL=1 python setup.py build_ext --inplace

Without the flag (the default) nothing is compiled and the package
stays dependency-free pure Python.
"""

import os

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_BUILD_KERNEL") == "1":
    from mypyc.build import mypycify  # needs `pip install mypy`

    ext_modules = mypycify(
        ["src/repro/sat/_kernel.py"],
        opt_level="3",
    )

setup(ext_modules=ext_modules)
