"""Tests for trains, schedules, and temporal discretisation."""

from __future__ import annotations

import pytest

from repro.trains.discretize import discretize_run, discretize_schedule
from repro.trains.schedule import Schedule, ScheduleError, Stop, TrainRun
from repro.trains.train import Train


class TestTrain:
    def test_valid(self):
        train = Train("ICE", length_m=400, max_speed_kmh=300)
        assert train.length_km == pytest.approx(0.4)

    @pytest.mark.parametrize("kwargs", [
        dict(name="", length_m=100, max_speed_kmh=100),
        dict(name="x", length_m=0, max_speed_kmh=100),
        dict(name="x", length_m=100, max_speed_kmh=0),
        dict(name="x", length_m=-5, max_speed_kmh=100),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Train(**kwargs)


class TestTrainRun:
    def make(self, **overrides):
        kwargs = dict(
            train=Train("T", 200, 120),
            start="A",
            goal="B",
            departure_min=0.0,
            arrival_min=5.0,
        )
        kwargs.update(overrides)
        return TrainRun(**kwargs)

    def test_valid(self):
        run = self.make()
        assert run.stops == ()

    def test_negative_departure(self):
        with pytest.raises(ScheduleError):
            self.make(departure_min=-1.0)

    def test_arrival_before_departure(self):
        with pytest.raises(ScheduleError):
            self.make(departure_min=3.0, arrival_min=2.0)

    def test_start_equals_goal(self):
        with pytest.raises(ScheduleError):
            self.make(goal="A")

    def test_open_arrival_allowed(self):
        run = self.make(arrival_min=None)
        assert run.arrival_min is None


class TestSchedule:
    def run(self, name="T", dep=0.0, arr=5.0):
        return TrainRun(Train(name, 200, 120), "A", "B", dep, arr)

    def test_valid(self):
        schedule = Schedule([self.run()], duration_min=10.0)
        assert len(schedule) == 1
        assert schedule.run_of("T").train.name == "T"

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule([], 10.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule([self.run(), self.run()], 10.0)

    def test_departure_after_end_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule([self.run(dep=11.0, arr=12.0)], 10.0)

    def test_arrival_after_end_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule([self.run(arr=11.0)], 10.0)

    def test_unknown_train_lookup(self):
        schedule = Schedule([self.run()], 10.0)
        with pytest.raises(ScheduleError):
            schedule.run_of("nope")

    def test_without_deadlines(self):
        schedule = Schedule([self.run()], 10.0)
        free = schedule.without_deadlines()
        assert all(run.arrival_min is None for run in free)
        # The original is untouched.
        assert schedule.runs[0].arrival_min == 5.0


class TestDiscretizeRun:
    def test_length_and_speed(self, micro_net):
        run = TrainRun(Train("T", 700, 120), "A", "B", 0.0, 4.0)
        discrete = discretize_run(micro_net, run, 0, r_t_min=0.5, t_max=10)
        assert discrete.length_segments == 2  # ceil(0.7 / 0.5)
        assert discrete.speed_segments == 2  # 120 km/h = 1 km / 0.5 min
        assert discrete.departure_step == 0
        assert discrete.arrival_step == 8

    def test_speed_at_least_one(self, micro_net):
        run = TrainRun(Train("T", 100, 10), "A", "B", 0.0, 4.0)
        discrete = discretize_run(micro_net, run, 0, r_t_min=0.5, t_max=10)
        assert discrete.speed_segments == 1

    def test_arrival_clamped_to_horizon(self, micro_net):
        run = TrainRun(Train("T", 100, 120), "A", "B", 0.0, 5.0)
        discrete = discretize_run(micro_net, run, 0, r_t_min=0.5, t_max=10)
        assert discrete.arrival_step == 9

    def test_train_too_long_for_station(self, micro_net):
        run = TrainRun(Train("T", 1500, 120), "A", "B", 0.0, 4.0)
        with pytest.raises(ScheduleError, match="does not fit"):
            discretize_run(micro_net, run, 0, r_t_min=0.5, t_max=10)

    def test_stop_windows(self, micro_net):
        micro_net.network.stations["M"] = ["mid"]
        run = TrainRun(
            Train("T", 100, 120), "A", "B", 0.0, 4.5,
            stops=(Stop("M", earliest_min=1.0, latest_min=3.0),),
        )
        discrete = discretize_run(micro_net, run, 0, r_t_min=0.5, t_max=10)
        stop = discrete.stops[0]
        assert stop.earliest_step == 2
        assert stop.latest_step == 6
        assert set(stop.segments) == set(micro_net.track_segments("mid"))

    def test_empty_stop_window_rejected(self, micro_net):
        micro_net.network.stations["M"] = ["mid"]
        run = TrainRun(
            Train("T", 100, 120), "A", "B", 0.0, 4.5,
            stops=(Stop("M", earliest_min=3.0, latest_min=1.0),),
        )
        with pytest.raises(ScheduleError, match="empty stop window"):
            discretize_run(micro_net, run, 0, r_t_min=0.5, t_max=10)


class TestDiscretizeSchedule:
    def test_t_max(self, micro_net, single_train_schedule):
        runs, t_max = discretize_schedule(micro_net,
                                          single_train_schedule, 0.5)
        assert t_max == 10
        assert len(runs) == 1
        assert runs[0].index == 0

    def test_invalid_resolution(self, micro_net, single_train_schedule):
        with pytest.raises(ScheduleError):
            discretize_schedule(micro_net, single_train_schedule, 0.0)

    def test_departure_beyond_horizon(self, micro_net):
        run = TrainRun(Train("T", 100, 120), "A", "B", 4.9, None)
        schedule = Schedule([run], 5.0)
        # At r_t = 2.0 the 5-minute scenario is only 2 steps longs; a
        # departure rounding to step 2 falls outside.
        with pytest.raises(ScheduleError, match="departs at step"):
            discretize_schedule(micro_net, schedule, 2.0)
