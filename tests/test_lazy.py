"""Lazy (CEGAR) constraint generation: unit and integration tests.

Covers the deferred build, the emit/count parity between the lazy pair
emitters and the eager families, the refinement loop itself, the task
plumbing (defaults, proof forcing eager, metrics keys), and the
parallel service path's verdict agreement.
"""

from __future__ import annotations

import pytest

from repro.encoding.encoder import LAZY_FAMILIES
from repro.encoding.lazy import LazyRefiner, solve_lazy_verification
from repro.network.sections import VSSLayout
from repro.sat.portfolio import fork_available
from repro.tasks import generate_layout, verify_schedule
from repro.tasks.common import build_encoding

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _encodings(net, schedule, r_t_min, layout=None):
    """The same scenario built eagerly and lazily, layouts pinned."""
    eager = build_encoding(net, schedule, r_t_min, None, lazy=False)
    lazy = build_encoding(net, schedule, r_t_min, None, lazy=True)
    if layout is None:
        layout = VSSLayout.pure_ttd(net)
    eager.pin_layout(layout)
    lazy.pin_layout(layout)
    return eager, lazy


class TestLazyBuild:
    def test_defers_cross_train_families(self, micro_net,
                                         crossing_schedule):
        eager, lazy = _encodings(micro_net, crossing_schedule, 0.5)
        assert lazy.deferred_families == LAZY_FAMILIES
        assert eager.deferred_families == ()
        for family in LAZY_FAMILIES:
            assert family not in lazy.family_stats
            assert family in eager.family_stats
        # Deferring families must not change the variable space: the
        # cross-train clauses only reuse occupies/border variables.
        assert lazy.cnf.num_vars == eager.cnf.num_vars
        assert lazy.cnf.num_clauses < eager.cnf.num_clauses

    def test_deferred_count_matches_eager_family_stats(
        self, micro_net, crossing_schedule
    ):
        """The counting walk prices exactly what eager would emit."""
        eager, lazy = _encodings(micro_net, crossing_schedule, 0.5)
        counts = lazy.deferred_eager_count()
        assert set(counts) == set(LAZY_FAMILIES)
        for family in LAZY_FAMILIES:
            assert counts[family] == eager.family_stats[family]["clauses"]

    def test_refiner_rejects_eager_encoding(self, micro_net,
                                            crossing_schedule):
        eager, _ = _encodings(micro_net, crossing_schedule, 0.5)
        with pytest.raises(ValueError):
            LazyRefiner(eager)


class TestLazyVerificationLoop:
    def test_single_train_clean_without_refinement(
        self, micro_net, single_train_schedule
    ):
        """One train can never violate a cross-train constraint."""
        _, lazy = _encodings(micro_net, single_train_schedule, 0.5)
        outcome = solve_lazy_verification(lazy)
        assert outcome.satisfiable
        assert outcome.refiner.rounds == 1
        assert outcome.refiner.clauses_added == 0
        stats = outcome.refiner.stats()
        assert stats["lazy.constraints_added"] == 0
        assert stats["lazy.clauses_saved"] == stats["lazy.eager_clauses"]

    def test_unsat_verdict_matches_eager(self, micro_net,
                                         crossing_schedule):
        # Two opposing trains on a single line with pure TTDs deadlock.
        eager_result = verify_schedule(
            micro_net, crossing_schedule, 0.5, lazy=False
        )
        outcome = solve_lazy_verification(
            _encodings(micro_net, crossing_schedule, 0.5)[1]
        )
        assert not eager_result.satisfiable
        assert not outcome.satisfiable

    def test_sat_needs_refinement_on_loop(self, loop_net,
                                          crossing_schedule):
        """On the passing loop the schedule is SAT, but the relaxation's
        first model typically violates separation — refinement adds the
        violated instances and the final model is validator-clean."""
        _, lazy = _encodings(loop_net, crossing_schedule, 0.5)
        outcome = solve_lazy_verification(lazy)
        assert outcome.satisfiable
        assert outcome.refiner.rounds >= 1
        # Only a strict subset of the eager cross-train clauses was
        # needed — the whole point of the exercise.
        saved = outcome.refiner.stats()["lazy.clauses_saved"]
        assert saved > 0


class TestTaskPlumbing:
    def test_verify_lazy_default_emits_metrics(self, loop_net,
                                               crossing_schedule):
        result = verify_schedule(loop_net, crossing_schedule, 0.5)
        assert result.satisfiable
        assert "lazy.rounds" in result.metrics
        assert "lazy.constraints_added" in result.metrics
        assert "lazy.clauses_saved" in result.metrics

    def test_verify_no_lazy_has_no_lazy_metrics(self, loop_net,
                                                crossing_schedule):
        result = verify_schedule(
            loop_net, crossing_schedule, 0.5, lazy=False
        )
        assert result.satisfiable
        assert "lazy.rounds" not in result.metrics

    def test_with_proof_forces_eager(self, micro_net, crossing_schedule):
        """Proof logging needs the full clause set as premises, so the
        lazy default silently yields to the eager encoder."""
        result = verify_schedule(
            micro_net, crossing_schedule, 0.5, with_proof=True, lazy=True
        )
        assert not result.satisfiable
        assert result.proof_checked is True
        assert "lazy.rounds" not in result.metrics

    def test_lazy_generation_matches_eager_objective(
        self, micro_net, crossing_schedule
    ):
        eager = generate_layout(micro_net, crossing_schedule, 0.5)
        lazy = generate_layout(
            micro_net, crossing_schedule, 0.5, lazy=True
        )
        assert lazy.satisfiable == eager.satisfiable
        assert lazy.objective_value == eager.objective_value
        assert "lazy.rounds" in lazy.metrics

    def test_core_strategy_stays_eager(self, micro_net,
                                       crossing_schedule):
        result = generate_layout(
            micro_net, crossing_schedule, 0.5, strategy="core", lazy=True
        )
        assert result.satisfiable
        assert "lazy.rounds" not in result.metrics


@needs_fork
class TestLazyParallel:
    def test_parallel_verification_agrees(self, loop_net,
                                          crossing_schedule):
        serial = verify_schedule(
            loop_net, crossing_schedule, 0.5, lazy=True
        )
        parallel = verify_schedule(
            loop_net, crossing_schedule, 0.5, parallel=2, lazy=True
        )
        assert parallel.satisfiable == serial.satisfiable
        assert parallel.portfolio is not None
        assert parallel.portfolio["calls"] >= 1


class TestLazyStrategies:
    """The grouping/selection strategy matrix of the refiner."""

    def test_parse_valid_cells(self):
        from repro.encoding.lazy import parse_lazy_strategy

        assert parse_lazy_strategy("violation/all") == ("violation", None)
        assert parse_lazy_strategy("pair/first-1") == ("pair", 1)
        assert parse_lazy_strategy("family/first-32") == ("family", 32)

    @pytest.mark.parametrize("bad", [
        "nope/all", "pair/some", "pair/first-0", "pair/first-x",
        "pair", "", "violation/all/extra",
    ])
    def test_parse_rejects_malformed_cells(self, bad):
        from repro.encoding.lazy import parse_lazy_strategy

        with pytest.raises(ValueError):
            parse_lazy_strategy(bad)

    @pytest.mark.parametrize("strategy", [
        "violation/all", "violation/first-1", "pair/all",
        "pair/first-1", "family/all", "family/first-1",
    ])
    def test_all_cells_agree_on_verdict(self, loop_net,
                                        crossing_schedule, strategy):
        reference = verify_schedule(
            loop_net, crossing_schedule, 0.5, lazy=False
        )
        cell = verify_schedule(
            loop_net, crossing_schedule, 0.5, lazy=True,
            lazy_strategy=strategy,
        )
        assert cell.satisfiable == reference.satisfiable

    @pytest.mark.parametrize("strategy", [
        "violation/all", "pair/first-1", "family/all",
    ])
    def test_cells_agree_on_generation_optimum(
        self, micro_net, crossing_schedule, strategy
    ):
        eager = generate_layout(micro_net, crossing_schedule, 0.5)
        cell = generate_layout(
            micro_net, crossing_schedule, 0.5, lazy=True,
            lazy_strategy=strategy,
        )
        assert cell.satisfiable == eager.satisfiable
        assert cell.objective_value == eager.objective_value

    def test_coarser_grouping_needs_fewer_rounds(self, loop_net,
                                                 crossing_schedule):
        """Family grouping amortises a round's finding across the whole
        family — it can never need *more* rounds than per-violation."""
        fine = verify_schedule(
            loop_net, crossing_schedule, 0.5, lazy=True,
            lazy_strategy="violation/all",
        )
        coarse = verify_schedule(
            loop_net, crossing_schedule, 0.5, lazy=True,
            lazy_strategy="family/all",
        )
        assert coarse.metrics["lazy.rounds"] <= fine.metrics["lazy.rounds"]

    def test_bad_strategy_surfaces_early(self, loop_net,
                                         crossing_schedule):
        with pytest.raises(ValueError):
            verify_schedule(
                loop_net, crossing_schedule, 0.5, lazy=True,
                lazy_strategy="bogus/all",
            )
