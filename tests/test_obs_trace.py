"""Unit tests for the span tracer (repro.obs.trace)."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    trace.reset()
    yield
    trace.reset()


class TestSpanRecording:
    def test_nesting_depth_and_paths(self):
        tracer = trace.install(trace.Tracer())
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        names = [s.name for s in tracer.spans]
        # Children close before their parent, so they are appended first.
        assert names == ["inner", "sibling", "outer"]
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].path == "outer/inner"
        assert by_name["sibling"].path == "outer/sibling"

    def test_timing_is_monotone_and_contained(self):
        tracer = trace.install(trace.Tracer())
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.t0 <= inner.t1
        assert outer.t0 <= inner.t0
        assert inner.t1 <= outer.t1
        assert outer.duration() >= inner.duration()

    def test_span_attributes_and_add(self):
        tracer = trace.install(trace.Tracer())
        with trace.span("solve", processes=2) as handle:
            handle.add(verdict="UNSAT")
        (span,) = tracer.spans
        assert span.args == {"processes": 2, "verdict": "UNSAT"}

    def test_exception_records_error_and_propagates(self):
        tracer = trace.install(trace.Tracer())
        with pytest.raises(ValueError):
            with trace.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.args["error"] == "ValueError"

    def test_events_and_counters(self):
        tracer = trace.install(trace.Tracer())
        with trace.span("descent"):
            trace.event("improved", cost=3)
            trace.counter("progress", conflicts=10)
        kinds = {s.name: s.kind for s in tracer.spans}
        assert kinds == {
            "improved": "event",
            "progress": "counter",
            "descent": "span",
        }
        event = next(s for s in tracer.spans if s.kind == "event")
        assert event.t0 == event.t1
        assert event.path == "descent/improved"


class TestDisabledMode:
    def test_span_is_the_shared_noop(self):
        assert not trace.enabled()
        handle = trace.span("anything", attr=1)
        assert handle is trace.NOOP_SPAN
        with handle as h:
            h.add(more=2)  # must not raise

    def test_event_counter_merge_export_are_noops(self):
        trace.event("x")
        trace.counter("y", v=1)
        trace.merge([{"name": "z", "t0": 0, "t1": 1}])
        assert trace.export_spans() == []

    def test_install_and_reset_toggle(self):
        trace.install(trace.Tracer())
        assert trace.enabled()
        trace.reset()
        assert not trace.enabled()
        assert trace.get_tracer() is None


class TestSerialization:
    def _sample(self):
        tracer = trace.install(trace.Tracer())
        with trace.span("outer", n=1):
            with trace.span("inner"):
                pass
            trace.event("mark", note="hi")
        trace.counter("gauge", v=2.5)
        return tracer.export()

    def test_jsonl_round_trip(self, tmp_path):
        records = self._sample()
        path = str(tmp_path / "trace.jsonl")
        trace.write_jsonl(records, path)
        assert trace.read_jsonl(path) == records

    def test_span_dict_round_trip(self):
        for record in self._sample():
            assert trace.Span.from_dict(record).as_dict() == record

    def test_chrome_trace_conversion(self):
        records = self._sample()
        chrome = trace.to_chrome_trace(records)
        events = chrome["traceEvents"]
        assert len(events) == len(records)
        phases = sorted({e["ph"] for e in events})
        assert phases == ["C", "X", "i"]
        # Timestamps are normalised against the earliest span.
        assert min(e["ts"] for e in events) == 0.0
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in complete)

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        trace.write_chrome_trace(self._sample(), path)
        with open(path) as handle:
            data = json.load(handle)
        assert "traceEvents" in data

    def test_chrome_trace_empty(self):
        assert trace.to_chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


class TestMerge:
    def test_child_spans_merge_with_own_track(self):
        parent = trace.install(trace.Tracer())
        with trace.span("parent-work"):
            pass
        child = trace.fork_child(tid="worker-1")
        with child.span("child-work"):
            pass
        trace.merge(child.export())
        tids = {s.tid for s in parent.spans}
        assert tids == {"main", "worker-1"}
        # Shared monotonic clock: merged spans live on one timeline.
        records = parent.export()
        chrome = trace.to_chrome_trace(records)
        assert all(e["ts"] >= 0 for e in chrome["traceEvents"])
