"""Unit tests for the metrics registry and run report (repro.obs)."""

from __future__ import annotations

import pytest

from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, read_json
from repro.obs.report import RunReport
from repro.sat.types import SolverStats


@pytest.fixture(autouse=True)
def _clean_tracer():
    trace.reset()
    yield
    trace.reset()


class TestInstruments:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set("g", 1.5)
        reg.set("g", 2.5)
        for value in (1.0, 3.0, 2.0):
            reg.observe("h", value)
        out = reg.as_dict()
        assert out["c"] == 5
        assert out["g"] == 2.5
        assert out["h"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_as_dict_keys_are_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.set("m", 1)
        assert list(reg.as_dict()) == ["a", "m", "z"]

    def test_absorb_counters_skips_non_numerics(self):
        reg = MetricsRegistry()
        reg.absorb_counters(
            {"n": 3, "flag": True, "name": "base", "f": 0.5}, "p."
        )
        out = reg.as_dict()
        assert out == {"p.n": 3, "p.f": 0.5}

    def test_absorb_solver_stats_uses_solver_prefix(self):
        stats = SolverStats(conflicts=7, propagations=100)
        reg = MetricsRegistry()
        reg.absorb_solver_stats(stats.as_dict())
        out = reg.as_dict()
        assert out["solver.conflicts"] == 7
        assert out["solver.propagations"] == 100

    def test_absorb_encoder_families(self):
        reg = MetricsRegistry()
        reg.absorb_encoder({"placement": {"vars": 10, "clauses": 20}})
        out = reg.as_dict()
        assert out["encoder.placement.vars"] == 10
        assert out["encoder.placement.clauses"] == 20


class TestMergeAndIO:
    def test_merge_dict_adds_counters_and_merges_histograms(self):
        first = MetricsRegistry()
        first.inc("races", 2)
        first.observe("t", 1.0)
        first.observe("t", 5.0)
        second = MetricsRegistry()
        second.inc("races", 3)
        second.observe("t", 3.0)
        merged = MetricsRegistry()
        merged.merge_dict(first.as_dict())
        merged.merge_dict(second.as_dict())
        out = merged.as_dict()
        assert out["races"] == 5
        assert out["t"]["count"] == 3
        assert out["t"]["sum"] == 9.0
        assert out["t"]["min"] == 1.0
        assert out["t"]["max"] == 5.0

    def test_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("solver.conflicts", 12)
        reg.observe("portfolio.wall_time_s", 0.25)
        path = str(tmp_path / "metrics.json")
        reg.write_json(path)
        assert read_json(path) == reg.as_dict()


class TestRunReport:
    def _spans(self):
        tracer = trace.install(trace.Tracer())
        with trace.span("verify"):
            with trace.span("encode"):
                pass
            with trace.span("solve"):
                trace.event("restart", number=1)
        return tracer.export()

    def test_report_renders_tree_and_metrics(self):
        reg = MetricsRegistry()
        reg.inc("solver.conflicts", 42)
        reg.observe("portfolio.wall_time_s", 0.5)
        report = RunReport(self._spans(), reg.as_dict())
        text = report.render()
        assert "verify" in text
        assert "encode" in text
        assert "solver.conflicts" in text
        assert "42" in text
        assert "restart" in text

    def test_timing_rows_aggregate_by_path(self):
        tracer = trace.install(trace.Tracer())
        for _ in range(3):
            with trace.span("probe"):
                pass
        report = RunReport(tracer.export(), {})
        (row,) = report.timing_rows()
        path, count, total = row
        assert path == "probe"
        assert count == 3
        assert total >= 0

    def test_from_files(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        metrics_path = str(tmp_path / "m.json")
        trace.write_jsonl(self._spans(), trace_path)
        reg = MetricsRegistry()
        reg.inc("solver.conflicts", 1)
        reg.write_json(metrics_path)
        report = RunReport.from_files(trace_path, metrics_path)
        assert report.wall_time_s() > 0
        assert "solver.conflicts" in report.render()

    def test_report_without_trace(self):
        report = RunReport([], {"solver.conflicts": 3})
        text = report.render()
        assert "solver.conflicts" in text
