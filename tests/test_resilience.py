"""Deadline-governed anytime solving, checkpoint/resume, batch recovery.

The acceptance properties of the resilience layer:

* a deadline ends every path (serial, one-shot portfolio, persistent
  service) with the best-so-far result, near the budget, never with an
  exception or a hang;
* a SIGKILLed descent resumes from its checkpoint and reaches the same
  optimum with strictly fewer probes;
* a batch whose worker dies recovers the lost jobs (retry pools, then
  serially in the parent) and says so in its report.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time

import pytest

from repro.casestudies.running_example import running_example
from repro.logic import CNF, VarPool
from repro.opt import CheckpointError, minimize_sum
from repro.opt.checkpoint import descent_fingerprint, load_checkpoint
from repro.sat.portfolio import fork_available
from repro.sat.solver import Solver
from repro.sat.types import SolveResult, SolverConfig
from repro.tasks.batch import BatchJob, run_batch
from repro.tasks.optimization import optimize_schedule
from repro.tasks.result import TaskResult

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


# --- helpers (module-level: fork/pickle-safe) ------------------------------


def _staircase(n: int = 8):
    """A descent with one improvement per cost level (8 → 7 → … → 2).

    The objective counts *false* variables while the solver's default
    phase prefers false, so the initial model is maximally bad and the
    linear descent walks the whole staircase — ideal for interrupting.
    """
    cnf = CNF(VarPool())
    lits = [cnf.pool.var(("x", i)) for i in range(n)]
    # Every (n-1)-subset contains a false var => at least 2 false.
    for combo in itertools.combinations(range(n), n - 1):
        cnf.add([-lits[i] for i in combo])
    return cnf, [-lit for lit in lits]


def _pigeonhole(pigeons: int = 8):
    """PHP(n, n-1): small, UNSAT, and exponentially hard for CDCL."""
    holes = pigeons - 1
    cnf = CNF(VarPool())
    var = {
        (p, h): cnf.pool.var(("p", p, h))
        for p in range(pigeons) for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add([-var[p1, h], -var[p2, h]])
    return cnf


def _double(value, seed=0):
    return value * 2


def _returns_object(value):
    return object()  # not JSON-representable: manifest cannot restore it


def _task_result_job(value, seed=0):
    """A job returning a TaskResult, like every table1 row does."""
    return TaskResult(
        task="generation", variables=value, satisfiable=True,
        num_sections=5, time_steps=9, runtime_s=0.1,
        solver_stats={"conflicts": 3}, status="optimal",
    )


def _die_in_pool_worker(value):
    """SIGKILL the process when running inside a pool worker.

    ``multiprocessing.parent_process()`` is None in the batch parent, so
    the serial recovery path survives and returns the value.
    """
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 1


def _sleep_job(seconds):
    time.sleep(seconds)
    return "slept"


_SLOW_S = 0.5


@pytest.fixture
def slow_solves(monkeypatch):
    """Make every solve cost ~0.5 s of wall clock, *charged to the
    deadline* — forked portfolio/service workers inherit the patch."""
    original = Solver.solve

    def slow(self, assumptions=()):
        time.sleep(_SLOW_S)
        if self.config.wall_deadline_s is not None:
            self.config.wall_deadline_s = max(
                self.config.wall_deadline_s - _SLOW_S, 0.0
            )
        return original(self, assumptions)

    monkeypatch.setattr(Solver, "solve", slow)


# --- solver-level wall deadline --------------------------------------------


class TestSolverDeadline:
    def test_expired_deadline_returns_unknown(self):
        solver = Solver(SolverConfig(wall_deadline_s=0.0))
        solver.add_clause([1, 2])
        assert solver.solve() is SolveResult.UNKNOWN
        assert solver.stats.deadline_hits == 1

    def test_hard_instance_stops_near_deadline(self):
        solver = _pigeonhole(8).to_solver(
            Solver(SolverConfig(wall_deadline_s=0.1))
        )
        start = time.perf_counter()
        verdict = solver.solve()
        elapsed = time.perf_counter() - start
        assert verdict is SolveResult.UNKNOWN
        assert solver.stats.deadline_hits == 1
        assert elapsed < 2.0  # stopped cooperatively, not at UNSAT

    def test_conflict_free_search_notices_deadline(self):
        # No clauses: the search is pure decisions, so the deadline must
        # be caught on the decision path (the conflict path never runs).
        solver = Solver(SolverConfig(wall_deadline_s=0.02))
        solver.ensure_var(200_000)
        assert solver.solve() is SolveResult.UNKNOWN
        assert solver.stats.deadline_hits == 1

    def test_no_deadline_is_unchanged(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1])
        assert solver.solve() is SolveResult.SAT
        assert solver.stats.deadline_hits == 0


# --- descent-level deadline ------------------------------------------------


class TestDescentDeadline:
    def test_zero_budget_yields_timeout_not_infeasible(self):
        cnf, obj = _staircase()
        result = minimize_sum(cnf, obj, wall_deadline_s=0.0)
        assert result.status == "timeout"
        assert not result.feasible
        assert not result.proven_optimal

    def test_partial_descent_keeps_best_model(self, slow_solves):
        cnf, obj = _staircase()
        result = minimize_sum(cnf, obj, wall_deadline_s=2 * _SLOW_S + 0.2)
        assert result.status == "timeout"
        assert result.feasible
        # One full staircase needs 8 solves; two fit in the budget.
        assert result.solve_calls < 8
        assert result.lower_bound <= result.cost == result.upper_bound
        # The model really has the claimed cost.
        model = set(result.model)
        assert sum(1 for lit in obj if lit in model) == result.cost

    def test_descent_stats_count_deadline_hits(self, slow_solves):
        cnf, obj = _staircase()
        result = minimize_sum(cnf, obj, wall_deadline_s=2 * _SLOW_S + 0.2)
        assert result.solver_stats.get("deadline_hits", 0) >= 1


# --- task-level deadline acceptance (all three execution paths) ------------


class TestTaskDeadlineAcceptance:
    BUDGET_S = 2.0

    def _run(self, parallel: int, persistent: bool):
        study = running_example()
        net = study.discretize()
        start = time.perf_counter()
        result = optimize_schedule(
            net, study.schedule, study.r_t_min,
            parallel=parallel, persistent=persistent,
            timeout_s=self.BUDGET_S,
        )
        elapsed = time.perf_counter() - start
        assert result.satisfiable
        assert result.status == "timeout"
        assert result.time_steps is not None
        assert result.objective_value is not None
        assert result.lower_bound <= result.upper_bound
        # Within the budget ±25%, plus fixed encode/fork overhead.
        assert elapsed < self.BUDGET_S * 1.25 + 1.0
        assert result.metrics.get("deadline.descent_timeouts", 0) >= 1

    def test_serial(self, slow_solves):
        self._run(parallel=1, persistent=False)

    @needs_fork
    def test_one_shot_portfolio(self, slow_solves):
        self._run(parallel=2, persistent=False)

    @needs_fork
    def test_persistent_service(self, slow_solves):
        self._run(parallel=2, persistent=True)


# --- checkpoint / resume ---------------------------------------------------


class TestCheckpointResume:
    def test_finished_checkpoint_replays_without_probing(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        cnf, obj = _staircase()
        first = minimize_sum(cnf, obj, checkpoint_path=path)
        assert first.proven_optimal and first.checkpoint["writes"] > 0

        cnf, obj = _staircase()
        replayed = minimize_sum(cnf, obj, checkpoint_path=path,
                                resume=True)
        assert replayed.resumed
        assert replayed.solve_calls == 0
        assert replayed.cost == first.cost
        assert replayed.proven_optimal

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        cnf, obj = _staircase()
        minimize_sum(cnf, obj, checkpoint_path=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "improved", "cost":')  # torn by a kill
        state = load_checkpoint(path)
        assert state is not None and state.best_cost == 2

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        cnf, obj = _staircase()
        minimize_sum(cnf, obj, checkpoint_path=path)
        other_cnf, other_obj = _staircase(6)  # a different formula
        with pytest.raises(CheckpointError):
            minimize_sum(other_cnf, other_obj, checkpoint_path=path,
                         resume=True)

    def test_fingerprint_is_pre_totalizer(self):
        cnf, obj = _staircase()
        before = descent_fingerprint(
            cnf.num_vars, cnf.num_clauses, obj, "linear"
        )
        minimize_sum(cnf, obj)  # grows cnf with totalizer clauses
        after = descent_fingerprint(
            cnf.num_vars, cnf.num_clauses, obj, "linear"
        )
        assert before != after  # resume must fingerprint *before* building

    @needs_fork
    def test_resume_after_sigkill_uses_fewer_probes(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        ctx = multiprocessing.get_context("fork")

        def victim():
            cnf, obj = _staircase()
            seen = []

            def bomb(cost):
                seen.append(cost)
                if len(seen) >= 3:
                    os.kill(os.getpid(), signal.SIGKILL)

            minimize_sum(cnf, obj, checkpoint_path=path,
                         on_improvement=bomb)

        proc = ctx.Process(target=victim)
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == -signal.SIGKILL

        cnf, obj = _staircase()
        baseline = minimize_sum(cnf, obj)
        assert baseline.proven_optimal

        cnf, obj = _staircase()
        resumed = minimize_sum(cnf, obj, checkpoint_path=path, resume=True)
        assert resumed.resumed
        assert resumed.proven_optimal
        assert resumed.cost == baseline.cost
        # The checkpointed staircase prefix is not re-proven.
        assert 0 < resumed.solve_calls < baseline.solve_calls
        model = set(resumed.model)
        assert sum(1 for lit in obj if lit in model) == resumed.cost

    @needs_fork
    def test_resume_after_sigkill_portfolio(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        ctx = multiprocessing.get_context("fork")

        def victim():
            cnf, obj = _staircase()
            seen = []

            def bomb(cost):
                seen.append(cost)
                if len(seen) >= 2:
                    os.kill(os.getpid(), signal.SIGKILL)

            minimize_sum(cnf, obj, checkpoint_path=path,
                         on_improvement=bomb)

        proc = ctx.Process(target=victim)
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == -signal.SIGKILL

        # Resume the serial run's checkpoint on the persistent portfolio.
        cnf, obj = _staircase()
        resumed = minimize_sum(cnf, obj, parallel=2, persistent=True,
                               checkpoint_path=path, resume=True)
        assert resumed.resumed
        assert resumed.cost == 2
        assert resumed.proven_optimal


# --- batch recovery --------------------------------------------------------


class TestBatchRecovery:
    @needs_fork
    def test_worker_sigkill_recovers_serially(self):
        jobs = [
            BatchJob("kill-me", _die_in_pool_worker, args=(10,)),
            BatchJob("fine", _double, args=(21,)),
        ]
        report = run_batch(jobs, processes=2, max_retries=1,
                           retry_backoff_s=0.01)
        assert report.ok
        assert report.value_of("kill-me") == 11  # parent ran it
        assert report.value_of("fine") == 42
        assert "kill-me" in report.recovered_jobs
        assert not report.serial
        assert report.serial_fallback is report.serial  # legacy alias
        assert report.pool_error != ""
        assert report.metrics.get("batch.pool_broken", 0) >= 1
        assert report.metrics.get("batch.serial_recoveries", 0) >= 1

    def test_job_timeout_serial(self):
        jobs = [
            BatchJob("slow", _sleep_job, args=(30.0,)),
            BatchJob("fast", _double, args=(1,)),
        ]
        start = time.perf_counter()
        report = run_batch(jobs, processes=1, job_timeout_s=0.2)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # nowhere near the 30 s sleep
        assert not report.ok
        [failure] = report.failures()
        assert failure.name == "slow"
        assert failure.error.startswith("BatchJobTimeout")
        assert report.value_of("fast") == 2
        assert report.metrics.get("batch.job_timeouts", 0) == 1

    @needs_fork
    def test_job_timeout_in_pool(self):
        jobs = [
            BatchJob("slow", _sleep_job, args=(30.0,)),
            BatchJob("fast", _double, args=(2,)),
        ]
        start = time.perf_counter()
        report = run_batch(jobs, processes=2, job_timeout_s=0.2)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0
        [failure] = report.failures()
        assert failure.name == "slow"
        assert failure.error.startswith("BatchJobTimeout")

    def test_manifest_resume_skips_finished_jobs(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        jobs = [
            BatchJob("a", _double, args=(1,)),
            BatchJob("b", _double, args=(2,)),
        ]
        first = run_batch(jobs, processes=1, manifest_path=path)
        assert first.ok and first.resumed_jobs == []

        second = run_batch(jobs, processes=1, manifest_path=path)
        assert second.ok
        assert second.resumed_jobs == ["a", "b"]
        assert second.values() == first.values()
        assert second.metrics.get("batch.manifest_restored", 0) == 2

    def test_manifest_reruns_non_restorable_values(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        jobs = [BatchJob("obj", _returns_object, args=(1,))]
        run_batch(jobs, processes=1, manifest_path=path)
        second = run_batch(jobs, processes=1, manifest_path=path)
        assert second.ok
        assert second.resumed_jobs == []  # value could not be restored
        assert second.metrics.get("batch.manifest_skipped", 0) == 1

    def test_manifest_restores_task_results(self, tmp_path):
        # TaskResult round-trips through its to_manifest/from_manifest
        # codec, so a table1 resume skips finished rows.
        path = str(tmp_path / "manifest.jsonl")
        jobs = [BatchJob("row", _task_result_job, args=(656,))]
        first = run_batch(jobs, processes=1, manifest_path=path)
        second = run_batch(jobs, processes=1, manifest_path=path)
        assert second.resumed_jobs == ["row"]
        restored = second.value_of("row")
        assert isinstance(restored, TaskResult)
        assert restored.table_row() == first.value_of("row").table_row()
        assert restored.solver_stats == {"conflicts": 3}
        assert restored.status == "optimal"
        assert restored.solution is None  # dropped by the codec

    def test_manifest_keyed_by_seed(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        jobs = [BatchJob("a", _double, args=(1,))]
        run_batch(jobs, processes=1, manifest_path=path, seed=0)
        second = run_batch(jobs, processes=1, manifest_path=path, seed=1)
        assert second.resumed_jobs == []  # different seed: stale entry
