"""Tests for the Tseitin / Plaisted–Greenbaum transformation.

The key property: for every assignment of the *original* variables, the CNF
is satisfiable with that assignment iff the formula evaluates to true
(equisatisfiability with projection).
"""

from __future__ import annotations

import itertools

import pytest

from repro.logic import (
    And, CNF, FALSE, Iff, Implies, Not, Or, TRUE, Var, VarPool, to_cnf
)
from repro.sat import SolveResult


def models_projected(formula, variables, polarity_aware):
    """Solve the CNF and enumerate models projected to `variables`."""
    pool = VarPool()
    for variable in variables:
        pool.var(variable)
    cnf = CNF(pool)
    to_cnf(formula, cnf, polarity_aware=polarity_aware)
    solver = cnf.to_solver()
    found = set()
    while solver.solve() is SolveResult.SAT:
        assignment = tuple(bool(solver.model_value(v)) for v in variables)
        found.add(assignment)
        solver.add_clause(
            [-v if solver.model_value(v) else v for v in variables]
        )
    return found


def truth_table(formula, variables):
    expected = set()
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if formula.evaluate(assignment):
            expected.add(bits)
    return expected


FORMULAS = [
    Var(1) & Var(2),
    Var(1) | ~Var(2),
    Implies(Var(1), Var(2) & Var(3)),
    Iff(Var(1) | Var(2), ~Var(3)),
    ~(Var(1) & (Var(2) | ~Var(3))),
    And(Or(Var(1), Var(2)), Or(~Var(1), Var(3)), Or(~Var(2), ~Var(3))),
    Iff(Iff(Var(1), Var(2)), Var(3)),
    (Var(1) >> Var(2)) & (Var(2) >> Var(3)) & (Var(3) >> Var(1)),
]


@pytest.mark.parametrize("polarity_aware", [False, True])
@pytest.mark.parametrize("formula", FORMULAS)
def test_models_match_truth_table(formula, polarity_aware):
    variables = sorted(formula.atoms())
    assert models_projected(formula, variables, polarity_aware) == truth_table(
        formula, variables
    )


def test_constant_true_adds_nothing():
    cnf = CNF()
    to_cnf(TRUE, cnf)
    assert cnf.num_clauses == 0


def test_constant_false_is_unsat():
    cnf = CNF()
    to_cnf(FALSE, cnf)
    assert cnf.to_solver().solve() is SolveResult.UNSAT


def test_simplification_folds_constants():
    cnf = CNF()
    a = cnf.pool.var("a")
    to_cnf(And(Var(a), TRUE, Or(FALSE, Var(a))), cnf)
    solver = cnf.to_solver()
    assert solver.solve() is SolveResult.SAT
    assert solver.model_value(a) is True


def test_polarity_aware_is_smaller():
    formula = And(*[Or(Var(3 * i + 1), Var(3 * i + 2) & Var(3 * i + 3))
                    for i in range(5)])
    sizes = {}
    for aware in (False, True):
        cnf = CNF()
        for v in sorted(formula.atoms()):
            cnf.pool.var(v)
        to_cnf(formula, cnf, polarity_aware=aware)
        sizes[aware] = cnf.num_clauses
    assert sizes[True] < sizes[False]


def test_double_negation():
    formula = Not(Not(Var(1)))
    assert models_projected(formula, [1], True) == {(True,)}


def test_shared_subformula_encoded_once():
    shared = Var(1) & Var(2)
    formula = Or(shared, shared)  # identical object twice
    cnf = CNF()
    cnf.pool.var(1)
    cnf.pool.var(2)
    to_cnf(formula, cnf)
    # One aux for the And (shared), maybe one for the Or.
    assert cnf.pool.num_aux <= 2
