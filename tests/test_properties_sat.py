"""Property-based tests (hypothesis) for the SAT substrate."""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic import (
    CNF, Totalizer, VarPool, at_most_k_sequential, exactly_one
)
from repro.sat import Solver, SolveResult, parse_dimacs, write_dimacs


def clauses_strategy(max_vars=6, max_clauses=20, max_len=4):
    literal = st.integers(1, max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=max_len)
    return st.lists(clause, min_size=0, max_size=max_clauses)


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(lit):
            phase = bits[abs(lit) - 1]
            return phase if lit > 0 else not phase

        if all(any(value(lit) for lit in c) for c in clauses):
            return True
    return False


class TestSolverProperties:
    @given(clauses_strategy())
    @settings(max_examples=150, deadline=None)
    def test_verdict_matches_brute_force(self, clauses):
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        verdict = solver.solve() is SolveResult.SAT
        assert verdict == brute_force(6, clauses)

    @given(clauses_strategy())
    @settings(max_examples=100, deadline=None)
    def test_models_satisfy_formula(self, clauses):
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve() is SolveResult.SAT:
            for clause in clauses:
                assert any(solver.model_value(lit) for lit in clause)

    @given(clauses_strategy(), st.lists(
        st.integers(1, 6).flatmap(lambda v: st.sampled_from([v, -v])),
        max_size=4,
    ))
    @settings(max_examples=100, deadline=None)
    def test_assumptions_equal_units(self, clauses, assumptions):
        """solve(assumptions) == solve() of formula + assumption units."""
        incremental = Solver()
        for clause in clauses:
            incremental.add_clause(clause)
        verdict_a = incremental.solve(assumptions)

        monolithic = Solver()
        for clause in clauses:
            monolithic.add_clause(clause)
        for lit in assumptions:
            monolithic.add_clause([lit])
        verdict_b = monolithic.solve()
        assert verdict_a == verdict_b

    @given(clauses_strategy(), st.lists(
        st.integers(1, 6).flatmap(lambda v: st.sampled_from([v, -v])),
        max_size=4,
    ))
    @settings(max_examples=100, deadline=None)
    def test_core_is_really_unsat(self, clauses, assumptions):
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve(assumptions) is SolveResult.UNSAT:
            core = solver.unsat_core()
            assert set(core) <= set(assumptions)
            # The core alone (as units) must already be UNSAT.
            check = Solver()
            for clause in clauses:
                check.add_clause(clause)
            for lit in core:
                check.add_clause([lit])
            assert check.solve() is SolveResult.UNSAT

    @given(clauses_strategy())
    @settings(max_examples=60, deadline=None)
    def test_solving_twice_is_stable(self, clauses):
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() == solver.solve()

    @given(clauses_strategy(max_vars=5))
    @settings(max_examples=60, deadline=None)
    def test_dimacs_roundtrip_preserves_verdict(self, clauses):
        text = write_dimacs(5, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert parsed == clauses
        a, b = Solver(), Solver()
        for clause in clauses:
            a.add_clause(clause)
        b.ensure_var(num_vars or 1)
        for clause in parsed:
            b.add_clause(clause)
        assert a.solve() == b.solve()


class TestEncodingProperties:
    @given(st.integers(1, 8), st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_at_most_k_never_exceeded(self, n, k):
        cnf = CNF(VarPool())
        lits = [cnf.pool.var(i) for i in range(n)]
        at_most_k_sequential(cnf, lits, k)
        solver = cnf.to_solver()
        for _ in range(10):
            if solver.solve() is not SolveResult.SAT:
                break
            model = [bool(solver.model_value(v)) for v in lits]
            assert sum(model) <= k
            solver.add_clause(
                [-v if solver.model_value(v) else v for v in lits]
            )

    @given(st.integers(1, 8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_totalizer_bound_respected(self, n, data):
        k = data.draw(st.integers(0, n - 1))
        cnf = CNF(VarPool())
        lits = [cnf.pool.var(i) for i in range(n)]
        totalizer = Totalizer(cnf, lits)
        solver = cnf.to_solver()
        if solver.solve([totalizer.bound_literal(k)]) is SolveResult.SAT:
            model = [bool(solver.model_value(v)) for v in lits]
            assert sum(model) <= k

    @given(st.integers(1, 9), st.sampled_from(["pairwise", "ladder",
                                               "commander"]))
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_always_one(self, n, amo):
        cnf = CNF(VarPool())
        lits = [cnf.pool.var(i) for i in range(n)]
        exactly_one(cnf, lits, amo=amo)
        solver = cnf.to_solver()
        assert solver.solve() is SolveResult.SAT
        model = [bool(solver.model_value(v)) for v in lits]
        assert sum(model) == 1
