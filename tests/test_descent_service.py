"""The persistent incremental solver service and its descent integration.

Covers the learned-clause exchange on the core solver, the
:class:`repro.sat.service.SolverService` session protocol (delta
shipping, cancellation, worker death), the differential agreement of the
serial / one-shot-portfolio / persistent-service descents on the paper's
running example, and the trace evidence that probes ship O(delta)
clauses instead of O(|CNF|).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.casestudies.running_example import running_example
from repro.logic import CNF, VarPool
from repro.logic.totalizer import Totalizer
from repro.obs import trace
from repro.opt import minimize_sum
from repro.sat import PortfolioMember, SolverConfig
from repro.sat.portfolio import fork_available
from repro.sat.service import (
    ServiceError,
    SolverService,
)
from repro.sat.solver import Solver
from repro.sat.types import SolveResult
from repro.tasks import generate_layout, optimize_schedule

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


# --- helpers (module-level: fork-safe) -------------------------------------

class _FragileSolver(Solver):
    """Solves once, then raises — simulates a mid-session worker death."""

    def __init__(self, config=None):
        super().__init__(config)
        self._fragile_solves = 0

    def solve(self, assumptions=()):
        self._fragile_solves += 1
        if self._fragile_solves > 1:
            raise RuntimeError("injected mid-session crash")
        return super().solve(assumptions)


def fragile_factory(config):
    return _FragileSolver(config)


def _descent_cnf():
    """4 selectable literals, at least two must be true (minimum cost 2)."""
    cnf = CNF(VarPool())
    lits = [cnf.pool.var(("x", i)) for i in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            for k in range(j + 1, 4):
                cnf.add([lits[i], lits[j], lits[k]])
    return cnf, lits


SAT_CLAUSES = [[1, 2], [-1, 3], [-2, -3]]


# --- learned-clause exchange on the core solver ----------------------------

class TestLearnedExchange:
    def _descended_solver(self):
        """A solver that has probed a few bounds (so it learned clauses)."""
        cnf, lits = _descent_cnf()
        totalizer = Totalizer(cnf, lits)
        solver = cnf.to_solver()
        for bound in (3, 2, 1):
            solver.solve([totalizer.bound_literal(bound)])
        return cnf, solver

    def test_exported_clauses_are_entailed(self):
        cnf, solver = self._descended_solver()
        exported = solver.export_learned(max_lbd=16, max_len=32)
        assert exported, "descent produced no exportable clauses"
        for clause in exported[:24]:
            check = cnf.to_solver()
            # phi ∧ ¬C must be UNSAT for every exported clause C.
            verdict = check.solve([-lit for lit in clause])
            assert verdict is SolveResult.UNSAT, (
                f"exported clause {clause} is not implied by the formula"
            )

    def test_export_respects_caps_and_skip_keys(self):
        __, solver = self._descended_solver()
        first = solver.export_learned(max_lbd=16, max_len=32, limit=3)
        assert len(first) <= 3
        seen = {tuple(sorted(c)) for c in first}
        again = solver.export_learned(
            max_lbd=16, max_len=32, skip_keys=set(seen)
        )
        assert not seen.intersection(tuple(sorted(c)) for c in again)

    def test_import_preserves_verdicts(self):
        cnf, lits = _descent_cnf()
        totalizer = Totalizer(cnf, lits)
        donor = cnf.to_solver()
        for bound in (3, 2, 1):
            donor.solve([totalizer.bound_literal(bound)])
        receiver = cnf.to_solver()
        imported = receiver.import_clauses(
            donor.export_learned(max_lbd=16, max_len=32)
        )
        assert imported > 0
        for bound in (3, 2, 1, 0):
            fresh = cnf.to_solver()
            assumption = [totalizer.bound_literal(bound)]
            assert receiver.solve(assumption) is fresh.solve(assumption)


# --- the service itself ----------------------------------------------------

@needs_fork
class TestSolverService:
    def test_session_probes_and_delta_shipping(self):
        clauses = [list(c) for c in SAT_CLAUSES]
        service = SolverService(3, clauses, processes=2)
        with service:
            first = service.probe()
            assert first.verdict is SolveResult.SAT
            assert first.cold
            clauses.append([-1])
            second = service.probe([2])
            assert second.verdict is SolveResult.SAT
            assert not second.cold
            third = service.probe([1])
            assert third.verdict is SolveResult.UNSAT
            assert third.unsat_core == [1]
            counters = service.metrics.as_dict()
            # The initial CNF travelled via fork; only the appended
            # clause was ever shipped over the pipe.
            assert counters["service.clauses_loaded"] == 3
            assert counters["service.clauses_shipped"] == 1
            assert counters["service.probes"] == 3
            assert counters["service.worker_crashes"] == 0
            assert counters["service.warm_probe_wall_s"]["count"] == 2

    def test_probe_after_close_raises(self):
        service = SolverService(3, [list(c) for c in SAT_CLAUSES],
                                processes=2)
        service.start()
        service.close()
        with pytest.raises(ServiceError):
            service.probe()

    def test_sigkill_worker_mid_session(self):
        clauses = [list(c) for c in SAT_CLAUSES]
        service = SolverService(3, clauses, processes=3)
        with service:
            assert service.probe().verdict is SolveResult.SAT
            victim = service.worker_pids()[2]
            assert victim is not None
            os.kill(victim, signal.SIGKILL)
            clauses.append([3])
            after = service.probe()
            assert after.verdict is SolveResult.SAT
            assert 3 in (after.model or [])
            assert service.alive_count == 2
            counters = service.metrics.as_dict()
            assert counters["service.worker_crashes"] == 1
            assert service.summary()["workers"][2]["alive"] is False

    def test_all_workers_dead_raises_service_dead(self):
        service = SolverService(3, [list(c) for c in SAT_CLAUSES],
                                processes=2)
        with service:
            service.probe()
            for pid in service.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(ServiceError):
                service.probe()


# --- descent-level crash handling and fallback -----------------------------

@needs_fork
class TestDescentCrashHandling:
    def test_one_worker_crash_keeps_descent_on_survivors(self):
        cnf, lits = _descent_cnf()
        members = [
            PortfolioMember("base", SolverConfig()),
            PortfolioMember("fragile", SolverConfig(random_seed=7),
                            solver_factory=fragile_factory),
        ]
        result = minimize_sum(cnf, lits, parallel=2,
                              portfolio_members=members, persistent=True)
        assert result.feasible and result.proven_optimal
        assert result.cost == 2
        service = result.portfolio["service"]
        assert service["counters"]["service.worker_crashes"] == 1
        assert "fallback" not in service
        [fragile] = [w for w in service["workers"]
                     if w["name"] == "fragile"]
        assert not fragile["alive"] and fragile["error"]

    def test_all_workers_crash_falls_back_to_one_shot(self):
        cnf, lits = _descent_cnf()
        members = [
            PortfolioMember("fragile-a", SolverConfig(random_seed=1),
                            solver_factory=fragile_factory),
            PortfolioMember("fragile-b", SolverConfig(random_seed=2),
                            solver_factory=fragile_factory),
        ]
        # The service survives the first probe, loses every worker on the
        # second, and the descent finishes on one-shot races (where each
        # fresh fragile solver gets to solve exactly once).
        result = minimize_sum(cnf, lits, parallel=2,
                              portfolio_members=members, persistent=True)
        assert result.feasible and result.proven_optimal
        assert result.cost == 2
        service = result.portfolio["service"]
        assert service["counters"]["service.worker_crashes"] == 2
        assert service["fallback"]

    def test_fallback_when_service_cannot_start(self, monkeypatch):
        def refuse(self):
            raise ServiceError("injected: fork unavailable")

        monkeypatch.setattr(SolverService, "start", refuse)
        cnf, lits = _descent_cnf()
        result = minimize_sum(cnf, lits, parallel=2, persistent=True)
        assert result.feasible and result.proven_optimal
        assert result.cost == 2
        assert "injected" in result.portfolio["service"]["fallback"]


# --- differential: serial vs one-shot vs persistent service ----------------

@needs_fork
class TestServiceDifferential:
    def test_running_example_generation_agrees(self):
        study = running_example()
        net = study.discretize()
        serial = generate_layout(net, study.schedule, study.r_t_min)
        oneshot = generate_layout(net, study.schedule, study.r_t_min,
                                  parallel=2, persistent=False)
        service = generate_layout(net, study.schedule, study.r_t_min,
                                  parallel=2, persistent=True)
        for raced in (oneshot, service):
            assert raced.satisfiable == serial.satisfiable
            assert raced.objective_value == serial.objective_value
            assert raced.proven_optimal == serial.proven_optimal
        assert service.portfolio["persistent"] is True
        counters = service.portfolio["service"]["counters"]
        assert counters["service.probes"] == service.solve_calls
        # record_descent merged the session counters into task metrics.
        assert service.metrics["service.probes"] == counters[
            "service.probes"
        ]

    def test_running_example_optimization_agrees(self):
        study = running_example()
        net = study.discretize()
        serial = optimize_schedule(net, study.schedule, study.r_t_min)
        oneshot = optimize_schedule(net, study.schedule, study.r_t_min,
                                    parallel=2, persistent=False)
        service = optimize_schedule(net, study.schedule, study.r_t_min,
                                    parallel=2, persistent=True)
        for raced in (oneshot, service):
            assert raced.satisfiable == serial.satisfiable
            assert raced.objective_value == serial.objective_value
            assert raced.proven_optimal == serial.proven_optimal

    def test_persistent_generation_is_reproducible(self, micro_net,
                                                   crossing_schedule):
        first = generate_layout(micro_net, crossing_schedule, 1.0,
                                parallel=2, persistent=True)
        second = generate_layout(micro_net, crossing_schedule, 1.0,
                                 parallel=2, persistent=True)
        assert first.satisfiable == second.satisfiable
        assert first.objective_value == second.objective_value
        assert first.num_sections == second.num_sections
        assert first.time_steps == second.time_steps


# --- trace round-trip: probes ship O(delta), not O(|CNF|) ------------------

@needs_fork
class TestClausesShippedTrace:
    def test_probe_deltas_in_trace_roundtrip(self, tmp_path):
        trace.install(trace.Tracer())
        try:
            cnf, lits = _descent_cnf()
            base_clauses = cnf.num_clauses
            result = minimize_sum(cnf, lits, parallel=2, persistent=True)
            records = trace.export_spans()
        finally:
            trace.reset()
        assert result.proven_optimal and result.cost == 2

        path = tmp_path / "descent.jsonl"
        trace.write_jsonl(records, str(path))
        records = trace.read_jsonl(str(path))

        shipped = [r for r in records
                   if r["kind"] == "counter"
                   and r["name"] == "service.clauses_shipped"]
        assert len(shipped) == result.solve_calls
        first, rest = shipped[0], shipped[1:]
        # Cold probe: the whole CNF travelled via fork, nothing piped.
        assert first["args"]["shipped"] == 0
        assert first["args"]["skipped"] == base_clauses
        # Warm probes: only the totalizer layers built after session
        # start are ever piped; the base CNF is never re-shipped.
        total_delta = sum(r["args"]["shipped"] for r in rest)
        assert total_delta == cnf.num_clauses - base_clauses
        for record in rest:
            assert record["args"]["skipped"] >= base_clauses
            assert record["args"]["shipped"] < cnf.num_clauses

        probe_spans = [r for r in records
                       if r["kind"] == "span"
                       and r["name"] == "service.probe"]
        assert probe_spans, "worker probe spans were not merged back"
