"""Unit tests for the CDCL SAT solver."""

from __future__ import annotations

import itertools

import pytest

from repro.sat import Solver, SolveResult
from repro.sat.types import InvalidLiteralError, SolverConfig


def brute_force_sat(num_vars: int, clauses: list[list[int]]) -> bool:
    """Reference implementation: exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(lit: int) -> bool:
            phase = bits[abs(lit) - 1]
            return phase if lit > 0 else not phase

        if all(any(value(lit) for lit in clause) for clause in clauses):
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve() is SolveResult.SAT

    def test_single_unit(self):
        solver = Solver()
        solver.add_clause([3])
        assert solver.solve() is SolveResult.SAT
        assert solver.model_value(3) is True
        assert solver.model_value(-3) is False

    def test_contradicting_units(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is SolveResult.UNSAT

    def test_empty_clause_is_unsat(self):
        solver = Solver()
        assert solver.add_clause([]) is False
        assert solver.solve() is SolveResult.UNSAT

    def test_tautology_is_dropped(self):
        solver = Solver()
        assert solver.add_clause([1, -1]) is True
        assert solver.num_clauses == 0
        assert solver.solve() is SolveResult.SAT

    def test_duplicate_literals_are_merged(self):
        solver = Solver()
        solver.add_clause([1, 1, 2, 2, 2])
        assert solver.solve() is SolveResult.SAT

    def test_invalid_literal_zero(self):
        with pytest.raises(InvalidLiteralError):
            Solver().add_clause([1, 0, 2])

    def test_implication_chain(self):
        solver = Solver()
        for i in range(1, 50):
            solver.add_clause([-i, i + 1])  # i -> i+1
        solver.add_clause([1])
        assert solver.solve() is SolveResult.SAT
        assert all(solver.model_value(i) for i in range(1, 51))

    def test_model_lists_true_literals(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-2])
        solver.solve()
        model = solver.model()
        assert 1 in model and -2 in model

    def test_model_unavailable_before_solve(self):
        with pytest.raises(RuntimeError):
            Solver().model()

    def test_model_unavailable_after_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        solver.solve()
        with pytest.raises(RuntimeError):
            solver.model()

    def test_solve_result_truthiness(self):
        assert bool(SolveResult.SAT) is True
        assert bool(SolveResult.UNSAT) is False
        assert bool(SolveResult.UNKNOWN) is False


class TestPigeonhole:
    @staticmethod
    def pigeonhole(holes: int) -> list[list[int]]:
        """holes+1 pigeons into `holes` holes — classically UNSAT."""
        def var(pigeon: int, hole: int) -> int:
            return pigeon * holes + hole + 1

        clauses = [[var(p, h) for h in range(holes)] for p in range(holes + 1)]
        for hole in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    clauses.append([-var(p1, hole), -var(p2, hole)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        solver = Solver()
        for clause in self.pigeonhole(holes):
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT

    def test_pigeonhole_sat_when_enough_holes(self):
        # n pigeons, n holes: drop the last pigeon's clauses -> SAT.
        holes = 4
        solver = Solver()

        def var(pigeon: int, hole: int) -> int:
            return pigeon * holes + hole + 1

        for p in range(holes):
            solver.add_clause([var(p, h) for h in range(holes)])
        for hole in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    solver.add_clause([-var(p1, hole), -var(p2, hole)])
        assert solver.solve() is SolveResult.SAT


class TestAssumptions:
    def test_sat_under_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]) is SolveResult.SAT
        assert solver.model_value(2) is True

    def test_unsat_under_assumptions_then_sat(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        assert solver.solve([1, 2]) is SolveResult.UNSAT
        assert solver.solve([1, -2]) is SolveResult.SAT
        assert solver.solve([]) is SolveResult.SAT

    def test_core_is_subset_of_assumptions(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        solver.add_clause([3])
        assert solver.solve([1, 2, 4]) is SolveResult.UNSAT
        core = solver.unsat_core()
        assert set(core) <= {1, 2, 4}
        assert set(core) == {1, 2}  # 4 is irrelevant

    def test_core_formula_is_unsat(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -1])
        assert solver.solve([1]) is SolveResult.UNSAT
        core = solver.unsat_core()
        assert core == [1]

    def test_assumption_of_fresh_variable(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve([7]) is SolveResult.SAT
        assert solver.model_value(7) is True

    def test_contradictory_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve([3, -3]) is SolveResult.UNSAT
        assert set(solver.unsat_core()) <= {3, -3}


class TestIncremental:
    def test_add_clauses_between_solves(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve() is SolveResult.SAT
        solver.add_clause([-1])
        assert solver.solve() is SolveResult.SAT
        assert solver.model_value(2) is True
        solver.add_clause([-2])
        assert solver.solve() is SolveResult.UNSAT

    def test_solver_stays_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SolveResult.UNSAT
        solver.add_clause([2])
        assert solver.solve() is SolveResult.UNSAT

    def test_many_incremental_rounds(self):
        solver = Solver()
        n = 30
        for i in range(1, n):
            solver.add_clause([-i, i + 1])
        for i in range(1, n):
            assert solver.solve([i]) is SolveResult.SAT
            assert solver.model_value(n) is True

    def test_simplify_keeps_equivalence(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([1, 2])  # satisfied at level 0 after propagation
        solver.add_clause([-1, 2])
        assert solver.solve() is SolveResult.SAT
        assert solver.simplify() is True
        assert solver.solve() is SolveResult.SAT
        assert solver.model_value(2) is True


class TestConfigVariants:
    """The solver must stay correct with every feature toggled off."""

    CONFIGS = [
        SolverConfig(use_restarts=False),
        SolverConfig(use_vsids=False),
        SolverConfig(use_phase_saving=False),
        SolverConfig(use_clause_deletion=False),
        SolverConfig(use_minimization=False),
        SolverConfig(
            use_restarts=False,
            use_vsids=False,
            use_phase_saving=False,
            use_clause_deletion=False,
            use_minimization=False,
        ),
        SolverConfig(default_phase=True),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    def test_random_instances_match_brute_force(self, config):
        import random

        rng = random.Random(hash(repr(config)) & 0xFFFF)
        for _ in range(60):
            num_vars = rng.randint(1, 7)
            clauses = [
                [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 25))
            ]
            solver = Solver(config)
            for clause in clauses:
                solver.add_clause(clause)
            got = solver.solve() is SolveResult.SAT
            assert got == brute_force_sat(num_vars, clauses)

    @pytest.mark.parametrize("config", CONFIGS)
    def test_pigeonhole_unsat_all_configs(self, config):
        solver = Solver(config)
        for clause in TestPigeonhole.pigeonhole(4):
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT


class TestConflictLimit:
    def test_unknown_when_budget_exhausted(self):
        config = SolverConfig(conflict_limit=1)
        solver = Solver(config)
        for clause in TestPigeonhole.pigeonhole(5):
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNKNOWN


class TestStats:
    def test_counters_accumulate(self):
        solver = Solver()
        for clause in TestPigeonhole.pigeonhole(4):
            solver.add_clause(clause)
        solver.solve()
        assert solver.stats.conflicts > 0
        assert solver.stats.propagations > 0
        assert solver.stats.decisions > 0
        assert solver.stats.solve_calls == 1
        assert solver.stats.solve_time > 0
        as_dict = solver.stats.as_dict()
        assert as_dict["conflicts"] == solver.stats.conflicts

    def test_model_satisfies_all_clauses(self):
        import random

        rng = random.Random(99)
        clauses = []
        solver = Solver()
        for _ in range(200):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, 40)
                for _ in range(3)
            ]
            clauses.append(clause)
            solver.add_clause(clause)
        if solver.solve() is SolveResult.SAT:
            for clause in clauses:
                assert any(solver.model_value(lit) for lit in clause)


class TestStressConfigs:
    """Fault-injection style: extreme configurations must stay sound."""

    def test_tiny_restart_base(self):
        config = SolverConfig(restart_base=1)
        solver = Solver(config)
        for clause in TestPigeonhole.pigeonhole(4):
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT

    def test_aggressive_clause_deletion(self):
        config = SolverConfig(
            learned_clause_min_limit=1,
            learned_clause_limit_factor=0.0,
            learned_clause_limit_growth=1.0,
        )
        solver = Solver(config)
        for clause in TestPigeonhole.pigeonhole(5):
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT

    def test_extreme_decay(self):
        import random

        config = SolverConfig(var_decay=0.5, clause_decay=0.5)
        rng = random.Random(11)
        for _ in range(20):
            num_vars = rng.randint(2, 6)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, num_vars)
                 for _ in range(3)]
                for _ in range(rng.randint(1, 20))
            ]
            solver = Solver(config)
            for clause in clauses:
                solver.add_clause(clause)
            got = solver.solve() is SolveResult.SAT
            assert got == brute_force_sat(num_vars, clauses)

    def test_many_solve_calls_same_instance(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        for _ in range(50):
            assert solver.solve() is SolveResult.SAT
            assert solver.solve([-2]) is SolveResult.UNSAT


class TestSeededRandomness:
    """All randomness flows through the per-solver seeded RNG (no module-
    level ``random`` calls), so equal seeds must replay identical searches
    and ``random_var_freq`` must stay sound."""

    @staticmethod
    def _hard_instance():
        return TestPigeonhole.pigeonhole(4)

    def _run(self, config):
        solver = Solver(config)
        for clause in self._hard_instance():
            solver.add_clause(clause)
        verdict = solver.solve()
        return verdict, solver.stats.as_dict()

    def test_equal_seeds_explore_identical_searches(self):
        config = SolverConfig(random_var_freq=0.2, random_seed=1234)
        verdict_a, stats_a = self._run(config)
        verdict_b, stats_b = self._run(
            SolverConfig(random_var_freq=0.2, random_seed=1234)
        )
        assert verdict_a == verdict_b
        # Byte-identical decision sequences leave byte-identical counters.
        for key in ("decisions", "random_decisions", "conflicts",
                    "propagations", "restarts", "learned_clauses"):
            assert stats_a[key] == stats_b[key], key

    def test_random_decisions_actually_happen(self):
        __, stats = self._run(
            SolverConfig(random_var_freq=0.5, random_seed=7)
        )
        assert stats["random_decisions"] > 0
        assert stats["random_decisions"] <= stats["decisions"]

    def test_no_random_decisions_by_default(self):
        __, stats = self._run(SolverConfig())
        assert stats["random_decisions"] == 0

    def test_random_var_freq_stays_correct(self):
        import random

        rng = random.Random(99)
        config = SolverConfig(random_var_freq=0.3, random_seed=5)
        for _ in range(40):
            num_vars = rng.randint(1, 7)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, num_vars)
                 for _ in range(rng.randint(1, 3))]
                for _ in range(rng.randint(1, 25))
            ]
            solver = Solver(config)
            for clause in clauses:
                solver.add_clause(clause)
            got = solver.solve() is SolveResult.SAT
            assert got == brute_force_sat(num_vars, clauses)
