"""Disruption transforms: well-formedness, inverses, and workloads.

Every transform must either return a scenario the encoder accepts or
raise DisruptionError — never a scenario that blows up downstream.
Where an inverse is defined (delay, resolution shift) applying it must
restore the original quantities exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import NodeKind
from repro.scenarios import (
    DisruptionError,
    ScenarioSpec,
    blockable_tracks,
    blocked_track,
    delayed_departure,
    delayed_schedule,
    generate_scenario,
    run_disruption_workload,
    shifted_resolution,
    with_added_train,
    with_headroom,
)
from repro.trains.discretize import discretize_schedule
from repro.trains.schedule import ScheduleError

seeds = st.integers(0, 2_000)


def _scenario(seed: int = 9):
    return generate_scenario(ScenarioSpec.sampled(seed))


class TestDelay:
    def test_delay_shifts_exactly_one_departure(self):
        scenario = _scenario()
        name = scenario.schedule.runs[0].train.name
        delayed = delayed_departure(scenario, name, 2)
        for before, after in zip(
            scenario.schedule.runs, delayed.schedule.runs
        ):
            shift = after.departure_min - before.departure_min
            expected = 2 * scenario.r_t_min if (
                before.train.name == name
            ) else 0.0
            assert shift == expected
        assert f"delay:{name}:+2" in delayed.meta["edits"]

    @given(seeds, st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_delay_inverse_restores_departures(self, seed, steps):
        scenario = _scenario(seed)
        name = scenario.schedule.runs[-1].train.name
        delay_min = steps * scenario.r_t_min
        try:
            there = delayed_schedule(scenario.schedule, name, delay_min)
        except ScheduleError:
            return  # delay ran past the horizon: documented refusal
        back = delayed_schedule(there, name, -delay_min)
        assert [r.departure_min for r in back.runs] == [
            r.departure_min for r in scenario.schedule.runs
        ]

    def test_delay_past_deadline_raises(self):
        scenario = with_headroom(_scenario(), 0)
        name = scenario.schedule.runs[0].train.name
        with pytest.raises(DisruptionError):
            delayed_departure(scenario, name, 10_000)


class TestResolutionShift:
    def test_shift_rescales_and_revalidates(self):
        scenario = _scenario()
        shifted = shifted_resolution(scenario, r_s_factor=2.0)
        assert shifted.r_s_km == scenario.r_s_km * 2.0
        assert shifted.r_t_min == scenario.r_t_min
        # Fewer, coarser segments — but still discretisable.
        assert (
            shifted.discretize().num_segments
            < scenario.discretize().num_segments
        )

    @given(seeds, st.sampled_from([2.0, 4.0]))
    @settings(max_examples=15, deadline=None)
    def test_shift_inverse_is_identity_on_resolutions(self, seed, factor):
        scenario = _scenario(seed)
        try:
            there = shifted_resolution(scenario, r_s_factor=factor)
            back = shifted_resolution(there, r_s_factor=1.0 / factor)
        except DisruptionError:
            return  # coarsening made a train outgrow its start station
        assert back.r_s_km == pytest.approx(scenario.r_s_km)
        assert back.r_t_min == pytest.approx(scenario.r_t_min)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(DisruptionError):
            shifted_resolution(_scenario(), r_s_factor=0.0)


class TestAddedTrain:
    def test_added_train_is_wellformed_and_opposing(self):
        scenario = _scenario()
        disrupted = with_added_train(scenario, seed=1)
        assert len(disrupted.schedule.runs) == (
            len(scenario.schedule.runs) + 1
        )
        extra = disrupted.schedule.runs[-1]
        assert extra.departure_min == 0.0
        originals = {
            (r.start, r.goal) for r in scenario.schedule.runs
        }
        assert (extra.goal, extra.start) in originals
        discretize_schedule(
            disrupted.discretize(), disrupted.schedule, disrupted.r_t_min
        )

    def test_added_train_is_seed_deterministic(self):
        scenario = _scenario()
        a = with_added_train(scenario, seed=2)
        b = with_added_train(scenario, seed=2)
        assert a.to_json() == b.to_json()


class TestBlockedTrack:
    def test_blocking_preserves_invariants(self):
        scenario = _scenario(9)  # has a passing loop: blockable tracks
        candidates = blockable_tracks(scenario)
        assert candidates
        for track in candidates[:2]:
            blocked = blocked_track(scenario, track)
            network = blocked.network  # constructor re-validated it
            assert track not in network.tracks
            for name, node in network.nodes.items():
                degree = network.degree(name)
                if node.kind is NodeKind.BOUNDARY:
                    assert degree == 1
                elif node.kind is NodeKind.LINK:
                    assert degree == 2
                else:
                    assert degree >= 3
            assert f"blocked:{track}" in blocked.meta["edits"]

    def test_blocking_unknown_or_breaking_track_raises(self):
        scenario = _scenario()
        with pytest.raises(DisruptionError):
            blocked_track(scenario, "no-such-track")
        # Blocking a boundary station's only platform strands its
        # trains: every generated scenario schedules from A.
        with pytest.raises(DisruptionError):
            blocked_track(scenario, "staA")

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_blockable_tracks_all_discretize(self, seed):
        scenario = _scenario(seed)
        for track in blockable_tracks(scenario):
            blocked = blocked_track(scenario, track)
            discretize_schedule(
                blocked.discretize(), blocked.schedule, blocked.r_t_min
            )


class TestWorkload:
    def test_workload_reports_all_family_members(self):
        scenario = with_headroom(_scenario(9), 3)
        report = run_disruption_workload(
            scenario, delay_steps=1, max_blocked=1, max_delay_probe=2
        )
        assert report.scenario == scenario.name
        assert report.base_satisfiable
        assert set(report.delay_tolerance) == {
            run.train.name for run in scenario.schedule.runs
        }
        assert report.outcomes
        names = [o.name for o in report.outcomes]
        assert any(n.startswith("delay:") for n in names)
        assert any(n.startswith("resolution:") for n in names)
        for outcome in report.outcomes:
            assert outcome.satisfiable in (True, False)
            if outcome.satisfiable:
                assert outcome.conflicting_trains == []
        assert 0 <= report.surviving <= len(report.outcomes)
