"""Solve gateway: fingerprints, cache, end-to-end server, chaos drills.

The end-to-end tests run a real :class:`repro.gateway.GatewayThread`
against the Running Example (sub-second solves), including the CI chaos
mix: cache hit, delta-close warm-start, deadline expiry, and a worker
killed mid-request.  The subprocess test drives the actual
``repro serve`` / ``repro client`` CLI pair and asserts nothing leaks —
no processes, no socket.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.casestudies import all_case_studies
from repro.gateway import (
    CacheEntry,
    GatewayClient,
    GatewayConfig,
    GatewayThread,
    ResultCache,
    exact_key,
    family_key,
)
from repro.network.io import network_to_json
from repro.trains.io import schedule_to_json

pytestmark = pytest.mark.gateway


# -- scenario helpers ---------------------------------------------------


def _running_example() -> tuple[dict, dict, float, float]:
    study = next(
        s for s in all_case_studies() if s.name == "Running Example"
    )
    network = json.loads(network_to_json(study.network))
    schedule = json.loads(schedule_to_json(study.schedule))
    return network, schedule, study.r_s_km, study.r_t_min


def _inline_payload(task: str = "generate", **kwargs) -> dict:
    network, schedule, r_s, r_t = _running_example()
    payload = {
        "task": task, "network": network, "schedule": schedule,
        "r_s": r_s, "r_t": r_t,
    }
    payload.update(kwargs)
    return payload


def _micro_verify_payload(arrival_min: float) -> dict:
    """Single train on a 3-TTD line: verification is SAT on pure TTDs."""
    from repro.network.builder import NetworkBuilder

    line = (
        NetworkBuilder()
        .boundary("A")
        .link("m1")
        .link("m2")
        .boundary("B")
        .track("A", "m1", length_km=1.0, ttd="TTD1", name="staA")
        .track("m1", "m2", length_km=1.0, ttd="TTD2", name="mid")
        .track("m2", "B", length_km=1.0, ttd="TTD3", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .build()
    )
    return {
        "task": "verify",
        "network": json.loads(network_to_json(line)),
        # Deadline-independent variable space, so the relaxed copy can
        # replay the cached witness (see requests.py guarded_arrivals).
        "params": {"guarded_arrivals": True},
        "schedule": {
            "duration_min": 5.0,
            "trains": [{
                "name": "T", "length_m": 400, "max_speed_kmh": 120,
                "start": "A", "goal": "B", "departure_min": 0.0,
                "arrival_min": arrival_min, "stops": [],
            }],
        },
        "r_s": 0.5,
        "r_t": 1.0,
    }


def _relax_one_arrival(payload: dict, by_min: float) -> dict:
    """A delta-close copy: the tightest arrival deadline moved later.

    Picks the train with the earliest deadline so the relaxed value
    stays within the scenario duration.
    """
    close = json.loads(json.dumps(payload))
    train = min(
        (t for t in close["schedule"]["trains"]
         if t.get("arrival_min") is not None),
        key=lambda t: t["arrival_min"],
    )
    train["arrival_min"] = min(
        train["arrival_min"] + by_min, close["schedule"]["duration_min"]
    )
    return close


# -- fingerprint keys ---------------------------------------------------


class TestFingerprint:
    def test_reordering_does_not_change_exact_key(self):
        payload = _inline_payload()
        shuffled = json.loads(json.dumps(payload))
        shuffled["network"]["nodes"].reverse()
        shuffled["network"]["tracks"].reverse()
        shuffled["schedule"]["trains"].reverse()
        assert exact_key(shuffled) == exact_key(payload)
        assert family_key(shuffled) == family_key(payload)

    def test_semantic_change_changes_exact_key(self):
        payload = _inline_payload()
        finer = dict(payload, r_s=payload["r_s"] / 2)
        assert exact_key(finer) != exact_key(payload)
        assert family_key(finer) != family_key(payload)
        other_task = dict(payload, task="optimize")
        assert exact_key(other_task) != exact_key(payload)

    def test_volatile_params_do_not_change_keys(self):
        payload = _inline_payload(params={"strategy": "linear"})
        volatile = json.loads(json.dumps(payload))
        volatile["params"].update(
            parallel=4, timeout_s=3.0, profile=True
        )
        volatile["deadline_s"] = 1.0
        assert exact_key(volatile) == exact_key(payload)
        semantic = dict(payload, params={"strategy": "binary"})
        assert exact_key(semantic) != exact_key(payload)

    def test_family_ignores_arrivals_but_not_departures(self):
        payload = _inline_payload()
        relaxed = _relax_one_arrival(payload, 1.0)
        assert exact_key(relaxed) != exact_key(payload)
        assert family_key(relaxed) == family_key(payload)
        shifted = json.loads(json.dumps(payload))
        shifted["schedule"]["trains"][0]["departure_min"] += 1.0
        assert family_key(shifted) != family_key(payload)


# -- result cache -------------------------------------------------------


class TestResultCache:
    def test_exact_hit_and_miss_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.lookup_exact("k1") is None
        cache.put("k1", "f1", CacheEntry(response={"ok": True}))
        hit = cache.lookup_exact("k1")
        assert hit is not None and hit.hits == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_prefers_stale_entries(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "f", CacheEntry(response={"n": 1}))
        cache.put("b", "f", CacheEntry(response={"n": 2}))
        cache.lookup_exact("a")  # refresh "a"; "b" is now LRU
        cache.put("c", "f", CacheEntry(response={"n": 3}))
        assert cache.lookup_exact("b") is None
        assert cache.lookup_exact("a") is not None
        assert cache.stats()["evictions"] == 1

    def test_family_lookup_skips_self_and_modelless(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", "f", CacheEntry(response={}, model=[]))
        cache.put("b", "f", CacheEntry(response={}, model=[1, 2]))
        assert cache.lookup_family("f", exclude="b") is None
        found = cache.lookup_family("f", exclude="a")
        assert found is not None and found.model == [1, 2]
        assert cache.lookup_family("other") is None


# -- end-to-end over a live gateway -------------------------------------


@pytest.fixture
def gateway(tmp_path):
    os.environ["REPRO_GATEWAY_FAULTS"] = "1"
    config = GatewayConfig(
        socket_path=str(tmp_path / "gw.sock"),
        workers=1,
        cache_entries=16,
        max_inflight=2,
        max_queue=2,
        drain_s=5.0,
    )
    thread = GatewayThread(config)
    thread.start()
    try:
        yield GatewayClient(socket_path=config.socket_path, timeout_s=120)
    finally:
        thread.stop()
        os.environ.pop("REPRO_GATEWAY_FAULTS", None)


class TestGatewayEndToEnd:
    def test_cold_then_cached_then_warm(self, gateway):
        payload = _inline_payload(params={
            "strategy": "linear", "guarded_arrivals": True,
        })
        cold = gateway.request(payload)
        assert cold["ok"] and cold["satisfiable"]
        assert not cold["cached"] and not cold["warm_started"]
        assert cold["model"] and cold["fingerprint"]

        cached = gateway.request(payload)
        assert cached["cached"]
        assert cached["objective_value"] == cold["objective_value"]

        relaxed = _relax_one_arrival(payload, 1.0)
        warm = gateway.request(relaxed)
        assert warm["ok"] and not warm["cached"]
        assert warm["warm_started"]
        # Relaxing a deadline cannot make the optimum worse.
        assert warm["objective_value"] <= cold["objective_value"]

        status = gateway.status()
        assert status["cache"]["hits"] == 1
        assert status["cache"]["warm_hits"] == 1
        assert status["metrics"]["gateway.warm_starts"] == 1

    def test_warm_start_matches_cold_optimum(self, gateway):
        payload = _inline_payload(params={
            "strategy": "linear", "guarded_arrivals": True,
        })
        relaxed = _relax_one_arrival(payload, 1.0)
        gateway.request(payload)
        warm = gateway.request(relaxed)
        cold = gateway.request(dict(relaxed, no_cache=True))
        assert warm["warm_started"] and not cold["warm_started"]
        assert warm["objective_value"] == cold["objective_value"]

    def test_verify_witness_replay_skips_solver(self, gateway):
        cold = gateway.request(_micro_verify_payload(arrival_min=4.0))
        assert cold["ok"] and cold["satisfiable"] and cold["model"]
        assert cold["solve_calls"] >= 1
        # A relaxed deadline is a delta-close instance; the cached
        # witness satisfies its (weaker) clauses verbatim, so the
        # verdict comes from replay with zero solver calls.
        replay = gateway.request(_micro_verify_payload(arrival_min=5.0))
        assert replay["ok"] and replay["satisfiable"]
        assert not replay["cached"]
        assert replay["warm_started"]
        assert replay["solve_calls"] == 0

    def test_expired_deadline_is_rejected(self, gateway):
        payload = _inline_payload(no_cache=True, deadline_s=0.0)
        response = gateway.request(payload)
        assert not response["ok"] and response["kind"] == "deadline"
        status = gateway.status()
        assert status["metrics"]["gateway.rejected.deadline"] >= 1

    def test_worker_kill_falls_back_in_process(self, gateway):
        payload = _inline_payload(
            task="verify", no_cache=True, inject={"crash": True}
        )
        response = gateway.request(payload)
        assert response["ok"] and response["fallback"]
        status = gateway.status()
        assert status["workers"]["crashes"] == 1
        assert status["workers"]["alive"] == 1  # respawned
        assert status["metrics"]["gateway.worker_crashes"] == 1
        assert status["metrics"]["gateway.fallbacks"] == 1

    def test_bad_requests_keep_the_connection_alive(self, gateway):
        bad_task = gateway.request({"task": "summon"})
        assert not bad_task["ok"] and "unknown task" in bad_task["error"]
        bad_param = gateway.request(
            _inline_payload(params={"strategee": "linear"})
        )
        assert not bad_param["ok"]
        assert "strategee" in bad_param["error"]
        bad_scenario = gateway.request({"task": "verify"})
        assert not bad_scenario["ok"]
        assert gateway.status()["ok"]

    def test_concurrent_clients_agree(self, gateway):
        import threading

        payload = _inline_payload(params={"strategy": "linear"})
        results: list[dict] = []
        lock = threading.Lock()

        def drive():
            response = gateway.request(payload)
            with lock:
                results.append(response)

        threads = [threading.Thread(target=drive) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == 4
        assert all(r["ok"] for r in results)
        costs = {r["objective_value"] for r in results}
        assert len(costs) == 1


class TestGatewayShutdown:
    def test_shutdown_op_drains_and_unlinks(self, tmp_path):
        config = GatewayConfig(
            socket_path=str(tmp_path / "down.sock"), workers=1
        )
        thread = GatewayThread(config)
        thread.start()
        client = GatewayClient(socket_path=config.socket_path)
        assert client.request({"task": "verify", "case": "running-example"})
        before = multiprocessing.active_children()
        assert before  # pool worker lives
        assert client.shutdown_server()["ok"]
        thread._thread.join(timeout=30)
        assert not os.path.exists(config.socket_path)
        deadline = time.monotonic() + 10
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, "pool worker leaked"
            time.sleep(0.05)


class TestServeCli:
    def test_serve_client_roundtrip_and_sigterm(self, tmp_path):
        import repro

        socket_path = str(tmp_path / "cli.sock")
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path, "--workers", "1"],
            env=env, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(socket_path):
                assert proc.poll() is None, proc.stderr.read().decode()
                assert time.monotonic() < deadline, "socket never appeared"
                time.sleep(0.1)
            out = subprocess.run(
                [sys.executable, "-m", "repro", "client",
                 "--socket", socket_path, "--op", "status"],
                env=env, capture_output=True, timeout=60,
            )
            assert out.returncode == 0, out.stderr.decode()
            status = json.loads(out.stdout)
            assert status["ok"] and status["workers"]["alive"] == 1
            out = subprocess.run(
                [sys.executable, "-m", "repro", "client",
                 "--socket", socket_path,
                 "--task", "verify", "--case", "running-example"],
                env=env, capture_output=True, timeout=120,
            )
            # Running Example verification is UNSAT by design -> exit 0,
            # ok=true, satisfiable=false.
            assert out.returncode == 0, out.stderr.decode()
            verdict = json.loads(out.stdout)
            assert verdict["ok"] and verdict["satisfiable"] is False
            os.killpg(proc.pid, signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            assert not os.path.exists(socket_path)
            # Nothing left in the server's process group.
            with pytest.raises(ProcessLookupError):
                os.killpg(proc.pid, 0)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
            proc.stdout.close()
            proc.stderr.close()
