"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.network.io import save_network


class TestList:
    def test_lists_all_cases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("running-example", "simple-layout", "complex-layout",
                    "nordlandsbanen"):
            assert key in out


class TestCaseTasks:
    def test_verify_running_example_exit_code(self, capsys):
        # Table I: the running example verification is UNSAT -> exit 1.
        assert main(["verify", "--case", "running-example"]) == 1
        out = capsys.readouterr().out
        assert "verification" in out and "No" in out

    def test_generate_running_example(self, capsys):
        assert main(["generate", "--case", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "generation" in out
        assert "sections" in out

    def test_optimize_with_diagram(self, capsys):
        code = main([
            "optimize", "--case", "running-example",
            "--min-borders", "--diagram",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimization" in out
        assert "t " in out.splitlines()[-11]  # diagram header row

    def test_unknown_case(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["verify", "--case", "atlantis"])


class TestCustomNetwork:
    def test_verify_custom_network(self, micro_line, tmp_path, capsys):
        path = tmp_path / "net.json"
        save_network(micro_line, path)
        code = main([
            "verify", "--network", str(path),
            "--r-s", "0.5", "--r-t", "0.5", "--duration", "5",
            "--train", "T,A,B,120,400,0,4",
        ])
        assert code == 0

    def test_open_arrival_dash(self, micro_line, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_line, path)
        code = main([
            "optimize", "--network", str(path),
            "--r-s", "0.5", "--r-t", "0.5", "--duration", "5",
            "--train", "T,A,B,120,400,0,-",
        ])
        assert code == 0

    def test_network_requires_train(self, micro_line, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_line, path)
        with pytest.raises(SystemExit, match="at least one"):
            main(["verify", "--network", str(path)])

    def test_missing_scenario(self):
        with pytest.raises(SystemExit, match="--case or --network"):
            main(["verify"])

    def test_bad_train_spec(self, micro_line, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_line, path)
        with pytest.raises(SystemExit, match="bad --train"):
            main([
                "verify", "--network", str(path),
                "--train", "only,three,fields",
            ])

    def test_bad_train_values(self, micro_line, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_line, path)
        with pytest.raises(SystemExit, match="bad --train"):
            main([
                "verify", "--network", str(path), "--duration", "5",
                "--train", "T,A,B,banana,400,0,4",
            ])


class TestTable1:
    def test_skip_slow_runs_two_networks(self, capsys):
        assert main(["table1", "--skip-slow"]) == 0
        out = capsys.readouterr().out
        assert "Running Example" in out
        assert "Simple Layout" in out
        assert "Complex Layout" not in out
        assert out.count("verification") == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--case", "x", "--strategy", "magic"]
            )


class TestExport:
    def test_export_roundtrips_through_solver(self, tmp_path, capsys):
        from repro.sat import Solver, SolveResult, parse_dimacs_file

        path = tmp_path / "re.cnf"
        code = main([
            "export", "--case", "running-example",
            "--pin-pure-ttd", "--output", str(path),
        ])
        assert code == 0
        num_vars, clauses = parse_dimacs_file(path)
        solver = Solver()
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        # The pinned pure-TTD verification instance is the paper's UNSAT.
        assert solver.solve() is SolveResult.UNSAT

    def test_export_free_borders_is_sat(self, tmp_path):
        from repro.sat import Solver, SolveResult, parse_dimacs_file

        path = tmp_path / "free.cnf"
        assert main([
            "export", "--case", "running-example", "--output", str(path),
        ]) == 0
        num_vars, clauses = parse_dimacs_file(path)
        solver = Solver()
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.SAT


class TestNewFlags:
    def test_verify_with_proof_flag(self, capsys):
        code = main(["verify", "--case", "running-example", "--proof"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DRAT proof of infeasibility: VALID" in out

    def test_optimize_total_arrival(self, capsys):
        code = main([
            "optimize", "--case", "running-example",
            "--objective", "total-arrival",
        ])
        assert code == 0
        assert "optimization" in capsys.readouterr().out


class TestTimetableFlag:
    def test_optimize_with_timetable(self, capsys):
        code = main([
            "optimize", "--case", "running-example",
            "--min-borders", "--timetable",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "train 1" in out
        assert "dep" in out and "arr" in out
