"""Tests for task extensions: proof-backed verification and the
total-arrival objective."""

from __future__ import annotations

import pytest

from repro.tasks import optimize_schedule, verify_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@pytest.fixture
def infeasible_schedule():
    run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
    return Schedule([run], 5.0)


class TestProofBackedVerification:
    def test_unsat_comes_with_checked_proof(self, micro_net,
                                            infeasible_schedule):
        result = verify_schedule(
            micro_net, infeasible_schedule, 0.5, with_proof=True
        )
        assert not result.satisfiable
        assert result.proof_checked is True

    def test_sat_has_no_proof(self, micro_net, single_train_schedule):
        result = verify_schedule(
            micro_net, single_train_schedule, 0.5, with_proof=True
        )
        assert result.satisfiable
        assert result.proof_checked is None

    def test_default_skips_proof(self, micro_net, infeasible_schedule):
        result = verify_schedule(micro_net, infeasible_schedule, 0.5)
        assert result.proof_checked is None

    def test_running_example_proof(self):
        from repro.casestudies.running_example import running_example

        study = running_example()
        net = study.discretize()
        result = verify_schedule(
            net, study.schedule, study.r_t_min, with_proof=True
        )
        assert not result.satisfiable
        assert result.proof_checked is True


class TestTotalArrivalObjective:
    @pytest.fixture
    def two_trains(self):
        return Schedule(
            [
                TrainRun(Train("1", 100, 120), "A", "B", 0.0, None),
                TrainRun(Train("2", 100, 120), "A", "B", 0.5, None),
            ],
            duration_min=5.0,
        )

    def test_objective_validates(self, micro_net, two_trains):
        result = optimize_schedule(
            micro_net, two_trains, 0.5, objective="total-arrival"
        )
        assert result.satisfiable and result.proven_optimal

    def test_unknown_objective_rejected(self, micro_net, two_trains):
        with pytest.raises(ValueError, match="unknown objective"):
            optimize_schedule(micro_net, two_trains, 0.5, objective="vibes")

    def test_total_arrival_never_worse_summed(self, micro_net, two_trains):
        """Total-arrival optimum has summed arrivals <= the makespan
        optimum's summed arrivals (it optimises exactly that)."""
        by_sum = optimize_schedule(
            micro_net, two_trains, 0.5, objective="total-arrival"
        )
        by_makespan = optimize_schedule(micro_net, two_trains, 0.5)

        def summed(result):
            return sum(
                t.arrival_step for t in result.solution.trajectories
            )

        assert summed(by_sum) <= summed(by_makespan)

    def test_makespan_never_worse_at_makespan(self, micro_net, two_trains):
        by_sum = optimize_schedule(
            micro_net, two_trains, 0.5, objective="total-arrival"
        )
        by_makespan = optimize_schedule(micro_net, two_trains, 0.5)
        assert by_makespan.time_steps <= by_sum.solution.makespan

    def test_running_example_objectives_differ_sensibly(self):
        from repro.casestudies.running_example import running_example

        study = running_example()
        net = study.discretize()
        by_makespan = optimize_schedule(net, study.schedule, study.r_t_min)
        by_sum = optimize_schedule(
            net, study.schedule, study.r_t_min, objective="total-arrival"
        )
        assert by_makespan.time_steps == 7
        sum_makespan = sum(
            t.arrival_step for t in by_makespan.solution.trajectories
        )
        sum_total = sum(
            t.arrival_step for t in by_sum.solution.trajectories
        )
        assert sum_total <= sum_makespan
        assert by_sum.solution.makespan >= by_makespan.time_steps


class TestWeightedGeneration:
    def test_costs_steer_border_placement(self):
        from repro.casestudies.running_example import running_example
        from repro.tasks import generate_layout

        study = running_example()
        net = study.discretize()
        plain = generate_layout(net, study.schedule, study.r_t_min)
        cheap_border = next(iter(plain.solution.layout.added_borders))
        # Make the solver's favourite border prohibitively expensive.
        costs = {cheap_border: 50}
        steered = generate_layout(
            net, study.schedule, study.r_t_min, border_costs=costs
        )
        assert steered.satisfiable
        assert cheap_border not in steered.solution.layout.added_borders

    def test_uniform_costs_match_unweighted(self, micro_net):
        from repro.tasks import generate_layout
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        schedule = Schedule(
            [
                TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
                TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.0),
            ],
            duration_min=5.0,
        )
        weighted = generate_layout(
            micro_net, schedule, 0.5,
            border_costs={v: 1 for v in micro_net.free_border_candidates()},
        )
        plain = generate_layout(micro_net, schedule, 0.5)
        assert weighted.objective_value == plain.objective_value


class TestRefineArrivals:
    def test_refinement_keeps_makespan(self):
        from repro.casestudies.running_example import running_example
        from repro.tasks import optimize_schedule

        study = running_example()
        net = study.discretize()
        plain = optimize_schedule(net, study.schedule, study.r_t_min)
        refined = optimize_schedule(
            net, study.schedule, study.r_t_min, refine_arrivals=True
        )
        assert refined.time_steps == plain.time_steps == 7

    def test_refinement_matches_fig2b_arrival_sum(self):
        """The paper's Fig. 2b arrivals (7/5/5/7) sum to 24; the
        lexicographic makespan-then-arrivals optimum reproduces that sum
        (the distribution varies between equally-optimal models)."""
        from repro.casestudies.running_example import running_example
        from repro.tasks import optimize_schedule

        study = running_example()
        net = study.discretize()
        refined = optimize_schedule(
            net, study.schedule, study.r_t_min, refine_arrivals=True
        )
        arrivals = [
            t.arrival_step for t in refined.solution.trajectories
        ]
        assert sum(arrivals) == 24
        assert max(arrivals) == 7

    def test_refinement_never_worse_than_plain(self, micro_net):
        from repro.tasks import optimize_schedule
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        schedule = Schedule(
            [
                TrainRun(Train("1", 100, 120), "A", "B", 0.0, None),
                TrainRun(Train("2", 100, 120), "A", "B", 0.5, None),
            ],
            duration_min=5.0,
        )
        plain = optimize_schedule(micro_net, schedule, 0.5)
        refined = optimize_schedule(
            micro_net, schedule, 0.5, refine_arrivals=True
        )

        def summed(result):
            return sum(t.arrival_step for t in result.solution.trajectories)

        assert refined.time_steps == plain.time_steps
        assert summed(refined) <= summed(plain)
