"""Unit tests for the structured event stream (repro.obs.events)."""

from __future__ import annotations

import io

import pytest

from repro.obs import events


@pytest.fixture(autouse=True)
def _clean_events():
    events.reset()
    yield
    events.reset()


class TestEventLog:
    def test_emit_records_kind_source_args(self):
        log = events.install(events.EventLog(source="test"))
        events.emit("restart", restarts=3, interval=100)
        (record,) = log.export()
        assert record["kind"] == "restart"
        assert record["source"] == "test"
        assert record["args"] == {"restarts": 3, "interval": 100}

    def test_disabled_emit_is_a_noop(self):
        events.emit("restart", restarts=1)  # must not raise
        assert events.export_events() == []
        assert not events.enabled()

    def test_ring_bounds_and_drop_counter(self):
        log = events.install(events.EventLog(capacity=5))
        for index in range(8):
            events.emit("tick", index=index)
        assert len(log) == 5
        assert log.dropped == 3
        kept = [record["args"]["index"] for record in log.export()]
        assert kept == [3, 4, 5, 6, 7]  # oldest dropped first

    def test_export_resequences_merged_events_monotonically(self):
        log = events.install(events.EventLog(source="main"))
        events.emit("first")
        child = events.fork_child(source="worker")
        child.emit("child-event")
        events.emit("second")
        events.merge(child.drain())
        exported = log.export()
        assert [r["seq"] for r in exported] == [1, 2, 3]
        times = [r["t"] for r in exported]
        assert times == sorted(times)
        sources = {r["source"] for r in exported}
        assert sources == {"main", "worker"}

    def test_drain_clears_without_resequencing(self):
        log = events.EventLog(source="w")
        log.emit("a")
        log.emit("b")
        drained = log.drain()
        assert [r["kind"] for r in drained] == ["a", "b"]
        assert len(log) == 0
        assert log.drain() == []

    def test_counts_per_kind(self):
        log = events.EventLog()
        log.emit("restart")
        log.emit("restart")
        log.emit("deadline.hit")
        assert log.counts() == {"restart": 2, "deadline.hit": 1}

    def test_listener_sees_local_and_merged_events(self):
        seen = []
        events.install(events.EventLog(listener=seen.append))
        events.emit("local")
        child = events.fork_child(source="w")
        child.emit("remote")
        events.merge(child.drain())
        assert [r["kind"] for r in seen] == ["local", "remote"]

    def test_broken_listener_never_breaks_emission(self):
        def bad(record):
            raise RuntimeError("listener bug")

        log = events.install(events.EventLog(listener=bad))
        events.emit("survives")
        assert len(log) == 1

    def test_jsonl_round_trip(self, tmp_path):
        log = events.install(events.EventLog())
        events.emit("restart", restarts=1)
        events.emit("lazy.round", round=2, clauses=17)
        path = tmp_path / "events.jsonl"
        events.write_jsonl(log.export(), str(path))
        back = events.read_jsonl(str(path))
        assert [r["kind"] for r in back] == ["restart", "lazy.round"]
        assert back[1]["args"]["clauses"] == 17


class TestLiveLine:
    def test_updates_overwrite_and_close_newlines(self):
        stream = io.StringIO()
        line = events.LiveLine(stream=stream, min_interval_s=0.0)
        line.update("long progress line")
        line.update("short")
        line.close()
        out = stream.getvalue()
        assert out.startswith("\rlong progress line")
        # The shorter line is padded so it fully overwrites the longer.
        assert "\rshort" + " " * (len("long progress line") - 5) in out
        assert out.endswith("\n")

    def test_throttling_skips_rapid_updates(self):
        stream = io.StringIO()
        line = events.LiveLine(stream=stream, min_interval_s=3600.0)
        line.update("first")
        line.update("second")  # throttled away
        line.update("third", force=True)
        assert "second" not in stream.getvalue()
        assert "third" in stream.getvalue()

    def test_live_listener_renders_event_kinds(self):
        stream = io.StringIO()
        line = events.LiveLine(stream=stream, min_interval_s=0.0)
        listener = events.live_listener(line, label="verify")
        listener({"kind": "progress",
                  "args": {"conflicts": 1200, "propagations": 90000,
                           "restarts": 4}})
        listener({"kind": "descent.improved", "args": {"cost": 7}})
        listener({"kind": "lazy.round", "args": {"round": 3}})
        listener({"kind": "deadline.hit", "args": {}})
        out = stream.getvalue()
        assert "verify:" in out
        assert "conflicts 1,200" in out
        assert "best 7" in out
        assert "round 3" in out
        assert "[deadline.hit]" in out


class TestProgressCallback:
    def test_none_when_both_tracks_disabled(self):
        assert events.progress_callback() is None

    def test_forwards_snapshots_to_event_stream(self):
        log = events.install(events.EventLog())
        hook = events.progress_callback()
        assert hook is not None
        hook({"conflicts": 10, "propagations": 500})
        (record,) = log.export()
        assert record["kind"] == "progress"
        assert record["args"]["conflicts"] == 10


class TestInstrumentationPoints:
    def test_solver_restart_and_deadline_events(self):
        from repro.sat.solver import Solver
        from repro.sat.types import SolverConfig

        log = events.install(events.EventLog())
        holes = 5
        pigeons = holes + 1

        def var(p, h):
            return p * holes + h + 1

        solver = Solver(SolverConfig(restart_base=8))
        solver.on_event(events.emit)
        solver.ensure_var(pigeons * holes)
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        solver.solve()
        counts = log.counts()
        assert counts.get("restart", 0) == solver.stats.restarts
        (first,) = [r for r in log.export() if r["seq"] == 1]
        assert "conflicts" in first["args"]

    def test_checkpoint_write_events(self, tmp_path):
        from repro.opt.checkpoint import DescentCheckpoint

        log = events.install(events.EventLog())
        ckpt = DescentCheckpoint(str(tmp_path / "d.ckpt"))
        ckpt.open({"version": 1}, resumed=False)
        ckpt.improved(cost=4, model=[1, -2], probe=1)
        ckpt.lower(bound=2, probe=2)
        ckpt.close()
        kinds = [r["args"]["type"] for r in log.export()
                 if r["kind"] == "checkpoint.write"]
        assert kinds == ["header", "improved", "lower"]

    def test_lazy_round_events(self, micro_net, single_train_schedule):
        from repro.encoding.lazy import solve_lazy_verification
        from repro.tasks.common import build_encoding

        log = events.install(events.EventLog())
        encoding = build_encoding(
            micro_net, single_train_schedule, 1.0, None, lazy=True
        )
        outcome = solve_lazy_verification(encoding)
        rounds = [r for r in log.export() if r["kind"] == "lazy.round"]
        assert len(rounds) == outcome.refiner.rounds

    def test_descent_improvement_events(self):
        from repro.logic import CNF, VarPool
        from repro.opt.minimize import minimize_sum

        log = events.install(events.EventLog())
        cnf = CNF(VarPool())
        lits = [cnf.pool.var(v) for v in range(1, 5)]
        cnf.add([lits[0], lits[1]])
        result = minimize_sum(cnf, lits)
        improved = [r for r in log.export()
                    if r["kind"] == "descent.improved"]
        assert improved, "descent found no improvement events"
        assert improved[-1]["args"]["cost"] == result.cost
