"""The seeded scenario generator: well-formedness and determinism.

Property-based layer (hypothesis): for arbitrary seeds the generator
must always yield a valid connected network, a route-consistent
schedule that discretises cleanly with every goal reachable, and an
encoding that builds without raising — the generator feeds the fuzz
harness, so a generator crash is indistinguishable from a solver bug.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.network.topology import NodeKind
from repro.scenarios import (
    Scenario,
    ScenarioSpec,
    from_case_study,
    generate_scenario,
    ramp_until_flip,
    scenario_from_json,
    with_headroom,
)
from repro.scenarios.generator import earliest_arrival_steps
from repro.tasks import verify_schedule
from repro.trains.discretize import discretize_schedule

seeds = st.integers(0, 10_000)


class TestGeneratorProperties:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_networks_are_valid_and_connected(self, seed):
        # RailwayNetwork.validate() (degree rules, TTD paths,
        # connectivity) runs in the constructor — reaching here is the
        # assertion; spot-check the structural basics on top.
        scenario = generate_scenario(ScenarioSpec.sampled(seed))
        network = scenario.network
        kinds = {n.kind for n in network.nodes.values()}
        assert NodeKind.BOUNDARY in kinds
        assert network.stations
        for station, tracks in network.stations.items():
            assert tracks

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_schedules_are_route_consistent(self, seed):
        scenario = generate_scenario(ScenarioSpec.sampled(seed))
        stations = set(scenario.network.stations)
        for run in scenario.schedule.runs:
            assert run.start in stations
            assert run.goal in stations
            assert run.start != run.goal
            assert 0 <= run.departure_min < scenario.schedule.duration_min

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_schedules_discretize_with_reachable_goals(self, seed):
        scenario = generate_scenario(ScenarioSpec.sampled(seed))
        net = scenario.discretize()
        runs, t_max = discretize_schedule(
            net, scenario.schedule, scenario.r_t_min
        )
        assert t_max >= 1
        for run, earliest in zip(runs, earliest_arrival_steps(scenario)):
            assert run.departure_step < t_max
            assert earliest >= run.departure_step

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_build_never_raises(self, seed):
        scenario = generate_scenario(ScenarioSpec.sampled(seed))
        eager = scenario.build(lazy=False)
        lazy = scenario.build(lazy=True)
        assert eager.cnf.num_clauses > lazy.cnf.num_clauses

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_generation_is_deterministic(self, seed):
        spec = ScenarioSpec.sampled(seed)
        assert spec == ScenarioSpec.sampled(seed)
        first = generate_scenario(spec)
        second = generate_scenario(spec)
        assert first.to_json() == second.to_json()

    @given(seeds, st.integers(-2, 4))
    @settings(max_examples=25, deadline=None)
    def test_headroom_deadlines_are_well_formed(self, seed, headroom):
        scenario = generate_scenario(ScenarioSpec.sampled(seed))
        tightened = with_headroom(scenario, headroom)
        duration = tightened.schedule.duration_min
        for run in tightened.schedule.runs:
            assert run.arrival_min is not None
            assert run.departure_min < run.arrival_min <= duration


class TestScenarioRoundTrip:
    def test_json_round_trip(self):
        scenario = generate_scenario(ScenarioSpec.sampled(11))
        again = scenario_from_json(scenario.to_json())
        assert again.to_json() == scenario.to_json()
        assert again.seed == scenario.seed
        assert len(again.schedule.runs) == len(scenario.schedule.runs)
        assert set(again.network.tracks) == set(scenario.network.tracks)

    def test_from_case_study_is_task_compatible(self):
        from repro.casestudies import all_case_studies

        scenario = from_case_study(all_case_studies()[0])
        assert isinstance(scenario, Scenario)
        result = verify_schedule(
            scenario.discretize(), scenario.schedule, scenario.r_t_min
        )
        assert result.satisfiable in (True, False)


class TestDifficultyRamp:
    def test_ramp_yields_straddling_pair(self):
        # Seed 9 is a known quick flipper (2 trains, one loop).
        spec = ScenarioSpec.sampled(9)
        scenario = generate_scenario(spec)
        pair = ramp_until_flip(scenario, headroom_start=spec.headroom_steps)
        assert pair.flipped
        assert pair.difficulty == spec.headroom_steps - pair.flip_headroom
        sat = verify_schedule(
            pair.sat.discretize(), pair.sat.schedule, pair.sat.r_t_min
        )
        unsat = verify_schedule(
            pair.unsat.discretize(), pair.unsat.schedule,
            pair.unsat.r_t_min,
        )
        assert sat.satisfiable
        assert not unsat.satisfiable

    def test_ramp_probes_upward_when_start_is_unsat(self):
        spec = ScenarioSpec.sampled(9)
        scenario = generate_scenario(spec)
        reference = ramp_until_flip(
            scenario, headroom_start=spec.headroom_steps
        )
        # Start the ramp *below* the flip: it must climb back up to the
        # same boundary instead of reporting structural infeasibility.
        low = ramp_until_flip(
            scenario, headroom_start=reference.flip_headroom
        )
        assert low.flipped
        assert low.flip_headroom == reference.flip_headroom
        assert low.difficulty <= 0

    def test_ramp_counts_verifications_frugally(self):
        spec = ScenarioSpec.sampled(9)
        scenario = generate_scenario(spec)
        calls = 0

        def counting_verify(candidate):
            nonlocal calls
            calls += 1
            return verify_schedule(
                candidate.discretize(), candidate.schedule,
                candidate.r_t_min,
            ).satisfiable

        pair = ramp_until_flip(
            scenario, headroom_start=spec.headroom_steps,
            verify=counting_verify,
        )
        assert pair.flipped
        # One call per probed headroom: start .. flip, inclusive.
        assert calls == spec.headroom_steps - pair.flip_headroom + 1


class TestSpecClamping:
    def test_sampled_respects_max_trains(self):
        for seed in range(20):
            assert ScenarioSpec.sampled(seed, max_trains=3).trains <= 3

    def test_loopless_lines_have_following_traffic_only(self):
        for seed in range(40):
            spec = ScenarioSpec.sampled(seed)
            if spec.loops:
                continue
            scenario = generate_scenario(
                dataclasses.replace(spec, loops=0)
            )
            starts = {run.start for run in scenario.schedule.runs}
            assert starts == {"A"}
