"""Tests for model decoding into solutions."""

from __future__ import annotations

import pytest

from repro.encoding.encoder import EtcsEncoding
from repro.sat import SolveResult


def solve_and_decode(encoding):
    solver = encoding.cnf.to_solver()
    assert solver.solve() is SolveResult.SAT
    return encoding.decode({lit for lit in solver.model() if lit > 0})


def build(net, schedule, r_t=0.5):
    return EtcsEncoding(net, schedule, r_t).build()


class TestDecode:
    def test_layout_contains_forced_borders(self, micro_net,
                                            single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve_and_decode(encoding)
        assert micro_net.forced_borders <= solution.layout.borders

    def test_trajectory_steps_cover_horizon(self, micro_net,
                                            single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve_and_decode(encoding)
        assert len(solution.trajectories) == 1
        assert len(solution.trajectories[0].steps) == encoding.t_max

    def test_arrival_step_consistent(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve_and_decode(encoding)
        trajectory = solution.trajectories[0]
        goal = set(encoding.runs[0].goal_segments)
        first_visit = next(
            t for t in range(encoding.t_max)
            if trajectory.steps[t] & goal
        )
        assert trajectory.arrival_step == first_visit

    def test_makespan_is_last_arrival(self, loop_net, crossing_schedule):
        encoding = build(loop_net, crossing_schedule)
        solution = solve_and_decode(encoding)
        arrivals = [t.arrival_step for t in solution.trajectories]
        assert solution.makespan == max(arrivals)

    def test_trajectory_of_lookup(self, loop_net, crossing_schedule):
        encoding = build(loop_net, crossing_schedule)
        solution = solve_and_decode(encoding)
        assert solution.trajectory_of("E").name == "E"
        with pytest.raises(KeyError):
            solution.trajectory_of("nope")

    def test_present_steps(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve_and_decode(encoding)
        trajectory = solution.trajectories[0]
        present = trajectory.present_steps
        assert present[0] == 0
        assert all(trajectory.steps[t] for t in present)

    def test_position_at(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve_and_decode(encoding)
        trajectory = solution.trajectories[0]
        assert trajectory.position_at(0) == trajectory.steps[0]

    def test_num_sections_matches_layout(self, micro_net,
                                          single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve_and_decode(encoding)
        assert solution.num_sections == solution.layout.num_sections
