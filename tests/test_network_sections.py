"""Tests for VSS layouts and section counting."""

from __future__ import annotations

import pytest

from repro.network.sections import VSSLayout
from repro.network.topology import NetworkError


class TestConstruction:
    def test_pure_ttd_counts_ttds(self, micro_net):
        layout = VSSLayout.pure_ttd(micro_net)
        assert layout.num_sections == micro_net.num_ttds
        assert layout.added_borders == frozenset()

    def test_finest_counts_segments(self, micro_net):
        layout = VSSLayout.finest(micro_net)
        assert layout.num_sections == micro_net.num_segments

    def test_missing_forced_border_rejected(self, micro_net):
        with pytest.raises(NetworkError, match="forced"):
            VSSLayout(micro_net, set())

    def test_unknown_vertex_rejected(self, micro_net):
        borders = set(micro_net.forced_borders) | {999}
        with pytest.raises(NetworkError, match="unknown"):
            VSSLayout(micro_net, borders)


class TestSections:
    def test_one_added_border_splits_one_section(self, micro_net):
        free = micro_net.free_border_candidates()
        borders = set(micro_net.forced_borders) | {free[0]}
        layout = VSSLayout(micro_net, borders)
        assert layout.num_sections == micro_net.num_ttds + 1
        assert layout.added_borders == frozenset({free[0]})

    def test_sections_partition_segments(self, loop_net):
        free = loop_net.free_border_candidates()
        borders = set(loop_net.forced_borders) | set(free[:2])
        layout = VSSLayout(loop_net, borders)
        sections = layout.sections()
        seen = [s for section in sections for s in section]
        assert sorted(seen) == list(range(loop_net.num_segments))

    def test_sections_respect_borders(self, loop_net):
        layout = VSSLayout.pure_ttd(loop_net)
        section_of = layout.section_of()
        for seg_a in range(loop_net.num_segments):
            for seg_b in range(loop_net.num_segments):
                same_ttd = loop_net.ttd_of[seg_a] == loop_net.ttd_of[seg_b]
                if section_of[seg_a] == section_of[seg_b]:
                    assert same_ttd

    def test_is_border(self, micro_net):
        layout = VSSLayout.pure_ttd(micro_net)
        forced = next(iter(micro_net.forced_borders))
        free = micro_net.free_border_candidates()[0]
        assert layout.is_border(forced)
        assert not layout.is_border(free)

    def test_equality_and_hash(self, micro_net):
        a = VSSLayout.pure_ttd(micro_net)
        b = VSSLayout.pure_ttd(micro_net)
        c = VSSLayout.finest(micro_net)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a layout"

    def test_repr(self, micro_net):
        assert "sections" in repr(VSSLayout.pure_ttd(micro_net))
