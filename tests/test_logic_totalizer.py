"""Tests for the incremental totalizer encoding."""

from __future__ import annotations

import math

import pytest

from repro.logic import CNF, Totalizer, VarPool
from repro.sat import SolveResult


def fresh(n: int) -> tuple[CNF, list[int]]:
    cnf = CNF(VarPool())
    return cnf, [cnf.pool.var(("x", i)) for i in range(n)]


def count_models(cnf, variables, assumptions=()):
    solver = cnf.to_solver()
    count = 0
    while solver.solve(list(assumptions)) is SolveResult.SAT:
        count += 1
        solver.add_clause(
            [-v if solver.model_value(v) else v for v in variables]
        )
    return count


class TestBoundsViaAssumptions:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_upper_bound_assumption(self, n):
        cnf, lits = fresh(n)
        totalizer = Totalizer(cnf, lits)
        for k in range(n):
            expected = sum(math.comb(n, j) for j in range(k + 1))
            bound = [totalizer.bound_literal(k)]
            assert count_models(cnf, lits, bound) == expected

    def test_bound_literal_range_checked(self):
        cnf, lits = fresh(3)
        totalizer = Totalizer(cnf, lits)
        with pytest.raises(ValueError):
            totalizer.bound_literal(3)
        with pytest.raises(ValueError):
            totalizer.bound_literal(-1)

    def test_incremental_tightening(self):
        """The same solver instance answers a sequence of bounds correctly."""
        cnf, lits = fresh(5)
        totalizer = Totalizer(cnf, lits)
        cnf.add(lits[:3])  # at least one of the first three
        solver = cnf.to_solver()
        for k in (4, 3, 2, 1):
            verdict = solver.solve([totalizer.bound_literal(k)])
            assert verdict is SolveResult.SAT
            true_count = sum(bool(solver.model_value(v)) for v in lits)
            assert true_count <= k
        assert solver.solve([totalizer.bound_literal(0)]) is SolveResult.UNSAT


class TestPermanentBounds:
    @pytest.mark.parametrize("n,k", [(4, 0), (4, 2), (5, 3), (3, 3)])
    def test_assert_at_most(self, n, k):
        cnf, lits = fresh(n)
        totalizer = Totalizer(cnf, lits)
        totalizer.assert_at_most(k)
        expected = sum(math.comb(n, j) for j in range(min(k, n) + 1))
        assert count_models(cnf, lits) == expected

    @pytest.mark.parametrize("n,k", [(4, 0), (4, 1), (4, 4), (5, 2)])
    def test_assert_at_least(self, n, k):
        cnf, lits = fresh(n)
        totalizer = Totalizer(cnf, lits)
        totalizer.assert_at_least(k)
        expected = sum(math.comb(n, j) for j in range(k, n + 1))
        assert count_models(cnf, lits) == expected

    def test_assert_at_least_too_many(self):
        cnf, lits = fresh(3)
        totalizer = Totalizer(cnf, lits)
        with pytest.raises(ValueError):
            totalizer.assert_at_least(4)

    def test_window_bounds_combine(self):
        cnf, lits = fresh(5)
        totalizer = Totalizer(cnf, lits)
        totalizer.assert_at_least(2)
        totalizer.assert_at_most(3)
        expected = math.comb(5, 2) + math.comb(5, 3)
        assert count_models(cnf, lits) == expected


class TestStructure:
    def test_outputs_sorted_semantics(self):
        """out[i] true  <=>  more than i inputs true (on complete models)."""
        cnf, lits = fresh(4)
        totalizer = Totalizer(cnf, lits)
        solver = cnf.to_solver()
        while solver.solve() is SolveResult.SAT:
            count = sum(bool(solver.model_value(v)) for v in lits)
            for i, out in enumerate(totalizer.outputs):
                assert bool(solver.model_value(out)) == (count > i)
            solver.add_clause(
                [-v if solver.model_value(v) else v
                 for v in lits + totalizer.outputs]
            )

    def test_empty_inputs_rejected(self):
        cnf, __ = fresh(0)
        with pytest.raises(ValueError):
            Totalizer(cnf, [])

    def test_single_input_has_no_aux(self):
        cnf, lits = fresh(1)
        totalizer = Totalizer(cnf, lits)
        assert totalizer.outputs == lits
        assert cnf.pool.num_aux == 0
