"""The randomized differential fuzz harness (headline deliverable).

25+ seeded scenarios each run through the four solver pipelines —
eager-serial, lazy CEGAR, portfolio race, solver-service CEGAR — must
agree on every verdict and on the generation optimum; the whole run is
a pure function of the seed.  A deliberately lying path exercises the
failure machinery: shrinking and reproducer emission.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.scenarios.fuzz as fuzz_mod
from repro.cli import main
from repro.sat.portfolio import fork_available
from repro.scenarios.fuzz import (
    PATHS,
    FuzzRecord,
    path_verdicts,
    reproduce,
    run_fuzz,
    write_report,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@needs_fork
class TestDifferentialAgreement:
    def test_25_scenarios_agree_across_all_paths(self):
        report = run_fuzz(count=25, seed=0, jobs=2, check_optimum=True)
        assert report.ok
        assert len(report.records) >= 25
        for record in report.records:
            assert set(record.verdicts) == set(PATHS)
            assert len(set(record.verdicts.values())) == 1
            assert record.optima["eager"] == record.optima["lazy"]
        # The run must exercise both verdicts, or it proves nothing.
        verdicts = {r.verdicts["eager"] for r in report.records}
        assert verdicts == {True, False}
        metrics = report.metrics
        assert metrics["scenario.generated"] == 25
        assert metrics["scenario.disagreements"] == 0 if (
            "scenario.disagreements" in metrics
        ) else True
        assert metrics["scenario.agreement"] == 1.0
        assert (
            metrics["scenario.verdict.sat"]
            + metrics["scenario.verdict.unsat"]
        ) == 25

    def test_run_is_seed_deterministic(self):
        first = run_fuzz(count=4, seed=3, jobs=2, check_optimum=False)
        second = run_fuzz(count=4, seed=3, jobs=2, check_optimum=False)
        assert first.as_dict() == second.as_dict()


@needs_fork
class TestFailureMachinery:
    def _liar(self):
        """A verdict oracle whose 'lazy' entry always lies."""
        def lying_verdicts(scenario, jobs=2, paths=PATHS):
            honest = path_verdicts(scenario, jobs, ("eager",))["eager"]
            return {"eager": honest, "lazy": not honest}

        return lying_verdicts

    def test_disagreement_is_shrunk_and_reproduced(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(fuzz_mod, "path_verdicts", self._liar())
        out = tmp_path / "failures"
        report = run_fuzz(
            count=1, seed=5, jobs=2, check_optimum=False,
            out_dir=str(out), paths=("eager", "lazy"),
        )
        assert not report.ok
        (record,) = report.disagreements
        assert record.shrink_steps >= 1
        assert record.reproducer is not None
        payload = json.loads(open(record.reproducer).read())
        # The lie survives any shrink, so the minimum is one train.
        assert len(payload["schedule"]["trains"]) == 1
        assert payload["meta"]["fuzz"]["verdicts"] == record.verdicts
        monkeypatch.undo()
        # Replayed honestly, the reproducer agrees again.
        replay = reproduce(
            record.reproducer, jobs=2, check_optimum=False
        )
        assert replay.verdicts_agree

    def test_shrink_respects_check_budget(self, monkeypatch):
        scenario = fuzz_mod.fuzz_scenario(5, 0)
        checks = 0

        def always_failing(candidate):
            nonlocal checks
            checks += 1
            return True

        smallest, steps = fuzz_mod.shrink(
            scenario, always_failing, max_checks=3
        )
        assert checks <= 3
        assert steps <= 3

    def test_agree_flag_combines_verdicts_and_optima(self):
        record = FuzzRecord(seed=0, name="x", headroom=0, trains=1,
                            tracks=1)
        assert record.agree
        record.optima_agree = False
        assert not record.agree


@needs_fork
class TestFuzzCli:
    def test_cli_fuzz_smoke(self, capsys):
        code = main([
            "fuzz", "--seed", "1", "--count", "2", "--no-optimum",
            "-j", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzzed 2 scenarios" in out
        assert "all solver paths agree" in out

    def test_cli_fuzz_report_and_metrics(self, tmp_path, capsys):
        report_file = tmp_path / "fuzz.json"
        metrics_file = tmp_path / "metrics.json"
        code = main([
            "fuzz", "--seed", "2", "--count", "2", "--no-optimum",
            "-j", "2", "--report", str(report_file),
            "--metrics", str(metrics_file),
        ])
        assert code == 0
        payload = json.loads(report_file.read_text())
        assert payload["ok"] and payload["count"] == 2
        metrics = json.loads(metrics_file.read_text())
        assert metrics["scenario.generated"] == 2

    def test_cli_reproduce_round_trip(self, tmp_path, capsys):
        scenario = fuzz_mod.fuzz_scenario(4, 0)
        path = tmp_path / "repro.json"
        path.write_text(scenario.to_json())
        code = main([
            "fuzz", "--reproduce", str(path), "--no-optimum", "-j", "2",
        ])
        assert code == 0
        assert "agree" in capsys.readouterr().out


class TestFuzzScenarioSampling:
    def test_scenarios_are_size_clamped(self):
        for index in range(8):
            scenario = fuzz_mod.fuzz_scenario(
                0, index, max_trains=3, max_loops=1
            )
            spec = scenario.meta["spec"]
            assert spec["trains"] <= 3
            assert spec["loops"] <= 1
            assert 0 <= scenario.meta["fuzz"]["headroom"] <= 3

    def test_distinct_indices_give_distinct_seeds(self):
        a = fuzz_mod.fuzz_scenario(0, 1)
        b = fuzz_mod.fuzz_scenario(0, 2)
        assert a.seed != b.seed
        assert a.name != b.name
