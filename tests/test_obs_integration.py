"""Integration tests: observability wired through solver, tasks, and CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import trace
from repro.sat import Solver, solve_portfolio
from repro.sat.portfolio import fork_available
from repro.sat.types import SolverStats
from repro.tasks.batch import BatchJob, run_batch
from repro.tasks.result import TaskResult
from repro.tasks.verification import verify_schedule
from tests.test_portfolio_runner import UNSAT_CNF, crashing_member

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    trace.reset()
    yield
    trace.reset()


# --- SolverStats snapshot/delta and per-solve stats ------------------------


class TestPerSolveStats:
    def test_snapshot_delta_arithmetic(self):
        before = SolverStats(conflicts=10, propagations=100, max_lbd=4)
        before.restart_conflict_deltas = [3, 7]
        after = SolverStats(conflicts=25, propagations=180, max_lbd=6)
        after.restart_conflict_deltas = [3, 7, 15]
        delta = after.delta(before)
        assert delta.conflicts == 15
        assert delta.propagations == 80
        assert delta.max_lbd == 6  # max fields keep the current value
        assert delta.restart_conflict_deltas == [15]

    def test_last_stats_does_not_accumulate_across_solves(self):
        num_vars, clauses = UNSAT_CNF
        solver = Solver()
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve()
        first = solver.last_stats
        solver.solve()
        second = solver.last_stats
        assert first.solve_calls == 1
        assert second.solve_calls == 1
        assert solver.stats.solve_calls == 2
        # The cumulative counters keep growing; the per-solve ones do not.
        assert solver.stats.conflicts >= second.conflicts

    def test_progress_callback_fires_on_conflicts(self):
        num_vars, clauses = UNSAT_CNF
        solver = Solver()
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        snapshots = []
        solver.on_progress(snapshots.append, interval_conflicts=1)
        solver.solve()
        assert snapshots
        assert {"conflicts", "propagations", "decisions"} <= set(
            snapshots[0]
        )

    def test_progress_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Solver().on_progress(lambda snap: None, interval_conflicts=0)


# --- deprecation alias -----------------------------------------------------


class TestStatsAlias:
    def test_task_result_stats_warns_and_aliases(self):
        result = TaskResult(
            task="verification", variables=1, satisfiable=False,
            num_sections=1, time_steps=None, runtime_s=0.0,
            solver_stats={"conflicts": 5},
        )
        with pytest.warns(DeprecationWarning, match="solver_stats"):
            assert result.stats == {"conflicts": 5}


# --- portfolio crash telemetry ---------------------------------------------


@needs_fork
class TestCrashTelemetry:
    def test_crash_report_carries_config_and_traceback(self):
        num_vars, clauses = UNSAT_CNF
        members = [crashing_member("c1"), crashing_member("c2")]
        result = solve_portfolio(
            num_vars, clauses, members=members, processes=2
        )
        assert result.stats.serial_fallback
        crashes = [r for r in result.stats.workers
                   if "crash" in r.error]
        assert crashes
        for crash in crashes:
            assert "injected portfolio worker crash" in crash.error
            assert "RuntimeError" in crash.traceback
            assert "Traceback" in crash.traceback
            assert crash.config  # the member's SolverConfig as a dict
            assert "random_seed" in crash.config


# --- fork-merge of worker spans --------------------------------------------


def _traced_job(tag):
    with trace.span("work", tag=tag):
        return tag * 2


@needs_fork
class TestForkMerge:
    def test_portfolio_member_spans_merge_into_parent(self):
        tracer = trace.install(trace.Tracer())
        num_vars, clauses = UNSAT_CNF
        solve_portfolio(num_vars, clauses, processes=2)
        member_spans = [s for s in tracer.spans if s.tid != "main"]
        assert member_spans, "worker spans were not merged"
        assert {"portfolio.member", "load", "solve"} <= {
            s.name for s in member_spans
        }

    def test_batch_worker_spans_merge_into_parent(self):
        tracer = trace.install(trace.Tracer())
        jobs = [BatchJob(f"j{i}", _traced_job, args=(i,)) for i in range(3)]
        report = run_batch(jobs, processes=2)
        assert report.ok
        assert not report.serial_fallback
        tids = {span.tid for span in tracer.spans}
        assert {"batch:j0", "batch:j1", "batch:j2"} <= tids
        worker = [s for s in tracer.spans if s.name == "work"]
        assert len(worker) == 3
        job_spans = [s for s in tracer.spans if s.name == "batch.job"]
        assert len(job_spans) == 3
        # The shared monotonic clock keeps children inside the batch span.
        batch = next(s for s in tracer.spans if s.name == "batch")
        for span in worker:
            assert batch.t0 <= span.t0 <= span.t1 <= batch.t1

    def test_batch_serial_path_traces_inline(self):
        tracer = trace.install(trace.Tracer())
        jobs = [BatchJob(f"j{i}", _traced_job, args=(i,)) for i in range(2)]
        report = run_batch(jobs, processes=1)
        assert report.ok
        assert all(not r.spans for r in report.results)
        assert {s.tid for s in tracer.spans} == {"main"}
        assert len([s for s in tracer.spans if s.name == "work"]) == 2


# --- task + CLI end-to-end -------------------------------------------------


class TestTaskInstrumentation:
    def test_verify_produces_phase_spans_and_metrics(
        self, micro_net, single_train_schedule
    ):
        tracer = trace.install(trace.Tracer())
        result = verify_schedule(micro_net, single_train_schedule, 0.5)
        names = {span.name for span in tracer.spans}
        assert {"verify", "encode", "simplify", "solve", "decode"} <= names
        assert result.metrics["solver.conflicts"] >= 0
        assert result.metrics["encoder.vars"] > 0
        assert any(
            key.startswith("encoder.placement.") for key in result.metrics
        )

    def test_cli_trace_metrics_and_report(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        metrics_path = str(tmp_path / "m.json")
        code = main([
            "verify", "--case", "running-example",
            "--trace", trace_path, "--metrics", metrics_path,
        ])
        assert code == 1  # the running example is UNSAT by design
        assert not trace.enabled()  # the CLI uninstalls its tracer
        records = trace.read_jsonl(trace_path)
        names = {r["name"] for r in records}
        assert {"verify", "encode", "simplify", "solve", "decode"} <= names
        with open(metrics_path) as handle:
            metrics = json.load(handle)
        assert "solver.conflicts" in metrics
        capsys.readouterr()

        chrome_path = str(tmp_path / "t.json")
        code = main([
            "report", "--trace", trace_path, "--metrics", metrics_path,
            "--export-chrome", chrome_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Trace:" in out
        assert "solver.conflicts" in out
        with open(chrome_path) as handle:
            chrome = json.load(handle)
        assert chrome["traceEvents"]
