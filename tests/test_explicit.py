"""Tests for the explicit-state model checker, including the three-way
cross-validation against the SAT encoder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.explicit import explicit_verify
from repro.explicit.model_checker import ExplicitLimitExceeded
from repro.network.builder import NetworkBuilder
from repro.network.discretize import DiscreteNetwork
from repro.network.sections import VSSLayout
from repro.tasks import verify_schedule
from repro.trains.schedule import Schedule, Stop, TrainRun
from repro.trains.train import Train


class TestBasics:
    def test_single_train_feasible(self, micro_net, single_train_schedule):
        assert explicit_verify(micro_net, single_train_schedule, 0.5)

    def test_impossible_deadline(self, micro_net):
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        assert not explicit_verify(micro_net, Schedule([run], 5.0), 0.5)

    def test_headway_needs_vss(self, micro_net):
        schedule = Schedule(
            [
                TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
                TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.0),
            ],
            duration_min=5.0,
        )
        assert not explicit_verify(micro_net, schedule, 0.5)
        assert explicit_verify(
            micro_net, schedule, 0.5, layout=VSSLayout.finest(micro_net)
        )

    def test_stops_unsupported(self, micro_net):
        micro_net.network.stations["M"] = ["mid"]
        run = TrainRun(
            Train("T", 100, 120), "A", "B", 0.0, 4.5,
            stops=(Stop("M"),),
        )
        with pytest.raises(NotImplementedError):
            explicit_verify(micro_net, Schedule([run], 5.0), 0.5)

    def test_state_limit(self, loop_net, crossing_schedule):
        with pytest.raises(ExplicitLimitExceeded):
            explicit_verify(
                loop_net, crossing_schedule, 0.5,
                layout=VSSLayout.finest(loop_net),
                max_states_per_layer=1,
            )

    def test_blocked_exit_wanderer(self, micro_net):
        """The regression the checker caught: a train that reaches its goal
        but must back away because another train blocks its exit."""
        schedule = Schedule(
            [
                TrainRun(Train("E", 100, 60), "A", "B", 0.0, None),
                TrainRun(Train("W", 100, 60), "B", "A", 0.0, None),
            ],
            duration_min=5.0,
        )
        layout = VSSLayout.finest(micro_net)
        assert explicit_verify(micro_net, schedule, 0.5, layout=layout)
        # The SAT encoder must agree (the cone's post-visit ball).
        assert verify_schedule(
            micro_net, schedule, 0.5, layout=layout
        ).satisfiable


@st.composite
def tiny_networks(draw):
    """1-2 middle tracks, with or without a passing loop."""
    with_loop = draw(st.booleans())
    builder = NetworkBuilder().boundary("A")
    if with_loop:
        builder.switch("p1").switch("p2").boundary("B")
        builder.track("A", "p1", length_km=1.0, ttd="T1", name="staA")
        builder.track("p1", "p2", length_km=1.0, ttd="T2", name="up")
        builder.track("p1", "p2", length_km=1.0, ttd="T3", name="down")
        builder.track("p2", "B", length_km=1.0, ttd="T4", name="staB")
    else:
        builder.link("m1").boundary("B")
        length = draw(st.sampled_from([0.5, 1.0, 1.5]))
        builder.track("A", "m1", length_km=1.0, ttd="T1", name="staA")
        builder.track("m1", "B", length_km=length, ttd="T2", name="staB")
    builder.station("A", ["staA"]).station("B", ["staB"])
    return builder.build()


@st.composite
def tiny_schedules(draw):
    """1-2 trains, possibly opposing, short horizon."""
    num_trains = draw(st.integers(1, 2))
    runs = []
    for i in range(num_trains):
        eastbound = draw(st.booleans())
        dep = draw(st.sampled_from([0.0, 0.5, 1.0]))
        arrival = draw(st.sampled_from([None, 2.5, 3.5, 4.5]))
        if arrival is not None and arrival <= dep:
            arrival = dep + 2.0
        runs.append(
            TrainRun(
                Train(f"t{i}", 100, draw(st.sampled_from([60, 120]))),
                start="A" if eastbound else "B",
                goal="B" if eastbound else "A",
                departure_min=dep,
                arrival_min=arrival,
            )
        )
    return Schedule(runs, duration_min=5.0)


class TestCrossValidation:
    @given(tiny_networks(), tiny_schedules(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_explicit_agrees_with_sat(self, network, schedule, finest):
        """The headline three-way check: the explicit-state semantics and
        the (cone-reduced) SAT encoding give identical verdicts."""
        net = DiscreteNetwork(network, 0.5)
        layout = (
            VSSLayout.finest(net) if finest else VSSLayout.pure_ttd(net)
        )
        explicit = explicit_verify(net, schedule, 0.5, layout=layout)
        sat = verify_schedule(net, schedule, 0.5, layout=layout)
        assert explicit == sat.satisfiable


class TestWitnesses:
    def test_witness_validates(self, micro_net, single_train_schedule):
        """The explicit checker's witness passes the independent validator:
        the triangle (encoder, validator, explicit) closes."""

        from repro.encoding.decode import Solution, TrainTrajectory
        from repro.encoding.encoder import EtcsEncoding
        from repro.encoding.validate import validate_solution

        layout = VSSLayout.finest(micro_net)
        verdict, trajectories = explicit_verify(
            micro_net, single_train_schedule, 0.5, layout=layout,
            return_witness=True,
        )
        assert verdict and trajectories is not None
        encoding = EtcsEncoding(micro_net, single_train_schedule, 0.5).build()
        goal = set(encoding.runs[0].goal_segments)
        steps = trajectories[0]
        arrival = next(
            (t for t, occ in enumerate(steps) if occ & goal), None
        )
        gone_from = next(
            (t for t in range(encoding.runs[0].departure_step + 1,
                              encoding.t_max)
             if not steps[t] and steps[t - 1]),
            None,
        )
        solution = Solution(
            layout=layout,
            trajectories=[
                TrainTrajectory(
                    name="T", steps=list(steps),
                    arrival_step=arrival, gone_from=gone_from,
                )
            ],
            makespan=arrival,
            t_max=encoding.t_max,
        )
        assert validate_solution(encoding, solution) == []

    def test_infeasible_returns_no_witness(self, micro_net):
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        verdict, trajectories = explicit_verify(
            micro_net, Schedule([run], 5.0), 0.5, return_witness=True
        )
        assert not verdict and trajectories is None

    def test_wanderer_witness_validates(self, micro_net):
        """The blocked-exit wanderer's witness also passes the validator."""
        from repro.encoding.decode import Solution, TrainTrajectory
        from repro.encoding.encoder import EtcsEncoding
        from repro.encoding.validate import validate_solution

        schedule = Schedule(
            [
                TrainRun(Train("E", 100, 60), "A", "B", 0.0, None),
                TrainRun(Train("W", 100, 60), "B", "A", 0.0, None),
            ],
            duration_min=5.0,
        )
        layout = VSSLayout.finest(micro_net)
        verdict, trajectories = explicit_verify(
            micro_net, schedule, 0.5, layout=layout, return_witness=True
        )
        assert verdict
        encoding = EtcsEncoding(micro_net, schedule, 0.5).build()
        decoded = []
        for i, run in enumerate(encoding.runs):
            goal = set(run.goal_segments)
            steps = list(trajectories[i])
            arrival = next(
                (t for t, occ in enumerate(steps) if occ & goal), None
            )
            gone_from = next(
                (t for t in range(run.departure_step + 1, encoding.t_max)
                 if not steps[t] and steps[t - 1]),
                None,
            )
            decoded.append(
                TrainTrajectory(
                    name=run.name, steps=steps,
                    arrival_step=arrival, gone_from=gone_from,
                )
            )
        solution = Solution(
            layout=layout,
            trajectories=decoded,
            makespan=max(t.arrival_step for t in decoded),
            t_max=encoding.t_max,
        )
        assert validate_solution(encoding, solution) == []
