"""Tests for the physical railway topology model."""

from __future__ import annotations

import pytest

from repro.network.topology import (
    NetworkError,
    Node,
    NodeKind,
    RailwayNetwork,
    Track,
)


def nodes(*specs):
    return [Node(name, kind) for name, kind in specs]


class TestPrimitives:
    def test_node_requires_name(self):
        with pytest.raises(NetworkError):
            Node("")

    def test_track_rejects_self_loop(self):
        with pytest.raises(NetworkError):
            Track("t", "a", "a", 1.0, "TTD")

    def test_track_rejects_nonpositive_length(self):
        with pytest.raises(NetworkError):
            Track("t", "a", "b", 0.0, "TTD")
        with pytest.raises(NetworkError):
            Track("t", "a", "b", -2.0, "TTD")

    def test_other_end(self):
        track = Track("t", "a", "b", 1.0, "TTD")
        assert track.other_end("a") == "b"
        assert track.other_end("b") == "a"
        with pytest.raises(NetworkError):
            track.other_end("c")


class TestValidation:
    def test_minimal_valid_network(self, micro_line):
        assert micro_line.num_ttds == 3
        assert micro_line.total_length_km == pytest.approx(3.0)

    def test_empty_network_rejected(self):
        with pytest.raises(NetworkError):
            RailwayNetwork(nodes(("a", NodeKind.BOUNDARY)), [])

    def test_duplicate_node(self):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                nodes(("a", NodeKind.BOUNDARY), ("a", NodeKind.BOUNDARY)),
                [Track("t", "a", "b", 1.0, "T")],
            )

    def test_unknown_endpoint(self):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                nodes(("a", NodeKind.BOUNDARY), ("b", NodeKind.BOUNDARY)),
                [Track("t", "a", "zz", 1.0, "T")],
            )

    def test_boundary_degree_must_be_one(self):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                nodes(
                    ("a", NodeKind.BOUNDARY),
                    ("b", NodeKind.BOUNDARY),
                    ("c", NodeKind.BOUNDARY),
                ),
                [
                    Track("t1", "a", "b", 1.0, "T1"),
                    Track("t2", "a", "c", 1.0, "T2"),
                ],
            )

    def test_link_degree_must_be_two(self):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                nodes(("a", NodeKind.BOUNDARY), ("m", NodeKind.LINK)),
                [Track("t", "a", "m", 1.0, "T")],
            )

    def test_switch_degree_at_least_three(self):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                nodes(("a", NodeKind.BOUNDARY), ("s", NodeKind.SWITCH),
                      ("b", NodeKind.BOUNDARY)),
                [Track("t1", "a", "s", 1.0, "T1"),
                 Track("t2", "s", "b", 1.0, "T2")],
            )

    def test_disconnected_network_rejected(self):
        with pytest.raises(NetworkError, match="disconnected"):
            RailwayNetwork(
                nodes(
                    ("a", NodeKind.BOUNDARY), ("b", NodeKind.BOUNDARY),
                    ("c", NodeKind.BOUNDARY), ("d", NodeKind.BOUNDARY),
                ),
                [Track("t1", "a", "b", 1.0, "T1"),
                 Track("t2", "c", "d", 1.0, "T2")],
            )

    def test_station_referencing_unknown_track(self, micro_line):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                list(micro_line.nodes.values()),
                list(micro_line.tracks.values()),
                {"X": ["nope"]},
            )

    def test_station_with_no_tracks(self, micro_line):
        with pytest.raises(NetworkError):
            RailwayNetwork(
                list(micro_line.nodes.values()),
                list(micro_line.tracks.values()),
                {"X": []},
            )


class TestTTDValidation:
    def test_branching_ttd_rejected(self):
        # Three tracks meeting at a switch, all in one TTD: not a path.
        with pytest.raises(NetworkError, match="simple path"):
            RailwayNetwork(
                nodes(
                    ("a", NodeKind.BOUNDARY), ("b", NodeKind.BOUNDARY),
                    ("c", NodeKind.BOUNDARY), ("s", NodeKind.SWITCH),
                ),
                [
                    Track("t1", "a", "s", 1.0, "T"),
                    Track("t2", "b", "s", 1.0, "T"),
                    Track("t3", "c", "s", 1.0, "T"),
                ],
            )

    def test_switch_inside_ttd_rejected(self):
        with pytest.raises(NetworkError, match="switch"):
            RailwayNetwork(
                nodes(
                    ("a", NodeKind.BOUNDARY), ("s", NodeKind.SWITCH),
                    ("b", NodeKind.BOUNDARY), ("c", NodeKind.BOUNDARY),
                ),
                [
                    Track("t1", "a", "s", 1.0, "T"),
                    Track("t2", "s", "b", 1.0, "T"),
                    Track("t3", "s", "c", 1.0, "Other"),
                ],
            )

    def test_multi_track_path_ttd_accepted(self, micro_line):
        # Re-tag the micro line so two consecutive tracks share a TTD.
        tracks = [
            Track("staA", "A", "m1", 1.0, "T1"),
            Track("mid", "m1", "m2", 1.0, "T1"),
            Track("staB", "m2", "B", 1.0, "T2"),
        ]
        network = RailwayNetwork(list(micro_line.nodes.values()), tracks)
        assert network.num_ttds == 2


class TestQueries:
    def test_tracks_at(self, loop_line):
        at_p1 = {t.name for t in loop_line.tracks_at("p1")}
        assert at_p1 == {"staA", "up", "down"}
        assert loop_line.degree("p1") == 3

    def test_ttd_sections(self, loop_line):
        sections = loop_line.ttd_sections()
        assert set(sections) == {"TTD1", "TTD2", "TTD3", "TTD4"}
        assert [t.name for t in sections["TTD2"]] == ["up"]

    def test_station_tracks(self, micro_line):
        assert [t.name for t in micro_line.station_tracks("A")] == ["staA"]
        with pytest.raises(NetworkError):
            micro_line.station_tracks("Nowhere")

    def test_repr(self, micro_line):
        text = repr(micro_line)
        assert "3 tracks" in text and "3 TTDs" in text
