"""Tests for the incremental layout explorer and the robustness task."""

from __future__ import annotations

import pytest

from repro.network.sections import VSSLayout
from repro.tasks import (
    LayoutExplorer,
    delay_tolerance,
    generate_layout,
    robustness_report,
    verify_schedule,
)
from repro.trains.schedule import Schedule, ScheduleError, TrainRun
from repro.trains.train import Train


@pytest.fixture
def headway_schedule():
    runs = [
        TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
        TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.0),
    ]
    return Schedule(runs, duration_min=5.0)


class TestLayoutExplorer:
    def test_matches_fresh_verification(self, micro_net, headway_schedule):
        explorer = LayoutExplorer(micro_net, headway_schedule, 0.5)
        for layout in (
            VSSLayout.pure_ttd(micro_net),
            VSSLayout.finest(micro_net),
        ):
            fresh = verify_schedule(
                micro_net, headway_schedule, 0.5, layout=layout
            )
            assert explorer.check(layout) == fresh.satisfiable

    def test_last_solution_validates(self, micro_net, headway_schedule):
        explorer = LayoutExplorer(micro_net, headway_schedule, 0.5)
        assert explorer.check(VSSLayout.finest(micro_net))
        assert explorer.last_solution is not None
        assert explorer.last_solution.layout == VSSLayout.finest(micro_net)

    def test_failed_check_clears_solution(self, micro_net, headway_schedule):
        explorer = LayoutExplorer(micro_net, headway_schedule, 0.5)
        explorer.check(VSSLayout.finest(micro_net))
        assert not explorer.check(VSSLayout.pure_ttd(micro_net))
        assert explorer.last_solution is None

    def test_all_single_border_layouts(self, micro_net, headway_schedule):
        """Sweep every 1-border layout; at least one must work (the
        generation optimum is 1) and the explorer must agree with
        generate_layout's optimum."""
        explorer = LayoutExplorer(micro_net, headway_schedule, 0.5)
        feasible = []
        for vertex in micro_net.free_border_candidates():
            layout = VSSLayout(
                micro_net, set(micro_net.forced_borders) | {vertex}
            )
            if explorer.check(layout):
                feasible.append(vertex)
        generated = generate_layout(micro_net, headway_schedule, 0.5)
        assert generated.objective_value == 1
        assert feasible  # some single border suffices
        assert explorer.queries == len(micro_net.free_border_candidates())

    def test_makespan_of(self, micro_net, headway_schedule):
        explorer = LayoutExplorer(micro_net, headway_schedule, 0.5)
        assert explorer.makespan_of(VSSLayout.pure_ttd(micro_net)) is None
        makespan = explorer.makespan_of(VSSLayout.finest(micro_net))
        assert makespan is not None and makespan <= 8

    def test_stats_accumulate(self, micro_net, headway_schedule):
        explorer = LayoutExplorer(micro_net, headway_schedule, 0.5)
        explorer.check(VSSLayout.pure_ttd(micro_net))
        explorer.check(VSSLayout.finest(micro_net))
        assert explorer.solver_stats["solve_calls"] == 2


class TestDelayTolerance:
    def test_single_train_has_slack(self, micro_net, single_train_schedule):
        # Train needs 2 steps, deadline at step 8, departs at 0: tolerance 6.
        tolerance = delay_tolerance(
            micro_net, single_train_schedule, 0.5, "T",
            layout=VSSLayout.finest(micro_net),
        )
        assert tolerance == 6

    def test_infeasible_schedule_reports_minus_one(self, micro_net):
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        tolerance = delay_tolerance(
            micro_net, Schedule([run], 5.0), 0.5, "T"
        )
        assert tolerance == -1

    def test_unknown_train_rejected(self, micro_net, single_train_schedule):
        with pytest.raises(ScheduleError):
            delay_tolerance(micro_net, single_train_schedule, 0.5, "nope")

    def test_max_steps_cap(self, micro_net, single_train_schedule):
        tolerance = delay_tolerance(
            micro_net, single_train_schedule, 0.5, "T",
            layout=VSSLayout.finest(micro_net), max_steps=2,
        )
        assert tolerance == 2

    def test_vss_improves_robustness(self, micro_net, headway_schedule):
        """More VSS should never reduce (and here strictly increases) the
        follower's delay tolerance."""
        pure = delay_tolerance(
            micro_net, headway_schedule, 0.5, "1",
            layout=VSSLayout.pure_ttd(micro_net),
        )
        fine = delay_tolerance(
            micro_net, headway_schedule, 0.5, "1",
            layout=VSSLayout.finest(micro_net),
        )
        assert fine >= pure

    def test_report_covers_all_trains(self, micro_net, headway_schedule):
        report = robustness_report(
            micro_net, headway_schedule, 0.5,
            layout=VSSLayout.finest(micro_net), max_steps=4,
        )
        assert set(report) == {"1", "2"}
        assert all(-1 <= v <= 4 for v in report.values())
