"""Tests for the variable registry and its census."""

from __future__ import annotations

from repro.encoding.variables import VariableRegistry


class TestRegistry:
    def test_variables_are_stable(self):
        reg = VariableRegistry()
        a = reg.occupies(0, 5, 3)
        assert reg.occupies(0, 5, 3) == a
        assert reg.lookup_occupies(0, 5, 3) == a

    def test_distinct_families_distinct_vars(self):
        reg = VariableRegistry()
        values = {
            reg.border(1),
            reg.occupies(1, 1, 1),
            reg.done(1, 1),
            reg.gone(1, 1),
            reg.chain(1, 1, 1),
            reg.done_all(1),
        }
        assert len(values) == 6

    def test_lookup_missing_returns_none(self):
        reg = VariableRegistry()
        assert reg.lookup_border(3) is None
        assert reg.lookup_done(0, 0) is None
        assert reg.lookup_gone(0, 0) is None
        assert reg.lookup_occupies(0, 0, 0) is None

    def test_census_counts(self):
        reg = VariableRegistry()
        reg.border(0)
        reg.border(1)
        reg.border(1)  # duplicate: not counted twice
        reg.occupies(0, 0, 0)
        reg.done(0, 5)
        reg.gone(0, 6)
        reg.chain(0, 0, 0)
        reg.done_all(3)
        reg.pool.new_aux()
        census = reg.census()
        assert census["border"] == 2
        assert census["occupies"] == 1
        assert census["done"] == 1
        assert census["gone"] == 1
        assert census["chain"] == 1
        assert census["done_all"] == 1
        assert census["aux"] == 1
        assert census["total"] == 8

    def test_primary_matches_paper_families(self):
        reg = VariableRegistry()
        reg.border(0)
        reg.occupies(0, 0, 0)
        reg.done(0, 1)
        reg.gone(0, 1)
        assert reg.num_primary == 3  # gone is an encoding refinement
        assert reg.num_structural == 1
