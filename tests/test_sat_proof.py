"""Tests for DRAT proof logging and RUP checking."""

from __future__ import annotations

import random

import pytest

from repro.sat import Solver, SolveResult
from repro.sat.proof import ProofLogger, check_rup_proof, parse_drat


def pigeonhole(holes: int) -> list[list[int]]:
    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(holes + 1)]
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def solve_with_proof(clauses):
    solver = Solver()
    logger = ProofLogger()
    solver.attach_proof(logger)
    for clause in clauses:
        solver.add_clause(clause)
    verdict = solver.solve()
    return verdict, logger, solver


class TestProofLogging:
    def test_unsat_proof_ends_with_empty_clause(self):
        clauses = pigeonhole(4)
        verdict, logger, __ = solve_with_proof(clauses)
        assert verdict is SolveResult.UNSAT
        assert logger.ends_with_empty_clause()
        assert logger.num_additions > 1

    def test_sat_run_logs_no_empty_clause(self):
        verdict, logger, __ = solve_with_proof([[1, 2], [-1, 2]])
        assert verdict is SolveResult.SAT
        assert not logger.ends_with_empty_clause()

    def test_trivial_contradiction(self):
        verdict, logger, __ = solve_with_proof([[1], [-1]])
        assert verdict is SolveResult.UNSAT
        assert logger.ends_with_empty_clause()


class TestRupChecker:
    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_pigeonhole_proofs_check(self, holes):
        clauses = pigeonhole(holes)
        verdict, logger, __ = solve_with_proof(clauses)
        assert verdict is SolveResult.UNSAT
        num_vars = max(abs(l) for c in clauses for l in c)
        assert check_rup_proof(num_vars, clauses, logger.steps)

    def test_random_unsat_proofs_check(self):
        rng = random.Random(5)
        checked = 0
        while checked < 5:
            num_vars = rng.randint(4, 8)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, num_vars)
                 for _ in range(3)]
                for _ in range(num_vars * 6)
            ]
            verdict, logger, __ = solve_with_proof(clauses)
            if verdict is SolveResult.UNSAT:
                assert check_rup_proof(num_vars, clauses, logger.steps)
                checked += 1

    def test_bogus_proof_rejected(self):
        # Claiming the empty clause out of thin air must fail.
        clauses = [[1, 2], [-1, 2]]
        assert not check_rup_proof(2, clauses, [("a", ())])

    def test_non_rup_step_rejected(self):
        clauses = [[1, 2, 3]]
        # (1) is not a RUP consequence of (1 v 2 v 3).
        steps = [("a", (1,)), ("a", ())]
        assert not check_rup_proof(3, clauses, steps)

    def test_proof_without_empty_clause_rejected(self):
        clauses = [[1], [-1, 2]]
        steps = [("a", (2,))]  # valid lemma, but no refutation
        assert not check_rup_proof(2, clauses, steps)

    def test_deletions_respected(self):
        # Deleting the clause a later step depends on invalidates the proof.
        clauses = [[1], [-1]]
        bad = [("d", (1,)), ("a", ())]
        good = [("a", ())]
        assert check_rup_proof(1, clauses, good)
        assert not check_rup_proof(1, clauses, bad)

    def test_proof_with_deletions_from_solver(self):
        """Force clause deletion during solving; the proof must still check."""
        from repro.sat.types import SolverConfig

        clauses = pigeonhole(5)
        solver = Solver(
            SolverConfig(
                learned_clause_limit_factor=0.01,
                learned_clause_min_limit=30,
            )
        )
        logger = ProofLogger()
        solver.attach_proof(logger)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT
        assert any(kind == "d" for kind, __ in logger.steps)
        num_vars = max(abs(l) for c in clauses for l in c)
        assert check_rup_proof(num_vars, clauses, logger.steps)


class TestDratFormat:
    def test_roundtrip(self):
        logger = ProofLogger()
        logger.add([1, -2])
        logger.delete([3])
        logger.add([])
        text = logger.to_drat()
        assert parse_drat(text) == logger.steps

    def test_parse_rejects_unterminated(self):
        with pytest.raises(ValueError):
            parse_drat("1 2\n")

    def test_parse_skips_comments(self):
        steps = parse_drat("c hello\n1 0\nd 1 0\n0\n")
        assert steps == [("a", (1,)), ("d", (1,)), ("a", ())]


class TestEtcsUnsatProofs:
    def test_running_example_verification_proof(self, micro_net):
        """The headway scenario's UNSAT verdict carries a checkable proof."""
        from repro.encoding.encoder import EtcsEncoding
        from repro.network.sections import VSSLayout
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        runs = [
            TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
            TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.0),
        ]
        encoding = EtcsEncoding(micro_net, Schedule(runs, 5.0), 0.5).build()
        encoding.pin_layout(VSSLayout.pure_ttd(micro_net))

        solver = Solver()
        logger = ProofLogger()
        solver.attach_proof(logger)
        solver.ensure_var(encoding.cnf.num_vars)
        for clause in encoding.cnf.clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT
        assert check_rup_proof(
            encoding.cnf.num_vars, encoding.cnf.clauses, logger.steps
        )
