"""Differential suite: lazy CEGAR vs eager encoding on the case studies.

On all four §IV case studies the two modes must agree on the
verification verdict *and* on the optimal border count of the
generation task — the acceptance bar for the lazy encoding (its model
set provably equals the eager one; these tests check the
implementation, not the theorem).
"""

from __future__ import annotations

import pytest

from repro.casestudies.base import all_case_studies
from repro.tasks import generate_layout, verify_schedule

STUDIES = {study.name: study for study in all_case_studies()}


@pytest.fixture(params=sorted(STUDIES), scope="module")
def study(request):
    return STUDIES[request.param]


def test_verification_verdict_agrees(study):
    net = study.discretize()
    eager = verify_schedule(net, study.schedule, study.r_t_min, lazy=False)
    lazy = verify_schedule(net, study.schedule, study.r_t_min, lazy=True)
    assert lazy.satisfiable == eager.satisfiable, study.name
    # The relaxation never instantiates more than the eager formula.
    assert lazy.clauses <= eager.clauses, study.name
    assert lazy.metrics["lazy.clauses_saved"] >= 0, study.name


def test_generation_optimum_agrees(study):
    net = study.discretize()
    eager = generate_layout(net, study.schedule, study.r_t_min, lazy=False)
    lazy = generate_layout(net, study.schedule, study.r_t_min, lazy=True)
    assert lazy.satisfiable == eager.satisfiable, study.name
    assert lazy.objective_value == eager.objective_value, study.name
    assert lazy.proven_optimal == eager.proven_optimal, study.name
