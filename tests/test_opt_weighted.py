"""Tests for weighted minimisation."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.logic import CNF, VarPool
from repro.opt.weighted import minimize_weighted_sum


def brute_force_weighted(num_vars, clauses, weighted):
    best = None
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(lit):
            phase = bits[abs(lit) - 1]
            return phase if lit > 0 else not phase

        if all(any(value(lit) for lit in c) for c in clauses):
            cost = sum(w for lit, w in weighted if value(lit))
            best = cost if best is None else min(best, cost)
    return best


def build(num_vars, clauses):
    cnf = CNF(VarPool())
    for v in range(1, num_vars + 1):
        cnf.pool.var(v)
    for clause in clauses:
        cnf.add(clause)
    return cnf


class TestDuplicationPath:
    def test_simple_weighted(self):
        # x1 v x2 hard; w(x1)=5, w(x2)=1: optimum sets x2.
        cnf = build(2, [[1, 2]])
        result = minimize_weighted_sum(cnf, [(1, 5), (2, 1)])
        assert result.feasible and result.proven_optimal
        assert result.cost == 1
        assert 2 in result.true_set()

    def test_random_against_brute_force(self):
        rng = random.Random(17)
        for _ in range(30):
            num_vars = rng.randint(2, 6)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, num_vars)
                 for _ in range(rng.randint(1, 3))]
                for _ in range(rng.randint(1, 12))
            ]
            weighted = [
                (v, rng.randint(1, 6))
                for v in rng.sample(
                    range(1, num_vars + 1), rng.randint(1, num_vars)
                )
            ]
            expected = brute_force_weighted(num_vars, clauses, weighted)
            result = minimize_weighted_sum(build(num_vars, clauses), weighted)
            if expected is None:
                assert not result.feasible
            else:
                assert result.feasible and result.proven_optimal
                assert result.cost == expected

    def test_rejects_bad_weights(self):
        cnf = build(1, [[1]])
        with pytest.raises(ValueError):
            minimize_weighted_sum(cnf, [(1, 0)])
        with pytest.raises(ValueError):
            minimize_weighted_sum(cnf, [(1, -3)])

    def test_empty_objective(self):
        cnf = build(1, [[1]])
        result = minimize_weighted_sum(cnf, [])
        assert result.feasible and result.cost == 0


class TestStratifiedPath:
    def test_bmo_weights_proven_optimal(self):
        # Weights 100 and 1 with few literals: BMO condition holds.
        cnf = build(3, [[1, 2], [2, 3]])
        result = minimize_weighted_sum(
            cnf, [(1, 100), (2, 100), (3, 1)]
        )
        assert result.feasible
        assert result.proven_optimal
        # Optimum: x2 true alone costs 100; x1+x3 costs 101; so 100.
        assert result.cost == 100

    def test_stratified_matches_brute_force_when_bmo(self):
        rng = random.Random(23)
        for _ in range(15):
            num_vars = rng.randint(2, 5)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, num_vars)
                 for _ in range(rng.randint(1, 3))]
                for _ in range(rng.randint(1, 10))
            ]
            # Two strata satisfying the BMO condition by construction.
            variables = rng.sample(
                range(1, num_vars + 1), rng.randint(1, num_vars)
            )
            weighted = [
                (v, 1000 if i % 2 == 0 else 1)
                for i, v in enumerate(variables)
            ]
            expected = brute_force_weighted(num_vars, clauses, weighted)
            result = minimize_weighted_sum(build(num_vars, clauses), weighted)
            if expected is None:
                assert not result.feasible
            else:
                assert result.feasible
                assert result.cost == expected

    def test_non_bmo_is_upper_bound(self):
        # Weights 20/17/17: stratification is heuristic; flag must say so.
        cnf = build(3, [[1, 2, 3]])
        result = minimize_weighted_sum(
            cnf, [(-1, 20), (-2, 17), (-3, 17)]
        )
        assert result.feasible
        expected = brute_force_weighted(
            3, [[1, 2, 3]], [(-1, 20), (-2, 17), (-3, 17)]
        )
        assert result.cost >= expected  # upper bound
        if result.cost != expected:
            assert not result.proven_optimal
