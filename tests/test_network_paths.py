"""Tests for the graph queries: chains, reachable, between, path interiors."""

from __future__ import annotations

import pytest

from repro.network.paths import (
    TTDPathIndex,
    chains,
    interior_segments_of_paths,
    reachable,
    segment_distances,
)
from repro.network.topology import NetworkError


class TestChains:
    def test_chains_of_one_are_segments(self, micro_net):
        result = chains(micro_net, 1)
        assert result == [(s.id,) for s in micro_net.segments]

    def test_chains_of_two_on_line(self, micro_net):
        result = chains(micro_net, 2)
        # 6 segments in a line -> 5 adjacent pairs.
        assert len(result) == 5
        for chain in result:
            assert chain[1] in micro_net.seg_neighbours[chain[0]]

    def test_chains_canonical_orientation(self, micro_net):
        for chain in chains(micro_net, 3):
            assert chain <= tuple(reversed(chain))

    def test_chains_through_switch(self, loop_net):
        result = chains(loop_net, 2)
        # At p1 three segments meet: all three pairs are chains.
        p1 = loop_net.vertex_of_node("p1")
        incident = loop_net.segments_at[p1]
        for a in incident:
            for b in incident:
                if a < b:
                    assert (min((a, b), (b, a)),) is not None
                    assert (a, b) in result or (b, a) in result

    def test_chains_no_vertex_repetition(self, loop_net):
        # The loop has a cycle of 4 segments; a chain of 4 closing the cycle
        # would revisit its starting vertex and must be excluded.
        for chain in chains(loop_net, 4):
            vertices = []
            for seg_id in chain:
                seg = loop_net.segments[seg_id]
                vertices.extend([seg.u, seg.v])
            # A path of n segments touches n+1 distinct vertices.
            assert len(set(vertices)) == len(chain) + 1

    def test_invalid_length(self, micro_net):
        with pytest.raises(NetworkError):
            chains(micro_net, 0)


class TestReachable:
    def test_includes_source(self, micro_net):
        assert 0 in reachable(micro_net, 0, 0)
        assert reachable(micro_net, 0, 0) == [0]

    def test_radius_one(self, micro_net):
        result = set(reachable(micro_net, 2, 1))
        assert result == {2} | set(micro_net.seg_neighbours[2])

    def test_full_radius_covers_everything(self, micro_net):
        assert len(reachable(micro_net, 0, 10)) == micro_net.num_segments

    def test_negative_radius_rejected(self, micro_net):
        with pytest.raises(NetworkError):
            reachable(micro_net, 0, -1)

    def test_distances_match_reachable(self, loop_net):
        for source in range(loop_net.num_segments):
            dist = segment_distances(loop_net, source)
            for radius in range(4):
                expected = {
                    e for e in range(loop_net.num_segments)
                    if 0 <= dist[e] <= radius
                }
                assert set(reachable(loop_net, source, radius)) == expected


class TestBetween:
    def test_between_adjacent(self, micro_net):
        index = TTDPathIndex(micro_net)
        ids = micro_net.track_segments("staA")
        joint = set(index.between(ids[0], ids[1]))
        seg_a, seg_b = micro_net.segments[ids[0]], micro_net.segments[ids[1]]
        assert joint == ({seg_a.u, seg_a.v} & {seg_b.u, seg_b.v})

    def test_between_is_symmetric(self, micro_net):
        index = TTDPathIndex(micro_net)
        ids = micro_net.track_segments("mid")
        assert index.between(ids[0], ids[1]) == index.between(ids[1], ids[0])

    def test_between_same_segment_empty(self, micro_net):
        index = TTDPathIndex(micro_net)
        assert index.between(0, 0) == []

    def test_between_rejects_cross_ttd(self, micro_net):
        index = TTDPathIndex(micro_net)
        a = micro_net.track_segments("staA")[0]
        b = micro_net.track_segments("staB")[0]
        with pytest.raises(NetworkError):
            index.between(a, b)

    def test_multi_segment_ttd_ordering(self, micro_line):
        from repro.network.discretize import DiscreteNetwork

        net = DiscreteNetwork(micro_line, 0.25)  # 4 segments per track
        index = TTDPathIndex(net)
        ordered = index.ordered_segments("TTD2")
        assert len(ordered) == 4
        # Path order: consecutive entries adjacent.
        for a, b in zip(ordered, ordered[1:]):
            assert b in net.seg_neighbours[a]
        ends = [ordered[0], ordered[-1]]
        count = len(index.between(ends[0], ends[1]))
        assert count == 3  # three internal joints in a 4-segment path


class TestPathInteriors:
    def test_adjacent_segments_have_empty_interior(self, micro_net):
        assert interior_segments_of_paths(micro_net, 0, 1, 2) == set()

    def test_line_interior(self, micro_net):
        # Segments 0 and 3 on a line: interior must be {1, 2}.
        ids = [s.id for s in micro_net.segments]
        ordered = micro_net.track_segments("staA") + micro_net.track_segments(
            "mid"
        ) + micro_net.track_segments("staB")
        e, f = ordered[0], ordered[3]
        interior = interior_segments_of_paths(micro_net, e, f, 4)
        assert interior == {ordered[1], ordered[2]}

    def test_max_edges_bounds_search(self, micro_net):
        ordered = micro_net.track_segments("staA") + micro_net.track_segments(
            "mid"
        ) + micro_net.track_segments("staB")
        e, f = ordered[0], ordered[3]
        # A path e..f needs 4 edges; with max 3 there is none.
        assert interior_segments_of_paths(micro_net, e, f, 3) == set()

    def test_same_segment_empty(self, micro_net):
        assert interior_segments_of_paths(micro_net, 2, 2, 5) == set()

    def test_parallel_paths_union(self, loop_net):
        # From staA's inner segment to staB's inner segment there are two
        # routes (up and down); both interiors must be included.
        sta_a = loop_net.track_segments("staA")[1]
        sta_b = loop_net.track_segments("staB")[0]
        interior = interior_segments_of_paths(loop_net, sta_a, sta_b, 6)
        up = set(loop_net.track_segments("up"))
        down = set(loop_net.track_segments("down"))
        assert up <= interior
        assert down <= interior
