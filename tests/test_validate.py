"""Tests for the independent solution validator.

These tests corrupt known-good solutions in specific ways and check the
validator reports exactly the intended violation class.
"""

from __future__ import annotations

import dataclasses

from repro.encoding.decode import Solution
from repro.encoding.encoder import EtcsEncoding
from repro.encoding.validate import validate_solution
from repro.sat import SolveResult


def build_solution(net, schedule, r_t=0.5):
    encoding = EtcsEncoding(net, schedule, r_t).build()
    solver = encoding.cnf.to_solver()
    assert solver.solve() is SolveResult.SAT
    solution = encoding.decode({lit for lit in solver.model() if lit > 0})
    assert validate_solution(encoding, solution) == []
    return encoding, solution


def with_steps(solution, train_index, new_steps):
    trajectories = list(solution.trajectories)
    trajectories[train_index] = dataclasses.replace(
        trajectories[train_index], steps=new_steps
    )
    return Solution(
        layout=solution.layout,
        trajectories=trajectories,
        makespan=solution.makespan,
        t_max=solution.t_max,
    )


class TestFootprintChecks:
    def test_wrong_footprint_size(self, micro_net, single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        steps = list(solution.trajectories[0].steps)
        steps[0] = steps[0] | {5}  # second segment for a 1-segment train
        problems = validate_solution(
            encoding, with_steps(solution, 0, steps)
        )
        assert any("footprint" in p for p in problems)

    def test_disconnected_chain(self, micro_net):
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        run = TrainRun(Train("T", 900, 120), "A", "B", 0.0, 4.5)
        encoding, solution = build_solution(micro_net, Schedule([run], 5.0))
        steps = list(solution.trajectories[0].steps)
        # Replace a valid 2-chain with two far-apart segments.
        steps[2] = frozenset({0, 5})
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("connected chain" in p for p in problems)


class TestPresenceChecks:
    def test_present_before_departure(self, micro_net):
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        run = TrainRun(Train("T", 100, 120), "A", "B", 1.0, 4.5)
        encoding, solution = build_solution(micro_net, Schedule([run], 5.0))
        steps = list(solution.trajectories[0].steps)
        steps[0] = frozenset({2})
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("before departure" in p for p in problems)

    def test_absent_at_departure(self, micro_net, single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        steps = list(solution.trajectories[0].steps)
        steps[0] = frozenset()
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("absent at its departure" in p for p in problems)

    def test_departure_away_from_start(self, micro_net,
                                       single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        steps = list(solution.trajectories[0].steps)
        mid = micro_net.track_segments("mid")[0]
        steps[0] = frozenset({mid})
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("does not touch start" in p for p in problems)

    def test_reentry_after_leaving(self, micro_net, single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        goal = set(encoding.runs[0].goal_segments)
        boundary = sorted(goal & micro_net.boundary_segments())[0]
        start = sorted(
            set(encoding.runs[0].start_segments)
            - micro_net.boundary_segments()
        )[0]
        mid = micro_net.track_segments("mid")[1]
        steps = [frozenset()] * encoding.t_max
        steps[0] = frozenset({start})
        steps[1] = frozenset({mid})
        steps[2] = frozenset({boundary})  # arrives and leaves via B
        steps[encoding.t_max - 1] = frozenset({boundary})  # re-enters!
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("re-entered" in p for p in problems)

    def test_leaving_before_goal(self, micro_net, single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        steps = [frozenset()] * encoding.t_max
        steps[0] = solution.trajectories[0].steps[0]
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("before visiting its goal" in p for p in problems)

    def test_vanishing_without_boundary_access(self, micro_net,
                                               single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        steps = list(solution.trajectories[0].steps)
        goal_inner = [
            e for e in encoding.runs[0].goal_segments
            if e not in micro_net.boundary_segments()
        ][0]
        arrival = solution.trajectories[0].arrival_step
        steps[arrival] = frozenset({goal_inner})
        for t in range(arrival + 1, encoding.t_max):
            steps[t] = frozenset()
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("without boundary access" in p for p in problems)


class TestMovementChecks:
    def test_teleport_detected(self, micro_net, single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        steps = list(solution.trajectories[0].steps)
        start = set(encoding.runs[0].start_segments)
        goal = set(encoding.runs[0].goal_segments)
        steps[0] = frozenset({sorted(start)[0]})
        steps[1] = frozenset({sorted(goal)[-1]})  # 5+ hops at speed 2
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("no successor within speed" in p for p in problems)


class TestInteractionChecks:
    def test_shared_vss_detected(self, loop_net, crossing_schedule):
        encoding, solution = build_solution(loop_net, crossing_schedule)
        # Put train 1 exactly on train 0's position at some present step.
        t = next(
            t for t in range(encoding.t_max)
            if solution.trajectories[0].steps[t]
            and solution.trajectories[1].steps[t]
        )
        steps = list(solution.trajectories[1].steps)
        steps[t] = solution.trajectories[0].steps[t]
        problems = validate_solution(encoding, with_steps(solution, 1, steps))
        assert any("share VSS section" in p for p in problems)

    def test_swap_detected(self, micro_net, crossing_schedule):
        encoding, solution = build_solution(micro_net, crossing_schedule)
        # Construct an explicit swap at steps 4/5 on the middle track.
        mid = micro_net.track_segments("mid")
        steps_a = list(solution.trajectories[0].steps)
        steps_b = list(solution.trajectories[1].steps)
        steps_a[4], steps_a[5] = frozenset({mid[0]}), frozenset({mid[1]})
        steps_b[4], steps_b[5] = frozenset({mid[1]}), frozenset({mid[0]})
        corrupted = with_steps(
            with_steps(solution, 0, steps_a), 1, steps_b
        )
        problems = validate_solution(encoding, corrupted)
        assert any("swapped positions" in p for p in problems)


class TestScheduleChecks:
    def test_missed_goal(self, micro_net, single_train_schedule):
        encoding, solution = build_solution(micro_net, single_train_schedule)
        start = solution.trajectories[0].steps[0]
        steps = [start] * encoding.t_max  # parked forever at the start
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("goal not reached" in p for p in problems)

    def test_missed_stop(self, micro_net):
        from repro.trains.schedule import Schedule, Stop, TrainRun
        from repro.trains.train import Train

        micro_net.network.stations["M"] = ["mid"]
        run = TrainRun(
            Train("T", 100, 120), "A", "B", 0.0, 4.5,
            stops=(Stop("M", earliest_min=0.5, latest_min=1.0),),
        )
        encoding, solution = build_solution(micro_net, Schedule([run], 5.0))
        # Delay the mid visit beyond the window by parking at the start.
        steps = list(solution.trajectories[0].steps)
        steps[1] = steps[0]
        steps[2] = steps[0]
        problems = validate_solution(encoding, with_steps(solution, 0, steps))
        assert any("stop" in p for p in problems)
