"""Determinism and robustness of the parallel task layer.

Covers the end-to-end `parallel=` plumbing (verify/generate/optimize),
the batch runner (`repro.tasks.batch`), and the graceful-degradation
behaviour of the portfolio-routed optimisation descent.
"""

from __future__ import annotations

import pytest

from repro.logic import CNF, VarPool
from repro.opt import minimize_sum
from repro.sat import PortfolioMember, SolverConfig
from repro.sat.portfolio import fork_available
from repro.tasks import (
    BatchJob,
    generate_layout,
    optimize_schedule,
    run_batch,
    run_case_task,
    table1_jobs,
    verify_schedule,
)
from repro.tasks.batch import job_seed
from tests.test_portfolio_runner import slow_factory

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _verify_meta(result):
    return (
        result.satisfiable,
        result.num_sections,
        result.time_steps,
        result.variables,
        result.actual_vars,
        result.clauses,
    )


@needs_fork
class TestTaskDeterminism:
    """Same scenario + same `parallel` -> byte-identical decoded metadata."""

    def test_verify_parallel_is_reproducible(self, micro_net,
                                             crossing_schedule):
        first = verify_schedule(micro_net, crossing_schedule, 1.0, parallel=2)
        second = verify_schedule(micro_net, crossing_schedule, 1.0,
                                 parallel=2)
        assert _verify_meta(first) == _verify_meta(second)

    def test_generate_parallel_is_reproducible(self, micro_net,
                                               crossing_schedule):
        first = generate_layout(micro_net, crossing_schedule, 1.0, parallel=2)
        second = generate_layout(micro_net, crossing_schedule, 1.0,
                                 parallel=2)
        assert first.satisfiable == second.satisfiable
        assert first.objective_value == second.objective_value
        assert first.num_sections == second.num_sections
        assert first.time_steps == second.time_steps

    def test_parallel_metadata_matches_serial(self, micro_net,
                                              crossing_schedule):
        serial = verify_schedule(micro_net, crossing_schedule, 1.0)
        raced = verify_schedule(micro_net, crossing_schedule, 1.0, parallel=2)
        assert _verify_meta(raced) == _verify_meta(serial)

    def test_generate_parallel_matches_serial_objective(
        self, micro_net, crossing_schedule
    ):
        serial = generate_layout(micro_net, crossing_schedule, 1.0)
        raced = generate_layout(micro_net, crossing_schedule, 1.0, parallel=2)
        assert raced.satisfiable == serial.satisfiable
        assert raced.objective_value == serial.objective_value

    def test_optimize_parallel_matches_serial_objective(
        self, loop_net, crossing_schedule
    ):
        serial = optimize_schedule(loop_net, crossing_schedule, 1.0)
        raced = optimize_schedule(loop_net, crossing_schedule, 1.0,
                                  parallel=2)
        assert raced.satisfiable == serial.satisfiable
        assert raced.objective_value == serial.objective_value
        assert raced.portfolio is not None

    def test_verify_parallel_unsat_proof_checks(self, micro_net,
                                                crossing_schedule):
        result = verify_schedule(micro_net, crossing_schedule, 1.0,
                                 parallel=2, with_proof=True)
        assert not result.satisfiable  # opposing trains, single track
        assert result.proof_checked is True


class TestParallelOneIsSerial:
    """`parallel=1` must be exactly today's serial path: no portfolio."""

    def test_verify(self, micro_net, crossing_schedule):
        plain = verify_schedule(micro_net, crossing_schedule, 1.0)
        explicit = verify_schedule(micro_net, crossing_schedule, 1.0,
                                   parallel=1)
        assert explicit.portfolio is None
        assert _verify_meta(explicit) == _verify_meta(plain)

    def test_generate(self, micro_net, crossing_schedule):
        plain = generate_layout(micro_net, crossing_schedule, 1.0)
        explicit = generate_layout(micro_net, crossing_schedule, 1.0,
                                   parallel=1)
        assert explicit.portfolio is None
        assert explicit.objective_value == plain.objective_value


# --- batch runner ----------------------------------------------------------

def _square(x):
    return x * x


def _boom(message="boom"):
    raise ValueError(message)


def _report_seed(x, seed=None):
    return (x, seed)


class TestRunBatch:
    def test_serial_executes_all_jobs(self):
        jobs = [BatchJob(f"sq/{i}", _square, args=(i,)) for i in range(5)]
        report = run_batch(jobs, processes=1)
        assert report.ok
        assert report.values() == [0, 1, 4, 9, 16]
        assert report.value_of("sq/3") == 9

    def test_failures_are_captured_not_raised(self):
        jobs = [
            BatchJob("good", _square, args=(2,)),
            BatchJob("bad", _boom, args=("kaput",)),
        ]
        report = run_batch(jobs, processes=1)
        assert not report.ok
        [failure] = report.failures()
        assert failure.name == "bad"
        assert "kaput" in failure.error
        assert report.value_of("good") == 4

    def test_seed_kwarg_injects_deterministic_seeds(self):
        jobs = [
            BatchJob(f"j{i}", _report_seed, args=(i,), seed_kwarg="seed")
            for i in range(3)
        ]
        first = run_batch(jobs, processes=1, seed=7)
        second = run_batch(jobs, processes=1, seed=7)
        other = run_batch(jobs, processes=1, seed=8)
        assert [r.seed for r in first.results] == [
            job_seed(7, i, f"j{i}") for i in range(3)
        ]
        assert first.values() == second.values()
        assert [r.seed for r in other.results] != [
            r.seed for r in first.results
        ]

    @needs_fork
    def test_pool_matches_serial(self):
        jobs = [BatchJob(f"sq/{i}", _square, args=(i,)) for i in range(6)]
        serial = run_batch(jobs, processes=1)
        pooled = run_batch(jobs, processes=3)
        assert pooled.values() == serial.values()
        assert pooled.processes == 3
        assert not pooled.serial_fallback

    @needs_fork
    def test_pool_captures_worker_exceptions(self):
        jobs = [
            BatchJob("ok", _square, args=(3,)),
            BatchJob("fail", _boom),
        ]
        report = run_batch(jobs, processes=2)
        assert report.value_of("ok") == 9
        [failure] = report.failures()
        assert failure.name == "fail"


class TestTable1Jobs:
    def test_three_tasks_per_study(self):
        jobs = table1_jobs(skip_slow=True)
        names = [job.name for job in jobs]
        assert len(names) == len(set(names))
        assert len(names) % 3 == 0
        for name in names:
            study, task = name.split("/")
            assert task in {"verification", "generation", "optimization"}

    def test_run_case_task_rejects_unknown_task(self):
        with pytest.raises(ValueError):
            run_case_task("running_example", "translation")


# --- descent degradation (satellite: timeout -> best-known bound) ----------

def _descent_cnf():
    """4 selectable literals, at least two must be true (minimum cost 2)."""
    cnf = CNF(VarPool())
    lits = [cnf.pool.var(("x", i)) for i in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            for k in range(j + 1, 4):
                cnf.add([lits[i], lits[j], lits[k]])
    return cnf, lits


@needs_fork
class TestDescentDegradation:
    def test_probe_timeout_keeps_best_known_bound(self):
        cnf, lits = _descent_cnf()
        slow = [
            PortfolioMember("slow-a", SolverConfig(random_seed=1),
                            solver_factory=slow_factory),
            PortfolioMember("slow-b", SolverConfig(random_seed=2),
                            solver_factory=slow_factory),
        ]
        result = minimize_sum(
            cnf, lits, strategy="linear", parallel=2,
            portfolio_members=slow, descent_timeout_s=0.1,
        )
        # The initial feasibility race has no deadline, so a model exists;
        # every bounded probe times out, so the bound is never tightened
        # nor proven, and the best-known model survives.
        assert result.feasible
        assert not result.proven_optimal
        assert result.cost is not None and result.cost >= 2
        assert result.portfolio["processes"] == 2

    def test_parallel_descent_matches_serial_optimum(self):
        cnf, lits = _descent_cnf()
        serial = minimize_sum(cnf, lits, strategy="linear")
        for strategy in ("linear", "binary"):
            raced = minimize_sum(cnf, lits, strategy=strategy, parallel=2)
            assert raced.feasible
            assert raced.proven_optimal
            assert raced.cost == serial.cost == 2
