"""Tests for small paths not covered elsewhere: error plumbing, reprs,
the checked-decode guard."""

from __future__ import annotations

import pytest

from repro.encoding.encoder import EtcsEncoding
from repro.sat import SolveResult
from repro.sat.clause import Clause
from repro.sat.types import InvalidLiteralError, SatError
from repro.tasks.common import SolutionInvalidError, checked_decode


class TestCheckedDecodeGuard:
    def test_invalid_solutions_raise_loudly(self, micro_net,
                                            single_train_schedule,
                                            monkeypatch):
        """If the validator ever flags a decoded SAT model, the task layer
        must raise instead of returning a bogus result."""
        encoding = EtcsEncoding(micro_net, single_train_schedule, 0.5).build()
        solver = encoding.cnf.to_solver()
        assert solver.solve() is SolveResult.SAT
        true_vars = {lit for lit in solver.model() if lit > 0}

        import repro.tasks.common as common

        monkeypatch.setattr(
            common, "validate_solution",
            lambda enc, sol: ["injected violation"],
        )
        with pytest.raises(SolutionInvalidError, match="injected violation"):
            checked_decode(encoding, true_vars)

    def test_valid_solutions_pass_through(self, micro_net,
                                          single_train_schedule):
        encoding = EtcsEncoding(micro_net, single_train_schedule, 0.5).build()
        solver = encoding.cnf.to_solver()
        solver.solve()
        solution = checked_decode(
            encoding, {lit for lit in solver.model() if lit > 0}
        )
        assert solution.trajectories[0].arrival_step is not None


class TestErrorHierarchy:
    def test_invalid_literal_is_sat_error(self):
        assert issubclass(InvalidLiteralError, SatError)

    def test_solution_invalid_is_assertion(self):
        assert issubclass(SolutionInvalidError, AssertionError)


class TestReprs:
    def test_clause_repr(self):
        assert "problem" in repr(Clause([1, -2]))
        assert "learned" in repr(Clause([1], learned=True))

    def test_clause_iteration(self):
        clause = Clause([3, -1, 2])
        assert list(clause) == [3, -1, 2]
        assert len(clause) == 3

    def test_greedy_result_defaults(self):
        from repro.baseline.greedy import GreedyResult

        result = GreedyResult(success=False, reason="x")
        assert result.deadlock_step is None
        assert result.trajectories == []

    def test_case_study_fields(self):
        from repro.casestudies import all_case_studies

        for study in all_case_studies():
            assert study.r_s_km > 0 and study.r_t_min > 0
            net = study.discretize()
            assert net.r_s_km == study.r_s_km
