"""Unit and integration tests for the hot-path phase profiler."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    PHASES,
    PhaseProfiler,
    extract_profile,
    format_top,
    merge_profiles,
    profile_summary,
)
from repro.sat.solver import Solver
from repro.sat.types import SolveResult, SolverConfig


def _php_clauses(holes: int) -> tuple[int, list[list[int]]]:
    """Pigeonhole PHP(holes+1, holes): small but conflict-rich UNSAT."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestPhaseProfiler:
    def test_counts_every_op_times_only_sampled(self):
        prof = PhaseProfiler(sample_period=4)
        for __ in range(10):
            prof.run("propagate", lambda: None)
            prof.on_conflict()
            prof.run("analyze", lambda: None)
        counters = prof.as_counters()
        assert counters["propagate.count"] == 10
        assert counters["analyze.count"] == 10
        # 1 initial interval + 10 conflicts; every 4th is sampled, plus
        # the always-sampled first interval.
        assert counters["intervals"] == 11
        assert counters["sampled_intervals"] == counters["intervals"] // 4 + 1
        assert counters["propagate.sampled"] < counters["propagate.count"]
        assert counters["propagate.time_s"] >= 0.0

    def test_run_returns_the_callables_value(self):
        prof = PhaseProfiler()
        assert prof.run("decide", lambda: 42) == 42
        assert prof.run("decide", lambda a, b: a + b, 1, 2) == 3

    def test_every_phase_key_is_exported(self):
        prof = PhaseProfiler()
        counters = prof.as_counters()
        for phase in PHASES:
            assert f"{phase}.count" in counters
            assert f"{phase}.sampled" in counters
            assert f"{phase}.time_s" in counters

    def test_merge_profiles_sums(self):
        a = {"propagate.count": 3, "propagate.time_s": 0.5}
        b = {"propagate.count": 2, "propagate.time_s": 0.25,
             "decide.count": 7}
        merged = merge_profiles([a, b])
        assert merged["propagate.count"] == 5
        assert merged["propagate.time_s"] == 0.75
        assert merged["decide.count"] == 7

    def test_summary_shares_sum_to_one(self):
        prof = PhaseProfiler(sample_period=1)
        for __ in range(50):
            prof.run("propagate", lambda: sum(range(200)))
            prof.on_conflict()
            prof.run("analyze", lambda: sum(range(50)))
        summary = profile_summary(prof.as_counters())
        shares = sum(
            data["share"] for data in summary["phases"].values()
        )
        assert shares == pytest.approx(1.0)
        assert summary["dominant"] in PHASES


class TestSolverIntegration:
    def test_profile_off_by_default(self):
        solver = Solver()
        num_vars, clauses = _php_clauses(4)
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT
        assert solver.stats.profile == {}
        assert not any(
            key.startswith("profile.")
            for key in solver.stats.as_dict()
        )

    def test_profile_counters_ride_in_stats(self):
        solver = Solver(SolverConfig(profile=True))
        num_vars, clauses = _php_clauses(5)
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT
        stats = solver.stats.as_dict()
        assert stats["profile.propagate.count"] > 0
        assert stats["profile.intervals"] == solver.stats.conflicts + 1
        # Attribution covers the conflict phases actually exercised.
        summary = profile_summary(extract_profile(
            {f"solver.{k}": v for k, v in stats.items()}
        ))
        assert summary["phases"]["propagate"]["count"] > 0
        assert sum(
            d["share"] for d in summary["phases"].values()
        ) == pytest.approx(1.0)

    def test_verdict_identical_with_and_without_profile(self):
        num_vars, clauses = _php_clauses(4)
        outcomes = []
        for profile in (False, True):
            solver = Solver(SolverConfig(profile=profile))
            solver.ensure_var(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            verdict = solver.solve()
            outcomes.append(
                (verdict, solver.stats.conflicts, solver.stats.decisions)
            )
        # Profiling must not perturb the search trajectory at all.
        assert outcomes[0] == outcomes[1]

    def test_per_solve_delta_never_double_counts(self):
        """Satellite: ``last_stats`` deltas sum to the lifetime stats."""
        solver = Solver(SolverConfig(profile=True))
        num_vars, clauses = _php_clauses(4)
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        deltas = []
        for __ in range(3):
            solver.solve()
            deltas.append(solver.last_stats.as_dict())
        lifetime = solver.stats.as_dict()
        summed: dict = {}
        for delta in deltas:
            for key, value in delta.items():
                if isinstance(value, (int, float)):
                    summed[key] = summed.get(key, 0) + value
        for key, value in lifetime.items():
            if key.startswith("max_") or not isinstance(
                value, (int, float)
            ):
                continue
            if key == "solve_time":
                assert summed[key] == pytest.approx(value, rel=1e-6)
            else:
                assert summed[key] == value, key


class TestMetricsAbsorption:
    def test_profile_keys_keep_their_namespace(self):
        solver = Solver(SolverConfig(profile=True))
        num_vars, clauses = _php_clauses(5)
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve()
        reg = MetricsRegistry()
        reg.absorb_solver_stats(solver.stats.as_dict())
        out = reg.as_dict()
        assert "profile.propagate.count" in out
        assert "solver.profile.propagate.count" not in out
        assert out["solver.conflicts"] == solver.stats.conflicts
        assert out["profile.props_per_s"] > 0
        assert out["profile.conflicts_per_s"] > 0

    def test_format_top_names_dominant_phase(self):
        solver = Solver(SolverConfig(profile=True))
        num_vars, clauses = _php_clauses(5)
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        solver.solve()
        reg = MetricsRegistry()
        reg.absorb_solver_stats(solver.stats.as_dict())
        rendered = format_top(reg.as_dict())
        assert "dominant phase:" in rendered
        assert "100.0%" in rendered

    def test_format_top_without_profile_data(self):
        assert "no profile data" in format_top({"solver.conflicts": 5})


class TestForkMerge:
    def test_portfolio_merges_member_profiles(self):
        from repro.sat.portfolio import diversified_members, solve_portfolio

        num_vars, clauses = _php_clauses(5)
        members = diversified_members(2, base=SolverConfig(profile=True))
        result = solve_portfolio(
            num_vars, clauses, members=members, processes=2
        )
        assert result.verdict is SolveResult.UNSAT
        if result.stats is None or result.stats.serial_fallback:
            pytest.skip("no fork available on this platform")
        merged = result.stats.merged_counters()
        assert merged.get("profile.propagate.count", 0) > 0
        # Finished members each contribute their intervals counter.
        finished = [r for r in result.stats.workers if r.finished]
        assert merged["profile.intervals"] >= len(finished)

    def test_lazy_verification_profiles_when_asked(self, micro_net,
                                                  single_train_schedule):
        from repro.encoding.lazy import solve_lazy_verification
        from repro.tasks.common import build_encoding

        encoding = build_encoding(
            micro_net, single_train_schedule, 1.0, None, lazy=True
        )
        outcome = solve_lazy_verification(encoding, profile=True)
        assert any(
            key.startswith("profile.") for key in outcome.solver_stats
        )

    def test_verify_schedule_profile_flag(self, micro_net,
                                          single_train_schedule):
        from repro.tasks.verification import verify_schedule

        result = verify_schedule(
            micro_net, single_train_schedule, 1.0, profile=True
        )
        assert any(
            key.startswith("profile.") for key in result.metrics
        )
        plain = verify_schedule(micro_net, single_train_schedule, 1.0)
        assert not any(
            key.startswith("profile.") for key in plain.metrics
        )
        assert plain.satisfiable == result.satisfiable
