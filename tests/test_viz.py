"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

from repro.encoding.encoder import EtcsEncoding
from repro.network.sections import VSSLayout
from repro.sat import SolveResult
from repro.tasks import verify_schedule
from repro.viz import (
    format_table1,
    format_task_result,
    render_layout,
    render_network_summary,
    render_spacetime,
)


def solved(net, schedule, r_t=0.5):
    encoding = EtcsEncoding(net, schedule, r_t).build()
    solver = encoding.cnf.to_solver()
    assert solver.solve() is SolveResult.SAT
    return encoding.decode({lit for lit in solver.model() if lit > 0})


class TestRenderLayout:
    def test_pure_layout_has_no_bars(self, micro_net):
        text = render_layout(VSSLayout.pure_ttd(micro_net))
        assert "|" not in text
        assert "3 sections" in text

    def test_added_border_shows_bar(self, micro_net):
        free = micro_net.free_border_candidates()
        layout = VSSLayout(
            micro_net, set(micro_net.forced_borders) | {free[0]}
        )
        text = render_layout(layout)
        assert text.count("|") == 1
        assert "4 sections" in text

    def test_every_ttd_listed(self, loop_net):
        text = render_layout(VSSLayout.pure_ttd(loop_net))
        for ttd in loop_net.ttd_segments:
            assert ttd in text


class TestRenderNetworkSummary:
    def test_mentions_counts_and_stations(self, micro_net):
        text = render_network_summary(micro_net)
        assert "6 segments" in text
        assert "3 TTD sections" in text
        assert "A ->" in text or "A -" in text


class TestRenderSpacetime:
    def test_one_row_per_step(self, micro_net, single_train_schedule):
        solution = solved(micro_net, single_train_schedule)
        text = render_spacetime(micro_net, solution)
        lines = text.splitlines()
        assert len(lines) == solution.t_max + 1  # header + steps

    def test_train_symbol_appears(self, micro_net, single_train_schedule):
        solution = solved(micro_net, single_train_schedule)
        text = render_spacetime(micro_net, solution)
        assert "T" in text.splitlines()[1]  # present at step 0

    def test_track_names_in_header(self, micro_net, single_train_schedule):
        solution = solved(micro_net, single_train_schedule)
        header = render_spacetime(micro_net, solution).splitlines()[0]
        assert "mid" in header


class TestFormatTable:
    def test_single_row(self, micro_net, single_train_schedule):
        result = verify_schedule(micro_net, single_train_schedule, 0.5)
        row = format_task_result(result)
        assert "verification" in row
        assert "Yes" in row

    def test_unsat_row_has_dash(self, micro_net):
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        result = verify_schedule(micro_net, Schedule([run], 5.0), 0.5)
        row = format_task_result(result)
        assert "No" in row
        assert "-" in row

    def test_full_table(self, micro_net, single_train_schedule):
        result = verify_schedule(micro_net, single_train_schedule, 0.5)
        table = format_table1([("Micro (r_t = 0.5, r_s = 0.5)", [result])])
        lines = table.splitlines()
        assert "Task" in lines[0]
        assert "Micro" in lines[2]
        assert "verification" in lines[3]


class TestRenderTimetable:
    def test_single_train_events(self, micro_net, single_train_schedule):
        from repro.viz import render_timetable, station_events

        solution = solved(micro_net, single_train_schedule)
        text = render_timetable(micro_net, solution, 0.5)
        assert "train T" in text
        assert "dep" in text and "A" in text
        assert "arr" in text and "B" in text

    def test_station_events_ordered(self, micro_net, single_train_schedule):
        from repro.viz import station_events

        solution = solved(micro_net, single_train_schedule)
        events = station_events(
            micro_net, solution.trajectories[0]
        )
        steps = [step for step, __ in events]
        assert steps == sorted(steps)
        assert events[0][1] == "A"
        assert events[-1][1] == "B"

    def test_time_formatting(self):
        from repro.viz.timetable import _format_time

        assert _format_time(0, 0.5) == "0:00"
        assert _format_time(7, 0.5) == "0:03:30"
        assert _format_time(10, 0.5) == "0:05"
        assert _format_time(25, 5.0) == "2:05"

    def test_running_example_matches_fig2_style(self):
        from repro.casestudies.running_example import running_example
        from repro.tasks import optimize_schedule
        from repro.viz import render_timetable

        study = running_example()
        net = study.discretize()
        result = optimize_schedule(net, study.schedule, study.r_t_min)
        text = render_timetable(net, result.solution, study.r_t_min)
        for name in "1234":
            assert f"train {name}" in text
