"""Tests for the Boolean formula AST."""

from __future__ import annotations

import itertools

import pytest

from repro.logic import And, FALSE, Iff, Implies, Not, Or, TRUE, Var


def assignments(variables):
    for bits in itertools.product([False, True], repeat=len(variables)):
        yield dict(zip(variables, bits))


class TestConstruction:
    def test_operator_overloading(self):
        a, b = Var(1), Var(2)
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)
        assert isinstance(a >> b, Implies)

    def test_nested_ands_flatten(self):
        a, b, c = Var(1), Var(2), Var(3)
        formula = (a & b) & c
        assert len(formula.children) == 3

    def test_nested_ors_flatten(self):
        a, b, c = Var(1), Var(2), Var(3)
        formula = a | (b | c)
        assert len(formula.children) == 3

    def test_var_rejects_zero(self):
        with pytest.raises(ValueError):
            Var(0)

    def test_atoms(self):
        a, b, c = Var(1), Var(-2), Var(3)
        formula = Iff(a & b, Implies(c, a))
        assert formula.atoms() == {1, 2, 3}


class TestEvaluation:
    def test_constants(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_negative_literal(self):
        assert Var(-1).evaluate({1: False}) is True
        assert Var(-1).evaluate({1: True}) is False

    def test_implies_truth_table(self):
        a, b = Var(1), Var(2)
        formula = a >> b
        expected = {(False, False): True, (False, True): True,
                    (True, False): False, (True, True): True}
        for (va, vb), result in expected.items():
            assert formula.evaluate({1: va, 2: vb}) is result

    def test_iff_truth_table(self):
        formula = Iff(Var(1), Var(2))
        for assignment in assignments([1, 2]):
            assert formula.evaluate(assignment) == (
                assignment[1] == assignment[2]
            )

    def test_de_morgan_holds(self):
        a, b = Var(1), Var(2)
        lhs = ~(a & b)
        rhs = ~a | ~b
        for assignment in assignments([1, 2]):
            assert lhs.evaluate(assignment) == rhs.evaluate(assignment)

    def test_empty_and_or(self):
        assert And().evaluate({}) is True
        assert Or().evaluate({}) is False

    def test_repr_smoke(self):
        formula = Iff(Var(1) & Var(2), ~Var(3))
        assert "Iff" in repr(formula)
        assert "TRUE" == repr(TRUE)
