"""Unit tests for the parallel portfolio runner (repro.sat.portfolio)."""

from __future__ import annotations

import time

import pytest

from repro.sat import (
    PortfolioDisagreementError,
    PortfolioMember,
    Solver,
    SolveResult,
    SolverConfig,
    diversified_members,
    solve_portfolio,
)
from repro.sat.portfolio import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)

SAT_CNF = (3, [[1, 2], [-1, 3], [-2, -3]])
UNSAT_CNF = (2, [[1, 2], [1, -2], [-1, 2], [-1, -2]])


# --- helpers for failure injection (module-level: fork-safe) ---------------

def crashing_factory(config):
    raise RuntimeError("injected portfolio worker crash")


def slow_factory(config):
    time.sleep(0.8)
    return Solver(config)


class _LyingSolver(Solver):
    """Claims SAT without solving — simulates an unsound member."""

    def solve(self, assumptions=()):
        num_vars = self.num_vars
        self._k = None  # lie through the legacy state, whatever the kernel
        self._model = [0] + [1] * num_vars
        return SolveResult.SAT


def lying_factory(config):
    return _LyingSolver(config)


def crashing_member(name="crash"):
    return PortfolioMember(name, SolverConfig(),
                           solver_factory=crashing_factory)


class TestDiversifiedMembers:
    def test_member_zero_is_the_unmodified_base(self):
        base = SolverConfig(var_decay=0.9, random_seed=42)
        members = diversified_members(5, base=base)
        assert members[0].name == "base"
        assert members[0].config == base
        assert not members[0].presimplify

    def test_members_are_actually_diverse(self):
        members = diversified_members(6)
        configs = [m.config for m in members]
        assert len({m.name for m in members}) == 6
        assert len({c.random_seed for c in configs}) == 6

    def test_recipe_list_cycles_for_large_n(self):
        members = diversified_members(12)
        assert len(members) == 12
        assert len({m.name for m in members}) == 12

    def test_rejects_empty_portfolio(self):
        with pytest.raises(ValueError):
            diversified_members(0)

    def test_every_member_is_sound(self):
        num_vars, clauses = UNSAT_CNF
        for member in diversified_members(8):
            solver = Solver(member.config)
            solver.ensure_var(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            assert solver.solve() is SolveResult.UNSAT, member.name


class TestSerialDegradation:
    def test_processes_one_matches_plain_solver(self):
        num_vars, clauses = SAT_CNF
        result = solve_portfolio(num_vars, clauses, processes=1)
        solver = Solver()
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.SAT
        assert result.verdict is SolveResult.SAT
        assert result.model == solver.model()
        assert result.stats.serial_fallback is False
        assert result.stats.winner == 0

    def test_single_member_runs_in_process(self):
        num_vars, clauses = UNSAT_CNF
        result = solve_portfolio(
            num_vars, clauses,
            members=[PortfolioMember("only", SolverConfig())],
            processes=4,
        )
        assert result.verdict is SolveResult.UNSAT


@needs_fork
class TestRace:
    def test_sat_with_model(self):
        num_vars, clauses = SAT_CNF
        result = solve_portfolio(num_vars, clauses, processes=3)
        assert result.verdict is SolveResult.SAT
        assert result
        true_set = result.true_set()
        for clause in clauses:
            assert any(
                lit in true_set if lit > 0 else abs(lit) not in true_set
                for lit in clause
            )

    def test_unsat(self):
        num_vars, clauses = UNSAT_CNF
        result = solve_portfolio(num_vars, clauses, processes=3)
        assert result.verdict is SolveResult.UNSAT
        assert result.model is None

    def test_unsat_core_under_assumptions(self):
        result = solve_portfolio(2, [[1, 2]], assumptions=[-1, -2],
                                 processes=2)
        assert result.verdict is SolveResult.UNSAT
        assert set(result.unsat_core) <= {-1, -2}

    def test_proof_ships_on_unsat(self):
        from repro.sat import check_rup_proof

        num_vars, clauses = UNSAT_CNF
        result = solve_portfolio(num_vars, clauses, processes=2,
                                 with_proof=True)
        assert result.verdict is SolveResult.UNSAT
        assert result.proof_steps is not None
        assert check_rup_proof(num_vars, clauses, result.proof_steps)

    def test_worker_reports_collected(self):
        num_vars, clauses = SAT_CNF
        result = solve_portfolio(num_vars, clauses, processes=2)
        stats = result.stats
        assert stats.processes == 2
        assert len(stats.workers) == 2
        assert stats.winner is not None
        assert stats.workers[stats.winner].finished
        merged = stats.merged_counters()
        assert merged.get("solve_calls", 0) >= 1


@needs_fork
class TestRobustness:
    def test_one_crashing_member_does_not_hang(self):
        num_vars, clauses = UNSAT_CNF
        members = [
            crashing_member(),
            PortfolioMember("base", SolverConfig()),
        ]
        result = solve_portfolio(num_vars, clauses, members=members,
                                 processes=2, timeout_s=30)
        assert result.verdict is SolveResult.UNSAT
        assert result.stats.winner == 1
        assert "crash" in result.stats.workers[0].error

    def test_all_crashing_members_fall_back_to_serial(self):
        num_vars, clauses = SAT_CNF
        members = [crashing_member("c1"), crashing_member("c2")]
        result = solve_portfolio(num_vars, clauses, members=members,
                                 processes=2, timeout_s=30)
        assert result.verdict is SolveResult.SAT
        assert result.stats.serial_fallback is True

    def test_timeout_returns_unknown(self):
        num_vars, clauses = SAT_CNF
        members = [
            PortfolioMember("slow-1", SolverConfig(),
                            solver_factory=slow_factory),
            PortfolioMember("slow-2", SolverConfig(),
                            solver_factory=slow_factory),
        ]
        start = time.perf_counter()
        result = solve_portfolio(num_vars, clauses, members=members,
                                 processes=2, timeout_s=0.15)
        assert result.verdict is SolveResult.UNKNOWN
        assert time.perf_counter() - start < 5.0

    def test_disagreement_is_detected(self):
        num_vars, clauses = UNSAT_CNF
        members = [
            PortfolioMember("slow-honest", SolverConfig(),
                            solver_factory=slow_factory),
            PortfolioMember("liar", SolverConfig(),
                            solver_factory=lying_factory),
        ]
        with pytest.raises(PortfolioDisagreementError):
            solve_portfolio(num_vars, clauses, members=members,
                            processes=2, timeout_s=30)


@needs_fork
class TestDeterminism:
    def test_sat_model_comes_from_the_primary_member(self):
        num_vars, clauses = SAT_CNF
        serial = solve_portfolio(num_vars, clauses, processes=1)
        for _ in range(3):
            raced = solve_portfolio(num_vars, clauses, processes=3)
            assert raced.model == serial.model

    def test_repeated_races_are_byte_identical(self):
        num_vars, clauses = SAT_CNF
        first = solve_portfolio(num_vars, clauses, processes=3)
        second = solve_portfolio(num_vars, clauses, processes=3)
        assert first.verdict == second.verdict
        assert first.model == second.model
