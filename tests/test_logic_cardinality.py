"""Tests for cardinality encodings: every encoding must admit exactly the
assignments its constraint describes (checked by model enumeration)."""

from __future__ import annotations

import math

import pytest

from repro.logic import (
    CNF,
    VarPool,
    at_least_k,
    at_least_one,
    at_most_k_sequential,
    at_most_one_commander,
    at_most_one_ladder,
    at_most_one_pairwise,
    exactly_k,
    exactly_one,
)
from repro.sat import SolveResult


def enumerate_models(cnf: CNF, variables: list[int]) -> set[tuple[bool, ...]]:
    solver = cnf.to_solver()
    found = set()
    while solver.solve() is SolveResult.SAT:
        model = tuple(bool(solver.model_value(v)) for v in variables)
        found.add(model)
        solver.add_clause(
            [-v if solver.model_value(v) else v for v in variables]
        )
    return found


def fresh(n: int) -> tuple[CNF, list[int]]:
    cnf = CNF(VarPool())
    return cnf, [cnf.pool.var(("x", i)) for i in range(n)]


AMO_ENCODERS = [
    at_most_one_pairwise, at_most_one_ladder, at_most_one_commander
]


class TestAtMostOne:
    @pytest.mark.parametrize("encoder", AMO_ENCODERS)
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7])
    def test_admits_exactly_amo_models(self, encoder, n):
        cnf, lits = fresh(n)
        encoder(cnf, lits)
        models = enumerate_models(cnf, lits)
        assert models == {
            m for m in models_universe(n) if sum(m) <= 1
        }

    @pytest.mark.parametrize("encoder", AMO_ENCODERS)
    def test_works_on_negated_literals(self, encoder):
        cnf, lits = fresh(4)
        encoder(cnf, [-lit for lit in lits])
        models = enumerate_models(cnf, lits)
        # at most one FALSE variable
        assert models == {m for m in models_universe(4) if sum(m) >= 3}

    def test_commander_rejects_tiny_groups(self):
        cnf, lits = fresh(3)
        with pytest.raises(ValueError):
            at_most_one_commander(cnf, lits, group_size=1)


def models_universe(n: int) -> set[tuple[bool, ...]]:
    import itertools

    return set(itertools.product([False, True], repeat=n))


class TestExactlyOne:
    @pytest.mark.parametrize("amo", ["pairwise", "ladder", "commander"])
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_exactly_one(self, amo, n):
        cnf, lits = fresh(n)
        exactly_one(cnf, lits, amo=amo)
        models = enumerate_models(cnf, lits)
        assert len(models) == n
        assert all(sum(m) == 1 for m in models)

    def test_empty_raises(self):
        cnf, __ = fresh(0)
        with pytest.raises(ValueError):
            exactly_one(cnf, [])

    def test_unknown_amo(self):
        cnf, lits = fresh(3)
        with pytest.raises(ValueError):
            exactly_one(cnf, lits, amo="nope")


class TestAtMostK:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_counts(self, n):
        for k in range(n + 1):
            cnf, lits = fresh(n)
            at_most_k_sequential(cnf, lits, k)
            models = enumerate_models(cnf, lits)
            expected = sum(math.comb(n, j) for j in range(k + 1))
            assert len(models) == expected
            assert all(sum(m) <= k for m in models)

    def test_k_zero_forces_all_false(self):
        cnf, lits = fresh(4)
        at_most_k_sequential(cnf, lits, 0)
        models = enumerate_models(cnf, lits)
        assert models == {(False,) * 4}

    def test_k_ge_n_unconstrained(self):
        cnf, lits = fresh(3)
        at_most_k_sequential(cnf, lits, 3)
        assert cnf.num_clauses == 0

    def test_negative_k_rejected(self):
        cnf, lits = fresh(3)
        with pytest.raises(ValueError):
            at_most_k_sequential(cnf, lits, -1)


class TestAtLeastK:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_counts(self, n):
        for k in range(n + 2):
            cnf, lits = fresh(n)
            at_least_k(cnf, lits, k)
            models = enumerate_models(cnf, lits)
            expected = sum(math.comb(n, j) for j in range(k, n + 1))
            assert len(models) == expected

    def test_impossible_bound_is_unsat(self):
        cnf, lits = fresh(2)
        at_least_k(cnf, lits, 3)
        assert cnf.to_solver().solve() is SolveResult.UNSAT

    def test_at_least_one_single_clause(self):
        cnf, lits = fresh(3)
        at_least_one(cnf, lits)
        assert cnf.num_clauses == 1

    def test_at_least_one_empty_raises(self):
        cnf, __ = fresh(0)
        with pytest.raises(ValueError):
            at_least_one(cnf, [])


class TestExactlyK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (5, 0), (4, 4)])
    def test_counts(self, n, k):
        cnf, lits = fresh(n)
        exactly_k(cnf, lits, k)
        models = enumerate_models(cnf, lits)
        assert len(models) == math.comb(n, k)
        assert all(sum(m) == k for m in models)
