"""Kernel-vs-legacy lockstep: the array engine must be trace-identical.

The array kernel (:mod:`repro.sat._kernel`) is not "another solver that
happens to agree" — it implements the *same* CDCL algorithm as the
legacy object-graph engine, decision for decision.  Under a fixed seed
the two must therefore produce byte-identical verdicts, models, cores,
level-0 trails, and search counters (propagations, conflicts,
decisions, restarts) on any input.  This suite certifies that on
hypothesis-generated CNFs, on incremental/assumption workloads, and on
the CNFs of 25 fuzz scenarios, plus the kernel selection machinery
(config, ``REPRO_KERNEL`` override, proof-logging fallback).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.kernel import (
    ENV_VAR,
    VALID_KINDS,
    kernel_build,
    load_kernel,
    resolve_kind,
)
from repro.sat.solver import Solver
from repro.sat.types import SolveResult, SolverConfig
from repro.sat.wire import pack_clauses, unpack_clauses

KERNEL_KIND = kernel_build()  # "interpreted" here; "compiled" in the CI leg


@pytest.fixture(autouse=True, scope="module")
def _unforced_kernel():
    """Neutralize a process-wide ``REPRO_KERNEL`` for this module.

    The suite's whole point is comparing the two engines against each
    other, so the env override (which would collapse both sides of
    every ``_pair`` onto one engine and make lockstep vacuous) is
    lifted here; the selection tests below re-set it per-test.
    """
    saved = os.environ.pop(ENV_VAR, None)
    yield
    if saved is not None:
        os.environ[ENV_VAR] = saved


def _pair(**config):
    """One legacy and one kernel solver with identical configuration."""
    return (
        Solver(SolverConfig(kernel="legacy", **config)),
        Solver(SolverConfig(kernel=KERNEL_KIND, **config)),
    )


def _fingerprint(solver, verdict):
    """Everything lockstep promises to keep identical, in one tuple."""
    stats = solver.stats
    return (
        verdict,
        stats.propagations,
        stats.conflicts,
        stats.decisions,
        stats.restarts,
        stats.learned_clauses,
        stats.minimized_literals,
        stats.max_decision_level,
        sorted(solver.root_literals()),
        solver.model() if verdict is SolveResult.SAT else None,
        sorted(solver.unsat_core()) if verdict is SolveResult.UNSAT else None,
    )


def _assert_lockstep(cnf, assumption_rounds=((),)):
    legacy, kernel = _pair()
    assert legacy.kernel == "legacy"
    assert kernel.kernel == KERNEL_KIND
    for solver in (legacy, kernel):
        for lits in cnf:
            solver.add_clause(list(lits))
    for assumptions in assumption_rounds:
        verdict_l = legacy.solve(list(assumptions))
        verdict_k = kernel.solve(list(assumptions))
        assert _fingerprint(legacy, verdict_l) == (
            _fingerprint(kernel, verdict_k)
        )


clauses_strategy = st.lists(
    st.lists(
        st.integers(-25, 25).filter(bool), min_size=1, max_size=5
    ),
    min_size=1,
    max_size=120,
)


class TestLockstepProperties:
    @given(clauses_strategy)
    @settings(max_examples=60, deadline=None)
    def test_random_cnfs_are_trace_identical(self, cnf):
        _assert_lockstep(cnf)

    @given(clauses_strategy, st.lists(st.integers(-25, 25).filter(bool),
                                      max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_assumption_solves_are_trace_identical(self, cnf, assumptions):
        _assert_lockstep(cnf, assumption_rounds=(assumptions, ()))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_incremental_growth_is_trace_identical(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(8, 40)
        legacy, kernel = _pair()
        for _round in range(3):
            batch = [
                [rng.randint(1, nv) * rng.choice([1, -1])
                 for __ in range(rng.choice([2, 2, 3, 3, 4]))]
                for __ in range(rng.randint(5, 40))
            ]
            assumptions = [
                rng.randint(1, nv) * rng.choice([1, -1])
                for __ in range(rng.randint(0, 2))
            ]
            for solver in (legacy, kernel):
                for lits in batch:
                    solver.add_clause(list(lits))
            verdict_l = legacy.solve(list(assumptions))
            verdict_k = kernel.solve(list(assumptions))
            assert _fingerprint(legacy, verdict_l) == (
                _fingerprint(kernel, verdict_k)
            )

    def test_config_variants_stay_in_lockstep(self):
        rng = random.Random(4242)
        cnf = [
            [rng.randint(1, 30) * rng.choice([1, -1])
             for __ in range(rng.choice([2, 3, 3, 4]))]
            for __ in range(140)
        ]
        for config in (
            {"use_minimization": False},
            {"use_phase_saving": False, "default_phase": True},
            {"random_var_freq": 0.05},
            {"restart_base": 10},
            {"use_clause_deletion": False},
        ):
            legacy, kernel = _pair(**config)
            for solver in (legacy, kernel):
                for lits in cnf:
                    solver.add_clause(list(lits))
            verdict_l = legacy.solve()
            verdict_k = kernel.solve()
            assert _fingerprint(legacy, verdict_l) == (
                _fingerprint(kernel, verdict_k)
            ), config


class TestLockstepFuzzScenarios:
    """The 25-scenario differential the acceptance criteria call for."""

    @pytest.mark.parametrize("index", range(25))
    def test_fuzz_scenario_cnf_is_trace_identical(self, index):
        from repro.scenarios.fuzz import fuzz_scenario
        from repro.tasks.common import build_encoding

        scenario = fuzz_scenario(run_seed=8, index=index)
        encoding = build_encoding(
            scenario.discretize(), scenario.schedule, scenario.r_t_min,
            None,
        )
        _assert_lockstep(encoding.cnf.clauses)


class TestKernelSelection:
    def test_build_is_reported(self):
        assert kernel_build() in ("interpreted", "compiled")

    def test_resolve_kind_maps_auto_to_build(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_kind("auto") == kernel_build()
        assert resolve_kind("legacy") == "legacy"

    def test_env_var_overrides_config(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "legacy")
        assert resolve_kind("auto") == "legacy"
        solver = Solver(SolverConfig(kernel="interpreted"))
        assert solver.kernel == "legacy"

    def test_unknown_kind_rejected(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(ValueError):
            resolve_kind("turbo")
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(ValueError):
            resolve_kind("auto")

    def test_valid_kinds_all_resolve(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        for kind in VALID_KINDS:
            assert resolve_kind(kind) in (
                "legacy", "interpreted", "compiled"
            )

    def test_forcing_missing_compiled_build_raises(self):
        if kernel_build() == "compiled":
            pytest.skip("compiled build installed")
        with pytest.raises(RuntimeError):
            load_kernel("compiled")

    def test_interpreted_module_always_loadable(self):
        module = load_kernel("interpreted")
        assert module.KERNEL_KIND == "interpreted"

    def test_stats_record_the_active_kernel(self):
        legacy, kernel = _pair()
        for solver in (legacy, kernel):
            solver.add_clause([1, 2])
            solver.solve()
        assert legacy.stats.kernel == "legacy"
        assert kernel.stats.kernel == KERNEL_KIND
        assert legacy.stats.as_dict()["kernel.legacy"] == 1
        assert kernel.stats.as_dict()[f"kernel.{KERNEL_KIND}"] == 1

    def test_attach_proof_falls_back_to_legacy(self):
        from repro.sat.proof import ProofLogger, check_rup_proof

        cnf = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
        solver = Solver(SolverConfig(kernel=KERNEL_KIND))
        for lits in cnf:
            solver.add_clause(list(lits))
        assert solver.kernel == KERNEL_KIND
        logger = ProofLogger()
        solver.attach_proof(logger)
        assert solver.kernel == "legacy"
        assert solver.solve() is SolveResult.UNSAT
        assert check_rup_proof(2, cnf, logger.steps)


class TestWireFormat:
    @given(st.lists(st.lists(st.integers(-(2 ** 30), 2 ** 30),
                             max_size=6), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, clauses):
        assert unpack_clauses(pack_clauses(clauses)) == clauses

    def test_empty_block(self):
        assert pack_clauses([]) == b""
        assert unpack_clauses(b"") == []

    def test_corrupt_buffers_rejected(self):
        with pytest.raises(ValueError):
            unpack_clauses(b"\x01")  # misaligned
        buf = pack_clauses([[1, 2, 3]])
        with pytest.raises(ValueError):
            unpack_clauses(buf[:-4])  # truncated literal
