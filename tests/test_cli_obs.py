"""CLI surface of the observability stack: --profile/--events/--live,
``repro top``, ``repro trend`` and fuzz-report rendering."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestProfileAndEventsFlags:
    def test_verify_profile_metrics_and_events(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        events_path = tmp_path / "events.jsonl"
        # Running example is UNSAT by design -> exit 1.
        code = main([
            "verify", "--case", "running-example",
            "--profile",
            "--metrics", str(metrics_path),
            "--events", str(events_path),
        ])
        assert code == 1
        metrics = json.loads(metrics_path.read_text())
        assert any(k.startswith("profile.") for k in metrics)
        assert metrics["profile.props_per_s"] > 0
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines() if line
        ]
        assert records, "no events were exported"
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, len(seqs) + 1))
        kinds = {r["kind"] for r in records}
        assert "lazy.round" in kinds  # verify defaults to the CEGAR path

    def test_no_profile_keys_without_flag(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        main(["verify", "--case", "running-example",
              "--metrics", str(metrics_path)])
        metrics = json.loads(metrics_path.read_text())
        assert not any(k.startswith("profile.") for k in metrics)

    def test_live_smoke(self, capsys):
        # --live must not disturb the verdict; the renderer line lands
        # on stderr and is closed with a newline.
        assert main(["verify", "--case", "running-example",
                     "--live"]) == 1
        err = capsys.readouterr().err
        assert "verify:" in err
        assert err.endswith("\n")


class TestTop:
    def test_top_renders_attribution(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        main(["verify", "--case", "running-example", "--profile",
              "--metrics", str(metrics_path)])
        capsys.readouterr()
        assert main(["top", "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "dominant phase:" in out
        assert "100.0%" in out
        assert "props/s" in out

    def test_top_without_profile_data(self, tmp_path, capsys):
        metrics_path = tmp_path / "plain.json"
        metrics_path.write_text(json.dumps({"solver.conflicts": 3}))
        assert main(["top", "--metrics", str(metrics_path)]) == 0
        assert "no profile data" in capsys.readouterr().out


class TestTrend:
    def _seed_history(self, path):
        records = [
            {"sha": f"abcdef{i:03d}cafebabe", "time": float(i),
             "bench": "profile",
             "metrics": {"bench.profile.baseline_s": 0.1 + i * 0.01}}
            for i in range(4)
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )

    def test_trend_renders_sparkline_and_sha(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        self._seed_history(history)
        assert main(["trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "bench.profile.baseline_s" in out
        assert "abcdef003" in out  # 9-char SHA of the latest record
        assert any(g in out for g in "▁▂▃▄▅▆▇█")

    def test_trend_key_filter(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        self._seed_history(history)
        assert main(["trend", "--history", str(history),
                     "--key", "nomatch"]) == 0
        out = capsys.readouterr().out
        assert "bench.profile.baseline_s" not in out

    def test_trend_missing_history_hints_at_benches(self, tmp_path):
        with pytest.raises(SystemExit, match="bench-profile"):
            main(["trend", "--history", str(tmp_path / "absent.jsonl")])


class TestFuzzReport:
    def test_fuzz_report_renders_in_repro_report(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz-report.json"
        code = main([
            "fuzz", "--seed", "3", "--count", "2", "-j", "1",
            "--report", str(report_path),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["report", "--metrics", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "Fuzz run: seed 3, 2 scenario(s)" in out
        assert "all paths agree" in out
        assert "scenario.generated" in out

    def test_fuzz_profile_sums_counters_into_report(self, tmp_path):
        report_path = tmp_path / "fuzz-report.json"
        code = main([
            "fuzz", "--seed", "3", "--count", "1", "-j", "1",
            "--profile", "--report", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        metrics = payload["metrics"]
        assert metrics.get("profile.propagate.count", 0) > 0
        # Rates are per-solve gauges; summing them across the four
        # differential paths would be meaningless, so they must not
        # appear in the aggregated report.
        assert "profile.props_per_s" not in metrics
