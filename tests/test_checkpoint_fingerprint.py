"""Descent fingerprints: stability, mismatch reporting, warm compat.

The gateway's result cache and the checkpoint resume path both lean on
:func:`repro.opt.checkpoint.descent_fingerprint` to decide whether a
stored artefact (model, bounds) may be interpreted against a formula.
These tests pin the contract: identical instances fingerprint
identically regardless of dict ordering or a JSON round-trip, any
semantic change is reported *by key name* in the
:class:`~repro.opt.checkpoint.CheckpointError`, and the warm-start
compatibility check ignores exactly the clause-count key.
"""

from __future__ import annotations

import json

import pytest

from repro.encoding.encoder import EtcsEncoding
from repro.opt.checkpoint import (
    CheckpointError,
    CheckpointState,
    descent_fingerprint,
    warm_compatible,
)


def _fingerprint(**overrides) -> dict:
    base = {
        "num_vars": 120, "num_clauses": 340,
        "objective_lits": [5, 9, 14], "strategy": "linear",
    }
    base.update(overrides)
    return descent_fingerprint(
        base["num_vars"], base["num_clauses"],
        base["objective_lits"], base["strategy"],
    )


class TestFingerprintStability:
    def test_json_round_trip_and_key_order_are_identities(self):
        fingerprint = _fingerprint()
        round_tripped = json.loads(json.dumps(fingerprint))
        reordered = {
            key: round_tripped[key] for key in sorted(round_tripped)
        }
        CheckpointState(reordered).check(fingerprint)  # no raise

    def test_same_instance_fingerprints_identically(self, micro_net,
                                                    single_train_schedule):
        def build() -> dict:
            encoding = EtcsEncoding(
                micro_net, single_train_schedule, 1.0
            ).build()
            objective = encoding.border_objective()
            return descent_fingerprint(
                encoding.cnf.num_vars, encoding.cnf.num_clauses,
                objective, "linear",
            )

        assert build() == build()

    def test_objective_digest_is_order_sensitive(self):
        assert (
            _fingerprint(objective_lits=[5, 9, 14])
            != _fingerprint(objective_lits=[14, 9, 5])
        )


class TestMismatchReporting:
    @pytest.mark.parametrize(
        ("overrides", "expected_keys"),
        [
            ({"num_vars": 121}, ["num_vars"]),
            ({"num_clauses": 341}, ["num_clauses"]),
            ({"strategy": "binary"}, ["strategy"]),
            (
                {"objective_lits": [5, 9]},
                ["objective_crc", "objective_len"],
            ),
        ],
    )
    def test_check_names_every_mismatched_key(self, overrides,
                                              expected_keys):
        state = CheckpointState(_fingerprint())
        with pytest.raises(CheckpointError) as excinfo:
            state.check(_fingerprint(**overrides))
        message = str(excinfo.value)
        for key in expected_keys:
            assert key in message

    def test_resolution_change_is_detected(self, micro_net,
                                           single_train_schedule):
        def fingerprint_at(r_t: float) -> dict:
            encoding = EtcsEncoding(
                micro_net, single_train_schedule, r_t
            ).build()
            return descent_fingerprint(
                encoding.cnf.num_vars, encoding.cnf.num_clauses,
                encoding.border_objective(), "linear",
            )

        coarse, fine = fingerprint_at(1.0), fingerprint_at(0.5)
        with pytest.raises(CheckpointError) as excinfo:
            CheckpointState(coarse).check(fine)
        assert "num_vars" in str(excinfo.value)


class TestWarmCompatible:
    def test_clause_delta_stays_compatible(self):
        # Delta-close instances differ in clauses but share a variable
        # space; the model re-certification downstream is the real gate.
        assert warm_compatible(
            _fingerprint(num_clauses=340), _fingerprint(num_clauses=999)
        )

    def test_variable_space_change_is_incompatible(self):
        assert not warm_compatible(
            _fingerprint(num_vars=120), _fingerprint(num_vars=121)
        )

    def test_missing_cached_fingerprint_passes(self):
        assert warm_compatible(None, _fingerprint())
        assert warm_compatible({}, _fingerprint())
