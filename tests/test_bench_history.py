"""Bench-history observatory: history.py and the --history gate.

``benchmarks/`` is deliberately not a package, so the two scripts under
test are loaded by file path (the same fallback ``check_regression.py``
itself uses when its sibling import is unavailable).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, BENCH_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


history = _load("history")
# check_regression's `from history import ...` must resolve to the same
# module object the tests use.
sys.modules.setdefault("history", history)
check_regression = _load("check_regression")


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        record = history.append_history(
            "descent", {"bench.x_s": 1.5, "bench.note": "text",
                        "bench.flag": True},
            path=path, sha="cafe" * 10, timestamp=123.0,
        )
        assert record["sha"] == "cafe" * 10
        # Non-scalar values are dropped; bools are kept in the record.
        assert record["metrics"] == {"bench.flag": True, "bench.x_s": 1.5}
        (loaded,) = history.load_history(path)
        assert loaded == record

    def test_missing_file_is_empty_history(self, tmp_path):
        assert history.load_history(str(tmp_path / "nope.jsonl")) == []

    def test_torn_and_junk_lines_are_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        good = {"sha": "a", "time": 1, "bench": "lazy",
                "metrics": {"bench.y_s": 2.0}}
        path.write_text(
            json.dumps(good) + "\n"
            + '{"sha": "b", "time": 2, "bench": "lazy", "met'  # torn
            + "\n[1, 2, 3]\n"          # not a dict
            + '{"sha": "c"}\n'         # no metrics key
        )
        records = history.load_history(str(path))
        assert [r["sha"] for r in records] == ["a"]

    def test_bench_filter(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        history.append_history("descent", {"a_s": 1.0}, path=path, sha="x",
                               timestamp=1.0)
        history.append_history("lazy", {"b_s": 2.0}, path=path, sha="x",
                               timestamp=2.0)
        assert len(history.load_history(path)) == 2
        (only,) = history.load_history(path, bench="lazy")
        assert only["bench"] == "lazy"

    def test_git_sha_in_this_checkout(self):
        sha = history.git_sha()
        assert sha == "unknown" or len(sha) == 40


class TestRollingBaseline:
    def _records(self, values):
        return [{"bench": "b", "metrics": {"bench.t_s": v}} for v in values]

    def test_median_odd_and_even(self):
        assert history.rolling_baseline(
            self._records([3.0, 1.0, 2.0]), window=3
        ) == {"bench.t_s": 2.0}
        assert history.rolling_baseline(
            self._records([1.0, 2.0, 3.0, 4.0]), window=4
        ) == {"bench.t_s": 2.5}

    def test_window_takes_most_recent(self):
        baseline = history.rolling_baseline(
            self._records([100.0, 100.0, 1.0, 2.0, 3.0]), window=3
        )
        assert baseline == {"bench.t_s": 2.0}

    def test_bools_are_excluded(self):
        records = [{"metrics": {"ok": True, "t_s": 1.0}}]
        assert history.rolling_baseline(records) == {"t_s": 1.0}

    def test_outlier_resistance(self):
        # One loaded-host run does not move the median.
        steady = self._records([1.0, 1.0, 1.0, 9.0, 1.0])
        assert history.rolling_baseline(steady, window=5) == {
            "bench.t_s": 1.0
        }


class TestHistoryGate:
    def _seed(self, path, values, bench="descent"):
        for i, v in enumerate(values):
            history.append_history(
                bench, {"bench.run_s": v}, path=str(path),
                sha=f"sha{i}", timestamp=float(i),
            )

    def _gate(self, path, current_file, current, bench="descent",
              threshold=0.25):
        current_file.write_text(json.dumps(current))
        return check_regression.main([
            "--history", str(path), "--bench", bench,
            "--current", str(current_file),
            "--threshold", str(threshold),
        ])

    def test_passes_within_threshold(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        self._seed(hist, [1.0, 1.1, 0.9, 1.0, 1.05])
        rc = self._gate(hist, tmp_path / "cur.json",
                        {"bench.run_s": 1.2})
        assert rc == 0
        assert "ok: no regressions" in capsys.readouterr().out

    def test_fails_beyond_threshold(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        self._seed(hist, [1.0, 1.0, 1.0])
        rc = self._gate(hist, tmp_path / "cur.json",
                        {"bench.run_s": 2.0})
        assert rc == 1
        assert "REGRESSION bench.run_s" in capsys.readouterr().out

    def test_median_absorbs_one_outlier_run(self, tmp_path):
        hist = tmp_path / "h.jsonl"
        self._seed(hist, [1.0, 1.0, 9.0, 1.0, 1.0])  # one loaded host
        rc = self._gate(hist, tmp_path / "cur.json",
                        {"bench.run_s": 1.1})
        assert rc == 0

    def test_empty_history_passes_as_seed(self, tmp_path, capsys):
        rc = self._gate(tmp_path / "absent.jsonl", tmp_path / "cur.json",
                        {"bench.run_s": 5.0})
        assert rc == 0
        assert "no usable history" in capsys.readouterr().out

    def test_other_bench_records_are_ignored(self, tmp_path):
        hist = tmp_path / "h.jsonl"
        self._seed(hist, [1.0, 1.0], bench="lazy")
        # Gating "descent" sees no records → seeds cleanly.
        rc = self._gate(hist, tmp_path / "cur.json",
                        {"bench.run_s": 99.0}, bench="descent")
        assert rc == 0

    def test_baseline_and_history_are_mutually_exclusive(self, tmp_path):
        cur = tmp_path / "cur.json"
        cur.write_text("{}")
        with pytest.raises(SystemExit):
            check_regression.main(["--current", str(cur)])
        with pytest.raises(SystemExit):
            check_regression.main([
                "--current", str(cur), "--baseline", "x.json",
                "--history", "y.jsonl",
            ])


class TestDirectionInference:
    def test_directions(self):
        direction = check_regression.direction
        assert direction("bench.profile.baseline_s") == "lower"
        assert direction("bench.lazy.rounds") == "lower"
        assert direction("bench.descent.speedup") == "higher"
        assert direction("bench.persistent_beats_oneshot") == "higher"
        assert direction("bench.host_cpus") is None
        # `overhead` is deliberately ungated: it is asserted against an
        # absolute budget by bench_profile.py itself, and its sign
        # flips run to run.
        assert direction("bench.profile.overhead") is None
