"""Differential property tests: the portfolio must be verdict-preserving.

Verdict-preserving parallelism is only trustworthy if every configuration
provably agrees, so this suite drives Hypothesis-generated random CNFs and
small random ETCS scenarios through

* every diversified portfolio member (in-process),
* the actual multi-process portfolio runner,
* the plain serial solver, and
* a brute-force reference,

and requires identical SAT/UNSAT verdicts everywhere.  UNSAT portfolio
answers with proof logging must additionally ship a DRAT refutation that
the independent RUP checker accepts.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.network.builder import NetworkBuilder
from repro.network.discretize import DiscreteNetwork
from repro.sat import (
    Solver,
    SolveResult,
    check_rup_proof,
    diversified_members,
    solve_portfolio,
)
from repro.sat.portfolio import fork_available
from repro.tasks import verify_schedule
from repro.trains.schedule import Schedule, ScheduleError, TrainRun
from repro.trains.train import Train

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)

MEMBERS = diversified_members(8)


def clauses_strategy(max_vars=5, max_clauses=18, max_len=3):
    literal = st.integers(1, max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=max_len)
    return st.lists(clause, min_size=0, max_size=max_clauses)


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(lit):
            phase = bits[abs(lit) - 1]
            return phase if lit > 0 else not phase

        if all(any(value(lit) for lit in c) for c in clauses):
            return True
    return False


def solve_with(member, num_vars, clauses):
    solver = Solver(member.config)
    solver.ensure_var(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()


class TestMemberAgreement:
    """Every diversified configuration is its own sound, complete solver."""

    @given(clauses_strategy())
    @settings(max_examples=120, deadline=None)
    def test_all_members_match_brute_force(self, clauses):
        expected = brute_force(5, clauses)
        for member in MEMBERS:
            verdict = solve_with(member, 5, clauses) is SolveResult.SAT
            assert verdict == expected, member.name

    @given(clauses_strategy(max_vars=4, max_clauses=24))
    @settings(max_examples=60, deadline=None)
    def test_member_models_satisfy_the_formula(self, clauses):
        for member in MEMBERS:
            solver = Solver(member.config)
            solver.ensure_var(4)
            for clause in clauses:
                solver.add_clause(clause)
            if solver.solve() is SolveResult.SAT:
                for clause in clauses:
                    assert any(solver.model_value(lit) for lit in clause), (
                        member.name
                    )


@needs_fork
class TestPortfolioAgreement:
    """The multi-process race returns exactly the serial verdict."""

    @given(clauses_strategy())
    @settings(max_examples=40, deadline=None)
    def test_race_matches_serial(self, clauses):
        serial = solve_with(MEMBERS[0], 5, clauses)
        raced = solve_portfolio(5, clauses, processes=2, timeout_s=60)
        assert raced.verdict == serial
        if raced.verdict is SolveResult.SAT:
            true_set = raced.true_set()
            for clause in clauses:
                assert any(
                    lit in true_set if lit > 0 else abs(lit) not in true_set
                    for lit in clause
                )

    @given(clauses_strategy(max_vars=4, max_clauses=26, max_len=2))
    @settings(max_examples=40, deadline=None)
    def test_unsat_races_ship_checkable_drat_proofs(self, clauses):
        # Short clauses over few variables skew UNSAT, which is the case
        # this test is after; SAT examples just assert the verdict.
        raced = solve_portfolio(4, clauses, processes=2, with_proof=True,
                                timeout_s=60)
        assert (raced.verdict is SolveResult.SAT) == brute_force(4, clauses)
        if raced.verdict is SolveResult.UNSAT:
            assert raced.proof_steps is not None
            assert check_rup_proof(4, clauses, raced.proof_steps)


def micro_scenario(length_km, speed_kmh, train_length_m, arrival_min,
                   opposing):
    """A tiny 3-TTD line with one train (or two opposing trains)."""
    network = (
        NetworkBuilder()
        .boundary("A")
        .link("m1")
        .link("m2")
        .boundary("B")
        .track("A", "m1", length_km=length_km, ttd="TTD1", name="staA")
        .track("m1", "m2", length_km=length_km, ttd="TTD2", name="mid")
        .track("m2", "B", length_km=length_km, ttd="TTD3", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .build()
    )
    runs = [
        TrainRun(
            Train("E", length_m=train_length_m, max_speed_kmh=speed_kmh),
            start="A", goal="B", departure_min=0.0,
            arrival_min=arrival_min,
        )
    ]
    if opposing:
        runs.append(
            TrainRun(
                Train("W", length_m=train_length_m,
                      max_speed_kmh=speed_kmh),
                start="B", goal="A", departure_min=0.0,
                arrival_min=None,
            )
        )
    duration = (arrival_min or 6.0) + 2.0
    schedule = Schedule(runs, duration_min=duration)
    return DiscreteNetwork(network, 0.5), schedule


@needs_fork
class TestEtcsScenarioAgreement:
    """Serial and portfolio verification agree on random ETCS scenarios."""

    @given(
        length_km=st.sampled_from([0.5, 1.0]),
        speed_kmh=st.sampled_from([60.0, 120.0]),
        train_length_m=st.sampled_from([200.0, 400.0]),
        arrival_min=st.one_of(st.none(), st.integers(2, 6).map(float)),
        opposing=st.booleans(),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_verification_verdict_and_metadata_agree(
        self, length_km, speed_kmh, train_length_m, arrival_min, opposing
    ):
        try:
            net, schedule = micro_scenario(
                length_km, speed_kmh, train_length_m, arrival_min, opposing
            )
        except ScheduleError:
            return  # scenario does not discretise: nothing to compare
        serial = verify_schedule(net, schedule, 1.0)
        raced = verify_schedule(net, schedule, 1.0, parallel=2)
        assert raced.satisfiable == serial.satisfiable
        assert raced.num_sections == serial.num_sections
        assert raced.time_steps == serial.time_steps
        assert raced.portfolio is not None
        assert serial.portfolio is None
