"""Tests for the greedy dispatcher baseline."""

from __future__ import annotations

import pytest

from repro.baseline import greedy_dispatch
from repro.network.sections import VSSLayout
from repro.tasks import optimize_schedule, verify_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


class TestSingleTrain:
    def test_uncontended_run_succeeds(self, micro_net,
                                      single_train_schedule):
        result = greedy_dispatch(micro_net, single_train_schedule, 0.5)
        assert result.success, result.reason
        assert result.arrivals["T"] is not None

    def test_greedy_matches_sat_optimum_alone(self, micro_net,
                                              single_train_schedule):
        """With no contention, greedy is as fast as the SAT optimum."""
        greedy = greedy_dispatch(
            micro_net, single_train_schedule, 0.5,
            layout=VSSLayout.finest(micro_net),
        )
        optimal = optimize_schedule(micro_net, single_train_schedule, 0.5)
        assert greedy.success
        assert greedy.makespan == optimal.time_steps

    def test_impossible_deadline_reported(self, micro_net):
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        result = greedy_dispatch(micro_net, Schedule([run], 5.0), 0.5)
        assert not result.success
        assert "deadline" in result.reason

    def test_long_train_chain_shape(self, micro_net):
        run = TrainRun(Train("T", 900, 120), "A", "B", 0.0, 4.5)
        result = greedy_dispatch(micro_net, Schedule([run], 5.0), 0.5)
        assert result.success, result.reason
        for occupied in result.trajectories[0]:
            assert len(occupied) in (0, 2)


class TestContention:
    @pytest.fixture
    def headway_schedule(self):
        return Schedule(
            [
                TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
                TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.5),
            ],
            duration_min=5.0,
        )

    def test_following_works_on_fine_layout(self, micro_net,
                                            headway_schedule):
        result = greedy_dispatch(
            micro_net, headway_schedule, 0.5,
            layout=VSSLayout.finest(micro_net),
        )
        assert result.success, result.reason

    def test_following_fails_on_pure_ttd(self, micro_net, headway_schedule):
        result = greedy_dispatch(micro_net, headway_schedule, 0.5)
        assert not result.success

    def test_opposing_trains_deadlock_greedy(self, loop_net):
        """Two opposing trains: greedy drives them head-on into the loop
        throat on the finest layout... or resolves it — either way the SAT
        verdict is the reference."""
        schedule = Schedule(
            [
                TrainRun(Train("E", 400, 120), "A", "B", 0.0, 5.0),
                TrainRun(Train("W", 400, 120), "B", "A", 0.0, 5.0),
            ],
            duration_min=6.0,
        )
        layout = VSSLayout.finest(loop_net)
        sat = verify_schedule(loop_net, schedule, 0.5, layout=layout)
        assert sat.satisfiable  # SAT coordinates the crossing
        greedy = greedy_dispatch(loop_net, schedule, 0.5, layout=layout)
        # Greedy either succeeds (got lucky with the loop) or deadlocks;
        # in both cases it must not claim success while missing arrivals.
        if greedy.success:
            assert all(a is not None for a in greedy.arrivals.values())
        else:
            assert greedy.reason


class TestAgainstValidator:
    def test_successful_runs_obey_operational_rules(self, micro_net,
                                                    single_train_schedule):
        """Greedy trajectories must satisfy the same physics the SAT model
        enforces (cross-checked via the independent validator)."""
        from repro.encoding.decode import Solution, TrainTrajectory
        from repro.encoding.encoder import EtcsEncoding
        from repro.encoding.validate import validate_solution

        layout = VSSLayout.finest(micro_net)
        greedy = greedy_dispatch(
            micro_net, single_train_schedule, 0.5, layout=layout
        )
        assert greedy.success
        encoding = EtcsEncoding(
            micro_net, single_train_schedule, 0.5
        ).build()
        goal = set(encoding.runs[0].goal_segments)
        steps = [frozenset(s) for s in greedy.trajectories[0]]
        arrival = next(
            (t for t, occ in enumerate(steps) if occ & goal), None
        )
        solution = Solution(
            layout=layout,
            trajectories=[
                TrainTrajectory(
                    name="T", steps=steps,
                    arrival_step=arrival, gone_from=None,
                )
            ],
            makespan=greedy.makespan,
            t_max=encoding.t_max,
        )
        assert validate_solution(encoding, solution) == []


class TestRunningExample:
    def test_greedy_fails_where_sat_succeeds(self):
        """The headline baseline result: on the very layout the SAT
        generation task produces, myopic dispatch deadlocks."""
        from repro.casestudies.running_example import running_example
        from repro.tasks import generate_layout

        study = running_example()
        net = study.discretize()
        generated = generate_layout(net, study.schedule, study.r_t_min)
        assert generated.satisfiable  # SAT: feasible
        greedy = greedy_dispatch(
            net, study.schedule, study.r_t_min,
            layout=generated.solution.layout,
        )
        assert not greedy.success
