"""Tests for network JSON serialisation."""

from __future__ import annotations

import pytest

from repro.network.io import (
    load_network,
    network_from_json,
    network_to_json,
    save_network,
)
from repro.network.topology import NetworkError


class TestRoundtrip:
    def test_roundtrip_preserves_structure(self, loop_line):
        text = network_to_json(loop_line)
        restored = network_from_json(text)
        assert set(restored.nodes) == set(loop_line.nodes)
        assert set(restored.tracks) == set(loop_line.tracks)
        assert restored.stations == loop_line.stations
        for name, track in loop_line.tracks.items():
            other = restored.tracks[name]
            assert (other.node_a, other.node_b) == (track.node_a, track.node_b)
            assert other.length_km == track.length_km
            assert other.ttd == track.ttd
        for name, node in loop_line.nodes.items():
            assert restored.nodes[name].kind == node.kind

    def test_file_roundtrip(self, micro_line, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_line, path)
        restored = load_network(path)
        assert set(restored.tracks) == set(micro_line.tracks)

    def test_discretization_identical_after_roundtrip(self, loop_line):
        from repro.network.discretize import DiscreteNetwork

        original = DiscreteNetwork(loop_line, 0.5)
        restored = DiscreteNetwork(
            network_from_json(network_to_json(loop_line)), 0.5
        )
        assert original.num_segments == restored.num_segments
        assert original.num_vertices == restored.num_vertices
        assert original.forced_borders == restored.forced_borders


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(NetworkError, match="invalid JSON"):
            network_from_json("{nope")

    def test_missing_fields(self):
        with pytest.raises(NetworkError, match="malformed"):
            network_from_json('{"nodes": [{"name": "a"}], "tracks": [{}]}')

    def test_semantic_validation_still_applies(self):
        # Structurally valid JSON, semantically broken network.
        text = """
        {"nodes": [{"name": "a", "kind": "boundary"},
                   {"name": "b", "kind": "boundary"},
                   {"name": "c", "kind": "boundary"}],
         "tracks": [{"name": "t", "a": "a", "b": "b",
                     "length_km": 1.0, "ttd": "T"}]}
        """
        with pytest.raises(NetworkError):
            network_from_json(text)

    def test_default_node_kind_is_link(self):
        text = """
        {"nodes": [{"name": "a", "kind": "boundary"},
                   {"name": "m"},
                   {"name": "b", "kind": "boundary"}],
         "tracks": [{"name": "t1", "a": "a", "b": "m",
                     "length_km": 1.0, "ttd": "T1"},
                    {"name": "t2", "a": "m", "b": "b",
                     "length_km": 1.0, "ttd": "T2"}]}
        """
        network = network_from_json(text)
        from repro.network.topology import NodeKind

        assert network.nodes["m"].kind is NodeKind.LINK
