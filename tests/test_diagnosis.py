"""Tests for infeasibility diagnosis (minimal conflicting train sets)."""

from __future__ import annotations

import pytest

from repro.network.sections import VSSLayout
from repro.tasks import diagnose_infeasibility, verify_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@pytest.fixture
def headway_schedule():
    return Schedule(
        [
            TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
            TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.0),
        ],
        duration_min=5.0,
    )


class TestFeasibleCase:
    def test_empty_diagnosis(self, micro_net, single_train_schedule):
        result = diagnose_infeasibility(
            micro_net, single_train_schedule, 0.5
        )
        assert result.feasible
        assert result.conflicting_trains == []
        assert not result.structural

    def test_feasible_on_fine_layout(self, micro_net, headway_schedule):
        result = diagnose_infeasibility(
            micro_net, headway_schedule, 0.5,
            layout=VSSLayout.finest(micro_net),
        )
        assert result.feasible


class TestDeadlineConflicts:
    def test_names_the_blocked_follower(self, micro_net, headway_schedule):
        result = diagnose_infeasibility(micro_net, headway_schedule, 0.5)
        assert not result.feasible
        assert result.conflicting_trains == ["2"]
        assert result.relaxable
        assert not result.structural

    def test_agrees_with_verification(self, micro_net, headway_schedule):
        verification = verify_schedule(micro_net, headway_schedule, 0.5)
        diagnosis = diagnose_infeasibility(micro_net, headway_schedule, 0.5)
        assert verification.satisfiable == diagnosis.feasible

    def test_minimality(self, micro_net, headway_schedule):
        """Relaxing the diagnosed trains' deadlines makes the rest work —
        and the diagnosis never includes trains whose removal changes
        nothing."""
        import dataclasses

        diagnosis = diagnose_infeasibility(micro_net, headway_schedule, 0.5)
        relaxed_runs = [
            dataclasses.replace(run, arrival_min=None)
            if run.train.name in diagnosis.conflicting_trains
            else run
            for run in headway_schedule.runs
        ]
        relaxed = Schedule(relaxed_runs, headway_schedule.duration_min)
        assert verify_schedule(micro_net, relaxed, 0.5).satisfiable


class TestStructuralConflicts:
    def test_running_example_is_structural(self):
        """The Fig. 1b pure-TTD deadlock persists with every deadline
        dropped: no single timetable commitment is to blame."""
        from repro.casestudies.running_example import running_example

        study = running_example()
        net = study.discretize()
        result = diagnose_infeasibility(net, study.schedule, study.r_t_min)
        assert not result.feasible
        assert result.structural
        assert result.conflicting_trains == []

    def test_opposing_on_plain_line_is_structural(self, micro_line):
        from repro.network.discretize import DiscreteNetwork

        coarse = DiscreteNetwork(micro_line, 1.0)
        schedule = Schedule(
            [
                TrainRun(Train("E", 100, 60), "A", "B", 0.0, 5.0),
                TrainRun(Train("W", 100, 60), "B", "A", 0.0, 5.0),
            ],
            duration_min=6.0,
        )
        result = diagnose_infeasibility(coarse, schedule, 1.0)
        assert not result.feasible
        assert result.structural
