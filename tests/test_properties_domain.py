"""Property-based tests (hypothesis) for the railway domain layers.

The central property: every SAT answer produced by the encoder, on randomly
generated line networks and schedules, passes the independent operational
validator — and layouts found by generation actually verify.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.encoding.encoder import EtcsEncoding
from repro.encoding.validate import validate_solution
from repro.network.builder import NetworkBuilder
from repro.network.discretize import DiscreteNetwork
from repro.network.paths import (
    TTDPathIndex,
    chains,
    reachable,
    segment_distances,
)
from repro.network.sections import VSSLayout
from repro.sat import SolveResult
from repro.tasks import generate_layout, verify_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@st.composite
def line_networks(draw):
    """A random line: station A - n tracks - station B, random TTD grouping."""
    num_mid = draw(st.integers(1, 3))
    lengths = [draw(st.floats(0.5, 2.0)) for _ in range(num_mid + 2)]
    # TTD grouping: each mid track either continues the previous TTD or
    # starts a new one (stations are their own TTDs).
    builder = NetworkBuilder().boundary("A")
    names = []
    for i in range(num_mid + 1):
        builder.link(f"m{i}")
    builder.boundary("B")
    nodes = ["A"] + [f"m{i}" for i in range(num_mid + 1)] + ["B"]
    ttd = 0
    for i in range(num_mid + 2):
        if i > 0 and not draw(st.booleans()):
            ttd += 1
        builder.track(
            nodes[i], nodes[i + 1], length_km=lengths[i],
            ttd=f"T{ttd}", name=f"track{i}",
        )
    builder.station("A", ["track0"])
    builder.station("B", [f"track{num_mid + 1}"])
    return builder.build()


@st.composite
def schedules(draw):
    """One or two same-direction trains with optional deadlines."""
    num_trains = draw(st.integers(1, 2))
    runs = []
    for i in range(num_trains):
        dep = draw(st.floats(0.0, 2.0))
        arrival = draw(st.one_of(st.none(), st.floats(dep + 2.0, 9.5)))
        runs.append(
            TrainRun(
                Train(f"t{i}", length_m=draw(st.sampled_from([100, 400])),
                      max_speed_kmh=draw(st.sampled_from([60, 120]))),
                start="A",
                goal="B",
                departure_min=dep,
                arrival_min=arrival,
            )
        )
    return Schedule(runs, duration_min=10.0)


class TestGraphProperties:
    @given(line_networks(), st.floats(0.3, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_discretization_preserves_length(self, network, r_s):
        net = DiscreteNetwork(network, r_s)
        total = sum(seg.length_km for seg in net.segments)
        assert abs(total - network.total_length_km) < 1e-6

    @given(line_networks(), st.floats(0.3, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_chains_are_connected_paths(self, network, r_s):
        net = DiscreteNetwork(network, r_s)
        for length in (1, 2, 3):
            for chain in chains(net, length):
                assert len(chain) == length
                for a, b in zip(chain, chain[1:]):
                    assert b in net.seg_neighbours[a]

    @given(line_networks(), st.floats(0.3, 1.5), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_reachable_matches_bfs_distances(self, network, r_s, radius):
        net = DiscreteNetwork(network, r_s)
        source = 0
        dist = segment_distances(net, source)
        expected = {e for e in range(net.num_segments)
                    if 0 <= dist[e] <= radius}
        assert set(reachable(net, source, radius)) == expected

    @given(line_networks(), st.floats(0.3, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_between_symmetry(self, network, r_s):
        net = DiscreteNetwork(network, r_s)
        index = TTDPathIndex(net)
        for ttd, members in net.ttd_segments.items():
            for e in members:
                for f in members:
                    assert index.between(e, f) == index.between(f, e)

    @given(line_networks(), st.floats(0.3, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_section_counts_bracketed(self, network, r_s):
        net = DiscreteNetwork(network, r_s)
        pure = VSSLayout.pure_ttd(net)
        finest = VSSLayout.finest(net)
        assert pure.num_sections == net.num_ttds
        assert finest.num_sections == net.num_segments
        assert pure.num_sections <= finest.num_sections

    @given(line_networks(), st.floats(0.3, 1.5), st.data())
    @settings(max_examples=40, deadline=None)
    def test_each_added_border_adds_one_section(self, network, r_s, data):
        net = DiscreteNetwork(network, r_s)
        free = net.free_border_candidates()
        assume(free)
        chosen = data.draw(st.sets(st.sampled_from(free)))
        layout = VSSLayout(net, set(net.forced_borders) | chosen)
        assert layout.num_sections == net.num_ttds + len(chosen)


class TestEncoderProperties:
    @given(line_networks(), schedules())
    @settings(max_examples=30, deadline=None)
    def test_sat_solutions_validate(self, network, schedule):
        net = DiscreteNetwork(network, 0.5)
        encoding = EtcsEncoding(net, schedule, 1.0).build()
        solver = encoding.cnf.to_solver()
        if solver.solve() is SolveResult.SAT:
            solution = encoding.decode(
                {lit for lit in solver.model() if lit > 0}
            )
            assert validate_solution(encoding, solution) == []

    @given(line_networks(), schedules())
    @settings(max_examples=20, deadline=None)
    def test_generated_layouts_verify(self, network, schedule):
        net = DiscreteNetwork(network, 0.5)
        generated = generate_layout(net, schedule, 1.0)
        if generated.satisfiable:
            verified = verify_schedule(
                net, schedule, 1.0, layout=generated.solution.layout
            )
            assert verified.satisfiable

    @given(line_networks(), schedules())
    @settings(max_examples=20, deadline=None)
    def test_finest_layout_dominates(self, network, schedule):
        """If any layout works, the finest layout works."""
        net = DiscreteNetwork(network, 0.5)
        generated = generate_layout(net, schedule, 1.0)
        finest = verify_schedule(
            net, schedule, 1.0, layout=VSSLayout.finest(net)
        )
        if generated.satisfiable:
            assert finest.satisfiable

    @given(line_networks(), schedules())
    @settings(max_examples=20, deadline=None)
    def test_verification_monotone_in_layout(self, network, schedule):
        """Pure-TTD feasible implies finest-layout feasible (monotonicity)."""
        net = DiscreteNetwork(network, 0.5)
        pure = verify_schedule(net, schedule, 1.0)
        if pure.satisfiable:
            finest = verify_schedule(
                net, schedule, 1.0, layout=VSSLayout.finest(net)
            )
            assert finest.satisfiable


class TestGreedyCrossValidation:
    @given(line_networks(), schedules())
    @settings(max_examples=20, deadline=None)
    def test_greedy_success_implies_sat(self, network, schedule):
        """A successful greedy run is a constructive witness: SAT
        verification on the same layout must also succeed."""
        from repro.baseline import greedy_dispatch

        net = DiscreteNetwork(network, 0.5)
        layout = VSSLayout.finest(net)
        greedy = greedy_dispatch(net, schedule, 1.0, layout=layout)
        if greedy.success:
            sat = verify_schedule(net, schedule, 1.0, layout=layout)
            assert sat.satisfiable, (
                "greedy witness not accepted by SAT: "
                f"arrivals={greedy.arrivals}, trajectories="
                f"{[[sorted(x) for x in tr] for tr in greedy.trajectories]}"
            )
