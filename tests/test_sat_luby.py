"""Tests for the Luby restart sequence."""

import pytest

from repro.sat.luby import LubyGenerator, luby


def test_known_prefix():
    expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1]
    assert [luby(i) for i in range(1, len(expected) + 1)] == expected


def test_values_are_powers_of_two():
    for i in range(1, 200):
        value = luby(i)
        assert value & (value - 1) == 0  # power of two


def test_positions_of_large_values():
    # luby(2^k - 1) == 2^(k-1)
    for k in range(1, 10):
        assert luby((1 << k) - 1) == 1 << (k - 1)


def test_index_must_be_positive():
    with pytest.raises(ValueError):
        luby(0)


def test_generator_scales_by_base():
    gen = LubyGenerator(100)
    assert [gen.next_limit() for _ in range(7)] == [
        100, 100, 200, 100, 100, 200, 400,
    ]


def test_generator_rejects_bad_base():
    with pytest.raises(ValueError):
        LubyGenerator(0)
