"""Tests for the clause preprocessor, including equivalence properties."""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat import Solver, SolveResult
from repro.sat.simplify import simplify_clauses


def models(num_vars: int, clauses: list[list[int]]) -> set[tuple[bool, ...]]:
    result = set()
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(lit: int) -> bool:
            phase = bits[abs(lit) - 1]
            return phase if lit > 0 else not phase

        if all(any(value(lit) for lit in c) for c in clauses):
            result.add(bits)
    return result


class TestUnits:
    def test_unit_propagation(self):
        clauses = [[1], [-1, 2], [-2, 3]]
        simplified, stats = simplify_clauses(clauses)
        assert stats.units_propagated == 3
        assert sorted(stats.fixed_literals) == [1, 2, 3]
        assert sorted(map(sorted, simplified)) == [[1], [2], [3]]

    def test_conflict_detected(self):
        simplified, stats = simplify_clauses([[1], [-1]])
        assert stats.conflict
        assert simplified == [[]]

    def test_conflict_via_propagation(self):
        simplified, stats = simplify_clauses([[1], [-1, 2], [-2], [3, 4]])
        assert stats.conflict

    def test_tautology_removed(self):
        simplified, stats = simplify_clauses([[1, -1, 2], [3, 4]])
        assert stats.tautologies_removed == 1
        assert simplified == [[3, 4]]

    def test_duplicate_literals_removed(self):
        simplified, stats = simplify_clauses([[1, 1, 2]])
        assert stats.duplicates_removed == 1
        assert simplified == [[1, 2]]


class TestSubsumption:
    def test_direct_subsumption(self):
        simplified, stats = simplify_clauses([[1, 2], [1, 2, 3]])
        assert stats.subsumed_removed == 1
        assert simplified == [[1, 2]]

    def test_identical_clauses_deduplicated(self):
        simplified, stats = simplify_clauses([[1, 2], [2, 1]])
        assert stats.subsumed_removed == 1
        assert len(simplified) == 1

    def test_no_false_subsumption(self):
        clauses = [[1, 2], [1, 3]]
        simplified, stats = simplify_clauses(clauses)
        assert stats.subsumed_removed == 0
        assert len(simplified) == 2


class TestStrengthening:
    def test_self_subsuming_resolution(self):
        # (1 v 2) and (-1 v 2 v 3): the second strengthens to (2 v 3).
        simplified, stats = simplify_clauses([[1, 2], [-1, 2, 3]])
        assert stats.literals_strengthened >= 1
        assert sorted(map(sorted, simplified)) == [[1, 2], [2, 3]]

    def test_strengthening_cascades_into_units(self):
        # (1 v 2), (-1 v 2) -> strengthen to (2) -> unit-propagate.
        simplified, stats = simplify_clauses([[1, 2], [-1, 2]])
        assert 2 in stats.fixed_literals


class TestEquivalenceProperties:
    @given(
        st.lists(
            st.lists(
                st.integers(1, 5).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            ),
            max_size=15,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_models_preserved(self, clauses):
        simplified, stats = simplify_clauses(clauses)
        if stats.conflict:
            assert models(5, clauses) == set()
        else:
            assert models(5, clauses) == models(5, simplified)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_solver_agrees_after_preprocessing(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, num_vars)
             for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 25))
        ]
        simplified, stats = simplify_clauses(clauses)
        direct = Solver()
        for clause in clauses:
            direct.add_clause(clause)
        preprocessed = Solver()
        if stats.conflict:
            assert direct.solve() is SolveResult.UNSAT
            return
        for clause in simplified:
            preprocessed.add_clause(clause)
        assert direct.solve() == preprocessed.solve()


class TestOnEtcsEncodings:
    def test_shrinks_running_example(self):
        from repro.casestudies.running_example import running_example
        from repro.encoding.encoder import EtcsEncoding
        from repro.network.sections import VSSLayout

        study = running_example()
        net = study.discretize()
        encoding = EtcsEncoding(net, study.schedule, study.r_t_min).build()
        encoding.pin_layout(VSSLayout.pure_ttd(net))
        simplified, stats = simplify_clauses(encoding.cnf.clauses)
        # Pinned borders are units: propagation must fire, and the verdict
        # must stay UNSAT.
        assert stats.units_propagated > 0
        solver = Solver()
        solver.ensure_var(encoding.cnf.num_vars)
        if stats.conflict:
            return  # preprocessing alone refuted it: even better
        for clause in simplified:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNSAT
