"""Shared fixtures: small networks and schedules used across the test suite."""

from __future__ import annotations

import pytest

from repro.network.builder import NetworkBuilder
from repro.network.discretize import DiscreteNetwork
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@pytest.fixture
def micro_line():
    """A 3 km straight line: station A — middle — station B (3 TTDs)."""
    return (
        NetworkBuilder()
        .boundary("A")
        .link("m1")
        .link("m2")
        .boundary("B")
        .track("A", "m1", length_km=1.0, ttd="TTD1", name="staA")
        .track("m1", "m2", length_km=1.0, ttd="TTD2", name="mid")
        .track("m2", "B", length_km=1.0, ttd="TTD3", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .build()
    )


@pytest.fixture
def micro_net(micro_line):
    """The micro line at r_s = 0.5 km (6 segments)."""
    return DiscreteNetwork(micro_line, 0.5)


@pytest.fixture
def loop_line():
    """A line with a two-track passing loop in the middle (4 TTDs)."""
    return (
        NetworkBuilder()
        .boundary("A")
        .switch("p1")
        .switch("p2")
        .boundary("B")
        .track("A", "p1", length_km=1.0, ttd="TTD1", name="staA")
        .track("p1", "p2", length_km=1.0, ttd="TTD2", name="up")
        .track("p1", "p2", length_km=1.0, ttd="TTD3", name="down")
        .track("p2", "B", length_km=1.0, ttd="TTD4", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .build()
    )


@pytest.fixture
def loop_net(loop_line):
    """The passing-loop line at r_s = 0.5 km (8 segments)."""
    return DiscreteNetwork(loop_line, 0.5)


@pytest.fixture
def single_train_schedule():
    """One train A -> B over 5 minutes."""
    run = TrainRun(
        Train("T", length_m=400, max_speed_kmh=120),
        start="A",
        goal="B",
        departure_min=0.0,
        arrival_min=4.0,
    )
    return Schedule([run], duration_min=5.0)


@pytest.fixture
def crossing_schedule():
    """Two opposing trains that must cross somewhere."""
    runs = [
        TrainRun(
            Train("E", length_m=400, max_speed_kmh=120),
            start="A",
            goal="B",
            departure_min=0.0,
            arrival_min=5.0,
        ),
        TrainRun(
            Train("W", length_m=400, max_speed_kmh=120),
            start="B",
            goal="A",
            departure_min=0.0,
            arrival_min=5.0,
        ),
    ]
    return Schedule(runs, duration_min=6.0)
