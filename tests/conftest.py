"""Shared fixtures: small networks and schedules used across the test suite.

Also installs a global per-test wall-clock timeout (SIGALRM-based, no
third-party plugin): a hung test — e.g. a fault-injection scenario whose
recovery path regresses — fails with a traceback instead of wedging the
whole suite.  Override the limit with ``REPRO_TEST_TIMEOUT_S``; setting
it to 0 disables the alarm.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.network.builder import NetworkBuilder
from repro.network.discretize import DiscreteNetwork
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train

_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "180"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    usable = (
        _TEST_TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the global {_TEST_TIMEOUT_S:.0f}s timeout "
            "(REPRO_TEST_TIMEOUT_S)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def micro_line():
    """A 3 km straight line: station A — middle — station B (3 TTDs)."""
    return (
        NetworkBuilder()
        .boundary("A")
        .link("m1")
        .link("m2")
        .boundary("B")
        .track("A", "m1", length_km=1.0, ttd="TTD1", name="staA")
        .track("m1", "m2", length_km=1.0, ttd="TTD2", name="mid")
        .track("m2", "B", length_km=1.0, ttd="TTD3", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .build()
    )


@pytest.fixture
def micro_net(micro_line):
    """The micro line at r_s = 0.5 km (6 segments)."""
    return DiscreteNetwork(micro_line, 0.5)


@pytest.fixture
def loop_line():
    """A line with a two-track passing loop in the middle (4 TTDs)."""
    return (
        NetworkBuilder()
        .boundary("A")
        .switch("p1")
        .switch("p2")
        .boundary("B")
        .track("A", "p1", length_km=1.0, ttd="TTD1", name="staA")
        .track("p1", "p2", length_km=1.0, ttd="TTD2", name="up")
        .track("p1", "p2", length_km=1.0, ttd="TTD3", name="down")
        .track("p2", "B", length_km=1.0, ttd="TTD4", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .build()
    )


@pytest.fixture
def loop_net(loop_line):
    """The passing-loop line at r_s = 0.5 km (8 segments)."""
    return DiscreteNetwork(loop_line, 0.5)


@pytest.fixture
def single_train_schedule():
    """One train A -> B over 5 minutes."""
    run = TrainRun(
        Train("T", length_m=400, max_speed_kmh=120),
        start="A",
        goal="B",
        departure_min=0.0,
        arrival_min=4.0,
    )
    return Schedule([run], duration_min=5.0)


@pytest.fixture
def crossing_schedule():
    """Two opposing trains that must cross somewhere."""
    runs = [
        TrainRun(
            Train("E", length_m=400, max_speed_kmh=120),
            start="A",
            goal="B",
            departure_min=0.0,
            arrival_min=5.0,
        ),
        TrainRun(
            Train("W", length_m=400, max_speed_kmh=120),
            start="B",
            goal="A",
            departure_min=0.0,
            arrival_min=5.0,
        ),
    ]
    return Schedule(runs, duration_min=6.0)
