"""Tests for the SAT-based minimisation engines."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.logic import CNF, VarPool
from repro.opt import (
    minimize_lexicographic,
    minimize_sum,
    minimize_sum_core_guided,
)


def brute_force_min(num_vars, clauses, objective):
    best = None
    for bits in itertools.product([False, True], repeat=num_vars):
        def value(lit):
            phase = bits[abs(lit) - 1]
            return phase if lit > 0 else not phase

        if all(any(value(lit) for lit in c) for c in clauses):
            cost = sum(1 for lit in objective if value(lit))
            best = cost if best is None else min(best, cost)
    return best


def build(num_vars, clauses):
    cnf = CNF(VarPool())
    for v in range(1, num_vars + 1):
        cnf.pool.var(v)
    for clause in clauses:
        cnf.add(clause)
    return cnf


ENGINES = [
    ("linear", lambda cnf, obj: minimize_sum(cnf, obj, strategy="linear")),
    ("binary", lambda cnf, obj: minimize_sum(cnf, obj, strategy="binary")),
    ("core", minimize_sum_core_guided),
]


class TestEnginesAgainstBruteForce:
    @pytest.mark.parametrize("name,engine", ENGINES)
    def test_random_instances(self, name, engine):
        rng = random.Random(hash(name) & 0xFFFF)
        for __ in range(40):
            num_vars = rng.randint(2, 7)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, num_vars)
                 for _ in range(rng.randint(1, 3))]
                for _ in range(rng.randint(1, 15))
            ]
            objective = [
                rng.choice([1, -1]) * v
                for v in rng.sample(range(1, num_vars + 1),
                                    rng.randint(1, num_vars))
            ]
            expected = brute_force_min(num_vars, clauses, objective)
            result = engine(build(num_vars, clauses), list(objective))
            if expected is None:
                assert not result.feasible
            else:
                assert result.feasible
                assert result.proven_optimal
                assert result.cost == expected

    @pytest.mark.parametrize("name,engine", ENGINES)
    def test_infeasible(self, name, engine):
        cnf = build(1, [[1], [-1]])
        result = engine(cnf, [1])
        assert not result.feasible

    @pytest.mark.parametrize("name,engine", ENGINES)
    def test_zero_cost_possible(self, name, engine):
        cnf = build(3, [[1, 2, 3]])
        result = engine(cnf, [])
        assert result.feasible and result.cost == 0 and result.proven_optimal

    @pytest.mark.parametrize("name,engine", ENGINES)
    def test_all_soft_forced(self, name, engine):
        cnf = build(3, [[1], [2], [3]])
        result = engine(cnf, [1, 2, 3])
        assert result.feasible and result.cost == 3 and result.proven_optimal

    @pytest.mark.parametrize("name,engine", ENGINES)
    def test_model_satisfies_hard_clauses(self, name, engine):
        clauses = [[1, 2], [-1, 3], [-2, -3, 4]]
        cnf = build(4, clauses)
        result = engine(cnf, [1, 2, 3, 4])
        true_set = result.true_set()

        def value(lit):
            return (abs(lit) in true_set) == (lit > 0)

        assert all(any(value(lit) for lit in clause) for clause in clauses)


class TestMinimizeSumDetails:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            minimize_sum(build(1, [[1]]), [1], strategy="quantum")

    def test_on_improvement_callback(self):
        costs = []
        cnf = build(4, [[1, 2, 3, 4]])
        minimize_sum(cnf, [1, 2, 3, 4], on_improvement=costs.append)
        assert costs  # called at least once
        assert costs[-1] == 1
        assert costs == sorted(costs, reverse=True)

    def test_solve_calls_counted(self):
        cnf = build(4, [[1, 2, 3, 4]])
        result = minimize_sum(cnf, [1, 2, 3, 4])
        assert result.solve_calls >= 2


class TestLexicographic:
    def test_two_objectives(self):
        cnf = build(4, [[1, 2], [3, 4]])
        results = minimize_lexicographic(cnf, [[1, 2], [3, 4]])
        assert [r.cost for r in results] == [1, 1]

    def test_priority_order_matters(self):
        # x1 + x2 >= 1 hard; obj1 = x1, obj2 = x2.
        # Minimising x1 first forces x1 = 0, so x2 must be 1.
        cnf = build(2, [[1, 2]])
        results = minimize_lexicographic(cnf, [[1], [2]])
        assert results[0].cost == 0
        assert results[1].cost == 1

    def test_infeasible_stops_early(self):
        cnf = build(1, [[1], [-1]])
        results = minimize_lexicographic(cnf, [[1], [1]])
        assert len(results) == 1
        assert not results[0].feasible

    def test_empty_objective_list_rejected(self):
        with pytest.raises(ValueError):
            minimize_lexicographic(build(1, [[1]]), [])

    def test_binary_strategy(self):
        cnf = build(4, [[1, 2], [3, 4]])
        results = minimize_lexicographic(cnf, [[1, 2], [3, 4]],
                                         strategy="binary")
        assert [r.cost for r in results] == [1, 1]
