"""Progress/event delivery under the parallel solve paths (satellite).

Covers ``Solver.on_progress`` snapshots and event-stream delivery when a
portfolio race or a solver-service probe is in flight — including the
awkward case of a wall deadline expiring mid-solve, where the callbacks
must keep arriving right up to the cooperative give-up.
"""

from __future__ import annotations

import pytest

from repro.obs import events
from repro.sat import (
    PortfolioMember,
    Solver,
    SolveResult,
    SolverConfig,
    solve_portfolio,
)
from repro.sat import portfolio as portfolio_module
from repro.sat import service as service_module
from repro.sat.portfolio import fork_available
from repro.sat.service import SolverService

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@pytest.fixture(autouse=True)
def _clean_events():
    events.reset()
    yield
    events.reset()


def _php(holes: int) -> tuple[int, list[list[int]]]:
    """Pigeonhole PHP(holes+1, holes): conflict-rich, hard UNSAT."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestSerialDeadlineDelivery:
    def test_progress_and_deadline_events_while_budget_expires(self):
        """Snapshots keep flowing until the wall deadline fires."""
        log = events.install(events.EventLog())
        snapshots = []
        num_vars, clauses = _php(9)  # far beyond a 0.15 s budget
        solver = Solver(SolverConfig(wall_deadline_s=0.15))
        solver.on_progress(snapshots.append, interval_conflicts=50)
        solver.on_event(events.emit)
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.UNKNOWN
        assert solver.stats.deadline_hits >= 1
        assert snapshots, "no progress snapshot before the deadline"
        assert all("conflicts" in snap for snap in snapshots)
        kinds = log.counts()
        assert kinds.get("deadline.hit", 0) >= 1
        # The deadline event carries the conflict count at expiry.
        hit = [r for r in log.export() if r["kind"] == "deadline.hit"][-1]
        assert hit["args"]["conflicts"] > 0


@needs_fork
class TestPortfolioDelivery:
    def test_member_progress_events_are_merged(self, monkeypatch):
        monkeypatch.setattr(portfolio_module, "_PROGRESS_EVERY", 20)
        log = events.install(events.EventLog())
        num_vars, clauses = _php(6)
        result = solve_portfolio(num_vars, clauses, processes=2)
        assert result.verdict is SolveResult.UNSAT
        merged = log.export()
        progress = [r for r in merged if r["kind"] == "progress"]
        assert progress, "no member progress events reached the parent"
        # Worker events name their member and keep their worker source.
        assert all("member" in r["args"] for r in progress)
        assert {r["source"] for r in progress} != {"main"}
        seqs = [r["seq"] for r in merged]
        assert seqs == sorted(seqs)

    def test_deadline_expires_mid_race(self, monkeypatch):
        """Members on a wall budget still deliver progress + the hit."""
        monkeypatch.setattr(portfolio_module, "_PROGRESS_EVERY", 20)
        log = events.install(events.EventLog())
        num_vars, clauses = _php(9)  # unsolvable inside the budget
        members = [
            PortfolioMember("tight-1", SolverConfig(wall_deadline_s=0.2)),
            PortfolioMember("tight-2", SolverConfig(wall_deadline_s=0.2,
                                                    use_phase_saving=False)),
        ]
        result = solve_portfolio(
            num_vars, clauses, members=members, processes=2, timeout_s=30
        )
        assert result.verdict is SolveResult.UNKNOWN
        kinds = log.counts()
        assert kinds.get("progress", 0) > 0
        assert kinds.get("deadline.hit", 0) >= 1
        hits = [r for r in log.export() if r["kind"] == "deadline.hit"]
        assert {r["args"]["member"] for r in hits} <= {"tight-1", "tight-2"}


@needs_fork
class TestServiceDelivery:
    def test_probe_events_reach_the_parent(self, monkeypatch):
        monkeypatch.setattr(service_module, "_PROGRESS_EVENT_CHECKS", 1)
        log = events.install(events.EventLog())
        num_vars, clauses = _php(5)
        service = SolverService(num_vars, clauses, processes=2)
        with service:
            outcome = service.probe()
        assert outcome.verdict is SolveResult.UNSAT
        kinds = log.counts()
        assert kinds.get("probe.done", 0) == 1
        assert kinds.get("deadline.hit", 0) == 0
        done = [r for r in log.export() if r["kind"] == "probe.done"][0]
        assert done["args"]["verdict"] == SolveResult.UNSAT.value

    def test_probe_deadline_expires_mid_solve(self, monkeypatch):
        monkeypatch.setattr(service_module, "_PROGRESS_EVENT_CHECKS", 1)
        log = events.install(events.EventLog())
        num_vars, clauses = _php(9)
        service = SolverService(num_vars, clauses, processes=2)
        with service:
            outcome = service.probe(timeout_s=0.25)
        assert outcome.verdict is SolveResult.UNKNOWN
        assert outcome.timed_out
        merged = log.export()
        kinds = log.counts()
        # The parent stamps the probe-scoped deadline event ...
        hits = [r for r in merged if r["kind"] == "deadline.hit"
                and r["args"].get("scope") == "probe"]
        assert hits and hits[0]["args"]["probe"] == 1
        assert kinds.get("probe.done", 0) == 1
        # ... while the workers' progress events arrive from their own
        # per-member child logs, merged onto one monotone timeline.
        progress = [r for r in merged if r["kind"] == "progress"]
        assert progress, "no worker progress during the timed-out probe"
        assert any(
            r["source"].startswith("service:") for r in progress
        )
        seqs = [r["seq"] for r in merged]
        assert seqs == sorted(seqs)

    def test_no_events_shipped_when_stream_disabled(self):
        num_vars, clauses = _php(4)
        service = SolverService(num_vars, clauses, processes=2)
        with service:
            outcome = service.probe()
        assert outcome.verdict is SolveResult.UNSAT
        assert events.export_events() == []
