"""Tests for the resolution-sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.analysis import resolution_sweep
from repro.analysis.sensitivity import format_sweep
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@pytest.fixture
def schedule():
    return Schedule(
        [TrainRun(Train("T", 400, 120), "A", "B", 0.0, 4.0)],
        duration_min=5.0,
    )


class TestSweep:
    def test_sizes_scale_with_resolution(self, micro_line, schedule):
        points = resolution_sweep(
            micro_line, schedule, [(1.0, 1.0), (0.5, 0.5), (0.25, 0.25)]
        )
        assert [p.segments for p in points] == [3, 6, 12]
        assert [p.t_max for p in points] == [5, 10, 20]
        assert (points[0].paper_vars < points[1].paper_vars
                < points[2].paper_vars)

    def test_feasible_across_resolutions(self, micro_line, schedule):
        points = resolution_sweep(
            micro_line, schedule, [(1.0, 1.0), (0.5, 0.5)]
        )
        assert all(p.satisfiable for p in points)
        assert all(p.sections is not None for p in points)

    def test_generate_task(self, micro_line, schedule):
        points = resolution_sweep(
            micro_line, schedule, [(0.5, 0.5)], task="generate"
        )
        assert points[0].satisfiable

    def test_unknown_task(self, micro_line, schedule):
        with pytest.raises(ValueError):
            resolution_sweep(micro_line, schedule, [(0.5, 0.5)], task="fly")

    def test_undiscretisable_point_reported(self, micro_line):
        # A 1.5 km train cannot fit station A (1 km) at any resolution.
        schedule = Schedule(
            [TrainRun(Train("XXL", 1500, 120), "A", "B", 0.0, 4.0)],
            duration_min=5.0,
        )
        points = resolution_sweep(micro_line, schedule, [(0.5, 0.5)])
        assert points[0].satisfiable is None
        assert "does not fit" in points[0].error

    def test_coarse_grid_can_flip_verdict(self, micro_line):
        """At r_s = 3 km the whole line is 1 segment per track; the deadline
        arithmetic coarsens and the verdict may differ from the fine grid —
        the sweep exposes it rather than hiding it."""
        schedule = Schedule(
            [TrainRun(Train("T", 400, 60), "A", "B", 0.0, 2.0)],
            duration_min=5.0,
        )
        points = resolution_sweep(
            micro_line, schedule, [(0.25, 0.25), (3.0, 2.5)]
        )
        fine, coarse = points
        assert fine.satisfiable is not None
        assert coarse.satisfiable is not None
        # Both verdicts are recorded; equality is *not* guaranteed.
        assert isinstance(fine.satisfiable, bool)

    def test_running_example_matches_paper_point(self):
        from repro.casestudies.running_example import (
            running_example_network,
            running_example_schedule,
        )

        points = resolution_sweep(
            running_example_network(),
            running_example_schedule(),
            [(0.5, 0.5)],
        )
        assert points[0].segments == 16
        assert points[0].t_max == 10
        assert points[0].satisfiable is False  # Table I verification row


class TestFormatting:
    def test_table_renders(self, micro_line, schedule):
        points = resolution_sweep(micro_line, schedule, [(0.5, 0.5)])
        text = format_sweep(points)
        assert "r_s" in text and "yes" in text

    def test_na_for_failed_points(self, micro_line):
        schedule = Schedule(
            [TrainRun(Train("XXL", 1500, 120), "A", "B", 0.0, 4.0)],
            duration_min=5.0,
        )
        points = resolution_sweep(micro_line, schedule, [(0.5, 0.5)])
        assert "n/a" in format_sweep(points)
