"""Tests for the fluent network builder."""

from __future__ import annotations

import pytest

from repro.network.builder import NetworkBuilder
from repro.network.topology import NetworkError, NodeKind


class TestBuilder:
    def test_basic_chain(self):
        network = (
            NetworkBuilder()
            .boundary("A")
            .link("m")
            .boundary("B")
            .track("A", "m", length_km=1.0, ttd="T1")
            .track("m", "B", length_km=2.0, ttd="T2")
            .build()
        )
        assert set(network.tracks) == {"A-m", "m-B"}
        assert network.nodes["A"].kind is NodeKind.BOUNDARY
        assert network.nodes["m"].kind is NodeKind.LINK

    def test_named_track(self):
        network = (
            NetworkBuilder()
            .boundary("A")
            .boundary("B")
            .track("A", "B", length_km=1.0, ttd="T", name="main")
            .build()
        )
        assert "main" in network.tracks

    def test_duplicate_node_rejected(self):
        with pytest.raises(NetworkError):
            NetworkBuilder().boundary("A").link("A")

    def test_duplicate_track_rejected(self):
        builder = (
            NetworkBuilder()
            .boundary("A")
            .boundary("B")
            .track("A", "B", length_km=1.0, ttd="T", name="x")
        )
        with pytest.raises(NetworkError):
            builder.track("A", "B", length_km=1.0, ttd="T", name="x")

    def test_track_requires_declared_nodes(self):
        with pytest.raises(NetworkError, match="declare nodes"):
            NetworkBuilder().boundary("A").track("A", "B", 1.0, "T")

    def test_duplicate_station_rejected(self):
        builder = (
            NetworkBuilder()
            .boundary("A")
            .boundary("B")
            .track("A", "B", 1.0, "T")
            .station("S", ["A-B"])
        )
        with pytest.raises(NetworkError):
            builder.station("S", ["A-B"])

    def test_line_helper(self):
        network = (
            NetworkBuilder()
            .boundary("A")
            .link("m1")
            .link("m2")
            .boundary("B")
            .line(["A", "m1", "m2", "B"], length_km=1.0, ttd="T",
                  name_prefix="seg")
            .build()
        )
        assert set(network.tracks) == {"seg.0", "seg.1", "seg.2"}
        assert network.total_length_km == pytest.approx(3.0)

    def test_line_needs_two_nodes(self):
        with pytest.raises(NetworkError):
            NetworkBuilder().boundary("A").line(["A"], 1.0, "T")

    def test_build_validates(self):
        # A dangling link node fails network validation at build time.
        builder = (
            NetworkBuilder()
            .boundary("A")
            .link("m")
            .track("A", "m", 1.0, "T")
        )
        with pytest.raises(NetworkError):
            builder.build()
