"""Tests for the four §IV case studies.

Structure checks run for all four; full task reproduction runs on the
running example (fast) — the complete Table I lives in the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.casestudies import all_case_studies
from repro.casestudies.complex_layout import complex_layout
from repro.casestudies.nordlandsbanen import (
    STATIONS,
    is_crossing_station,
    nordlandsbanen,
)
from repro.casestudies.running_example import running_example
from repro.casestudies.simple_layout import simple_layout
from repro.tasks import generate_layout, optimize_schedule, verify_schedule


class TestInventory:
    def test_four_studies_in_paper_order(self):
        names = [study.name for study in all_case_studies()]
        assert names == [
            "Running Example",
            "Simple Layout",
            "Complex Layout",
            "Nordlandsbanen",
        ]

    def test_each_study_has_paper_rows(self):
        for study in all_case_studies():
            tasks = [row.task for row in study.paper_rows]
            assert tasks == ["verification", "generation", "optimization"]

    def test_paper_row_verdicts(self):
        for study in all_case_studies():
            verification, generation, optimization = study.paper_rows
            assert not verification.satisfiable
            assert generation.satisfiable
            assert optimization.satisfiable


class TestRunningExample:
    def test_structure_matches_paper(self):
        study = running_example()
        net = study.discretize()
        assert net.num_ttds == 4
        assert net.num_segments == 16  # -> 640 occupies variables (Fig. 3)
        assert study.network.total_length_km == pytest.approx(8.0)
        assert len(study.schedule) == 4

    def test_schedule_is_fig_1b(self):
        study = running_example()
        by_name = {run.train.name: run for run in study.schedule}
        assert by_name["1"].train.max_speed_kmh == 180
        assert by_name["2"].train.length_m == 700
        assert by_name["3"].goal == "C"
        assert by_name["4"].departure_min == 1.0
        assert study.schedule.duration_min == 5.0

    def test_verification_unsat(self):
        study = running_example()
        net = study.discretize()
        result = verify_schedule(net, study.schedule, study.r_t_min)
        assert not result.satisfiable
        assert result.num_sections == 4

    def test_generation_five_sections(self):
        study = running_example()
        net = study.discretize()
        result = generate_layout(net, study.schedule, study.r_t_min)
        assert result.satisfiable and result.proven_optimal
        assert result.num_sections == 5  # the paper's Table I value

    def test_optimization_seven_steps(self):
        study = running_example()
        net = study.discretize()
        result = optimize_schedule(
            net, study.schedule, study.r_t_min,
            minimize_borders_secondary=True,
        )
        assert result.satisfiable and result.proven_optimal
        assert result.time_steps == 7  # the paper's Table I value
        assert result.num_sections == 7  # the paper's Table I value

    def test_variables_close_to_paper(self):
        study = running_example()
        net = study.discretize()
        result = verify_schedule(net, study.schedule, study.r_t_min)
        assert abs(result.variables - 654) <= 10


class TestSimpleLayout:
    def test_structure(self):
        study = simple_layout()
        net = study.discretize()
        assert net.num_ttds == 10  # the paper's Table I value
        assert net.num_segments == 48
        assert len(study.schedule) == 4

    def test_verification_unsat(self):
        study = simple_layout()
        result = verify_schedule(
            study.discretize(), study.schedule, study.r_t_min
        )
        assert not result.satisfiable

    def test_generation_sat_few_borders(self):
        study = simple_layout()
        result = generate_layout(
            study.discretize(), study.schedule, study.r_t_min
        )
        assert result.satisfiable and result.proven_optimal
        assert 1 <= result.objective_value <= 5


class TestComplexLayout:
    def test_structure(self):
        study = complex_layout()
        net = study.discretize()
        assert net.num_ttds == 22  # the paper's Table I value
        assert net.num_segments == 157
        assert len(study.schedule) == 5
        # Stations A..F all present with two platforms each.
        assert set(study.network.stations) == set("ABCDEF")
        for tracks in study.network.stations.values():
            assert len(tracks) == 2

    def test_verification_unsat(self):
        study = complex_layout()
        result = verify_schedule(
            study.discretize(), study.schedule, study.r_t_min
        )
        assert not result.satisfiable


class TestNordlandsbanen:
    def test_structure(self):
        study = nordlandsbanen()
        net = study.discretize()
        assert len(STATIONS) == 58
        assert STATIONS[0] == "Trondheim"
        assert STATIONS[-1] == "Bodø"
        # 822 km of line plus the loop tracks and the Bodø stub.
        loop_km = sum(
            5.0 for i in range(len(STATIONS)) if is_crossing_station(i)
        )
        assert study.network.total_length_km == pytest.approx(
            822.0 + loop_km + 5.0
        )
        assert 45 <= net.num_ttds <= 55  # paper: 51
        assert len(study.schedule) == 3

    def test_crossing_stations_have_loops(self):
        study = nordlandsbanen()
        for index, name in enumerate(STATIONS):
            tracks = study.network.stations[name]
            assert len(tracks) == (2 if is_crossing_station(index) else 1)

    def test_paper_equivalent_vars_close(self):
        study = nordlandsbanen()
        net = study.discretize()
        result = verify_schedule(net, study.schedule, study.r_t_min)
        # Paper: 21156. Same order of magnitude required.
        assert 18_000 <= result.variables <= 25_000

    def test_verification_unsat(self):
        study = nordlandsbanen()
        result = verify_schedule(
            study.discretize(), study.schedule, study.r_t_min
        )
        assert not result.satisfiable

    def test_generation_sat(self):
        study = nordlandsbanen()
        result = generate_layout(
            study.discretize(), study.schedule, study.r_t_min
        )
        assert result.satisfiable
        assert result.proven_optimal
        assert 1 <= result.objective_value <= 8  # paper adds 2 sections
