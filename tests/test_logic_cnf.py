"""Tests for VarPool and CNF containers."""

from __future__ import annotations

import pytest

from repro.logic import CNF, VarPool
from repro.sat import SolveResult


class TestVarPool:
    def test_names_get_distinct_numbers(self):
        pool = VarPool()
        a = pool.var(("x", 1))
        b = pool.var(("x", 2))
        assert a != b
        assert pool.var(("x", 1)) == a  # stable

    def test_lookup_and_name_of(self):
        pool = VarPool()
        a = pool.var("a")
        assert pool.lookup("a") == a
        assert pool.lookup("b") is None
        assert pool.name_of(a) == "a"

    def test_aux_vars_are_anonymous(self):
        pool = VarPool()
        pool.var("named")
        aux = pool.new_aux()
        assert pool.name_of(aux) is None
        assert pool.num_aux == 1
        assert pool.num_named == 1
        assert pool.num_vars == 2

    def test_aux_and_named_never_collide(self):
        pool = VarPool()
        numbers = set()
        for i in range(50):
            numbers.add(pool.var(("n", i)))
            numbers.add(pool.new_aux())
        assert len(numbers) == 100

    def test_contains(self):
        pool = VarPool()
        pool.var("x")
        assert "x" in pool
        assert "y" not in pool

    def test_empty_pool_is_falsy_but_usable(self):
        # Regression: `pool or VarPool()` used to silently replace an empty
        # shared pool because VarPool defines __len__.
        pool = VarPool()
        assert len(pool) == 0
        cnf = CNF(pool)
        assert cnf.pool is pool
        from repro.encoding.variables import VariableRegistry

        registry = VariableRegistry(pool)
        assert registry.pool is pool


class TestCNF:
    def test_add_and_count(self):
        cnf = CNF()
        cnf.add([1, -2])
        cnf.add_unit(3)
        cnf.add_implication(1, [4, 5])
        assert cnf.num_clauses == 3
        assert cnf.clauses[2] == [-1, 4, 5]
        assert cnf.literals_size() == 6

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            CNF().add([1, 0])

    def test_add_all(self):
        cnf = CNF()
        cnf.add_all([[1], [2, 3]])
        assert cnf.num_clauses == 2

    def test_to_solver_roundtrip(self):
        cnf = CNF()
        a = cnf.pool.var("a")
        b = cnf.pool.var("b")
        cnf.add([a, b])
        cnf.add([-a])
        solver = cnf.to_solver()
        assert solver.solve() is SolveResult.SAT
        assert solver.model_value(b) is True

    def test_to_solver_reuses_given_solver(self):
        from repro.sat import Solver

        cnf = CNF()
        a = cnf.pool.var("a")
        cnf.add([a])
        solver = Solver()
        returned = cnf.to_solver(solver)
        assert returned is solver

    def test_to_solver_declares_all_vars(self):
        cnf = CNF()
        cnf.pool.var("unused1")
        cnf.pool.var("unused2")
        solver = cnf.to_solver()
        assert solver.num_vars >= 2
