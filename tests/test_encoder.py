"""Semantic tests of the CNF encoder on micro networks.

Each test builds a small scenario, solves it, and checks the *decoded*
behaviour — placement, movement, separation, collision — rather than the raw
clauses, so the tests stay robust under encoding refactorings.
"""

from __future__ import annotations

import pytest

from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.encoding.validate import validate_solution
from repro.network.sections import VSSLayout
from repro.sat import SolveResult
from repro.trains.schedule import Schedule, Stop, TrainRun
from repro.trains.train import Train


def solve(encoding):
    solver = encoding.cnf.to_solver()
    verdict = solver.solve()
    if verdict is not SolveResult.SAT:
        return None
    return encoding.decode({lit for lit in solver.model() if lit > 0})


def build(net, schedule, r_t=0.5, options=None):
    return EtcsEncoding(net, schedule, r_t, options).build()


class TestSingleTrain:
    def test_reaches_goal(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve(encoding)
        assert solution is not None
        trajectory = solution.trajectories[0]
        assert trajectory.arrival_step is not None
        assert trajectory.arrival_step <= 8
        assert validate_solution(encoding, solution) == []

    def test_impossible_deadline_unsat(self, micro_net):
        # 3 km to cover, 60 km/h = 1 segment/step, deadline after 2 steps.
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        encoding = build(micro_net, Schedule([run], 5.0))
        assert solve(encoding) is None

    def test_long_train_occupies_chain(self, micro_net):
        run = TrainRun(Train("T", 900, 120), "A", "B", 0.0, 4.5)
        encoding = build(micro_net, Schedule([run], 5.0))
        solution = solve(encoding)
        assert solution is not None
        for occupied in solution.trajectories[0].steps:
            assert not occupied or len(occupied) == 2
        assert validate_solution(encoding, solution) == []

    def test_departure_touches_start(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        solution = solve(encoding)
        start = set(encoding.runs[0].start_segments)
        assert solution.trajectories[0].steps[0] & start

    def test_late_departure_absent_before(self, micro_net):
        run = TrainRun(Train("T", 100, 120), "A", "B", 2.0, 4.5)
        encoding = build(micro_net, Schedule([run], 5.0))
        solution = solve(encoding)
        assert solution.trajectories[0].steps[0] == frozenset()
        assert solution.trajectories[0].steps[3] == frozenset()
        assert solution.trajectories[0].steps[4] != frozenset()

    def test_stop_constraint_enforced(self, micro_net):
        micro_net.network.stations["M"] = ["mid"]
        run = TrainRun(
            Train("T", 100, 120), "A", "B", 0.0, 4.5,
            stops=(Stop("M", earliest_min=1.0, latest_min=2.5),),
        )
        encoding = build(micro_net, Schedule([run], 5.0))
        solution = solve(encoding)
        assert solution is not None
        mid = set(micro_net.track_segments("mid"))
        visited = any(
            solution.trajectories[0].steps[t] & mid for t in range(2, 6)
        )
        assert visited


class TestTwoTrains:
    def test_opposing_trains_need_loop(self, micro_line, crossing_schedule):
        """On a plain line two opposing trains can never pass: UNSAT.

        Single-segment stations (r_s = 1 km): there is no room to shuffle
        within a station, so the trains would have to pass through each
        other somewhere on the line.
        """
        from repro.network.discretize import DiscreteNetwork

        coarse = DiscreteNetwork(micro_line, 1.0)
        encoding = build(coarse, crossing_schedule)
        assert solve(encoding) is None

    def test_opposing_trains_can_shuffle_in_station(self, micro_net,
                                                    crossing_schedule):
        """With two-segment stations the trains may meet inside a VSS-split
        station: one pulls to the outer segment, the other touches its goal
        behind it, then both leave — legitimately SAT."""
        encoding = build(micro_net, crossing_schedule)
        solution = solve(encoding)
        assert solution is not None
        assert validate_solution(encoding, solution) == []

    def test_opposing_trains_cross_at_loop(self, loop_net, crossing_schedule):
        encoding = build(loop_net, crossing_schedule)
        solution = solve(encoding)
        assert solution is not None
        assert validate_solution(encoding, solution) == []

    def test_same_segment_never_shared(self, loop_net, crossing_schedule):
        encoding = build(loop_net, crossing_schedule)
        solution = solve(encoding)
        for t in range(encoding.t_max):
            a = solution.trajectories[0].steps[t]
            b = solution.trajectories[1].steps[t]
            assert not (a & b)

    def test_pure_ttd_forbids_sharing(self, loop_net):
        """Two trains in one TTD with no free border: pinned layout UNSAT."""
        runs = [
            TrainRun(Train("1", 100, 120), "A", "B", 0.0, 5.0),
            TrainRun(Train("2", 100, 120), "A", "B", 1.0, 5.5),
        ]
        encoding = build(loop_net, Schedule(runs, 6.0))
        encoding.pin_layout(VSSLayout.pure_ttd(loop_net))
        # Train 2 departs while train 1 may still be in staA's TTD; but
        # with 2 segments and full VSS it would work. Pure TTD: they must
        # never share TTD1 -> train 1 must clear before step 2 (it can,
        # 120 km/h = 3 segments/step), so this is actually SAT.
        solution = solve(encoding)
        if solution is not None:
            section_of = solution.layout.section_of()
            for t in range(encoding.t_max):
                sections_a = {
                    section_of[e] for e in solution.trajectories[0].steps[t]
                }
                sections_b = {
                    section_of[e] for e in solution.trajectories[1].steps[t]
                }
                assert not (sections_a & sections_b)

    def test_vss_allows_following_in_one_ttd(self, micro_net):
        """Two same-direction trains share a TTD once a border splits it."""
        runs = [
            TrainRun(Train("1", 100, 60), "A", "B", 0.0, None),
            TrainRun(Train("2", 100, 60), "A", "B", 1.0, None),
        ]
        encoding = build(micro_net, Schedule(runs, 5.0))
        solution = solve(encoding)
        assert solution is not None
        assert validate_solution(encoding, solution) == []
        shared_ttd_steps = [
            t
            for t in range(encoding.t_max)
            if solution.trajectories[0].steps[t]
            and solution.trajectories[1].steps[t]
            and {
                micro_net.ttd_of[e]
                for e in solution.trajectories[0].steps[t]
            }
            & {
                micro_net.ttd_of[e]
                for e in solution.trajectories[1].steps[t]
            }
        ]
        if shared_ttd_steps:  # whenever they share a TTD, a border splits it
            section_of = solution.layout.section_of()
            for t in shared_ttd_steps:
                sections_a = {
                    section_of[e] for e in solution.trajectories[0].steps[t]
                }
                sections_b = {
                    section_of[e] for e in solution.trajectories[1].steps[t]
                }
                assert not (sections_a & sections_b)


class TestTaskHooks:
    def test_pin_layout_fixes_borders(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        layout = VSSLayout.pure_ttd(micro_net)
        encoding.pin_layout(layout)
        solution = solve(encoding)
        assert solution is not None
        assert solution.layout == layout

    def test_pin_waypoints(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        encoding.pin_waypoints([("T", "B", 6)])
        solution = solve(encoding)
        assert solution is not None
        goal = set(micro_net.station_segments("B"))
        assert solution.trajectories[0].steps[6] & goal

    def test_pin_waypoints_unknown_train(self, micro_net,
                                          single_train_schedule):
        from repro.trains.schedule import ScheduleError

        encoding = build(micro_net, single_train_schedule)
        with pytest.raises(ScheduleError):
            encoding.pin_waypoints([("nope", "B", 6)])

    def test_pin_waypoints_step_out_of_range(self, micro_net,
                                             single_train_schedule):
        from repro.trains.schedule import ScheduleError

        encoding = build(micro_net, single_train_schedule)
        with pytest.raises(ScheduleError):
            encoding.pin_waypoints([("T", "B", 99)])

    def test_border_objective_lists_free_vertices(self, micro_net,
                                                  single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        objective = encoding.border_objective()
        assert len(objective) == len(micro_net.free_border_candidates())

    def test_makespan_objective_length(self, micro_net,
                                       single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        objective = encoding.makespan_objective()
        assert len(objective) == encoding.t_max
        assert all(lit < 0 for lit in objective)

    def test_build_twice_rejected(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        with pytest.raises(RuntimeError):
            encoding.build()

    def test_stats_shape(self, micro_net, single_train_schedule):
        encoding = build(micro_net, single_train_schedule)
        stats = encoding.stats()
        assert stats["clauses"] == encoding.cnf.num_clauses
        assert stats["paper_equivalent_vars"] == (
            micro_net.num_vertices
            + 1 * micro_net.num_segments * encoding.t_max
        )
        assert stats["t_max"] == 10


class TestEncodingOptions:
    @pytest.mark.parametrize("amo", ["pairwise", "ladder", "commander"])
    def test_amo_variants_agree(self, loop_net, crossing_schedule, amo):
        encoding = build(
            loop_net, crossing_schedule, options=EncodingOptions(amo=amo)
        )
        solution = solve(encoding)
        assert solution is not None
        assert validate_solution(encoding, solution) == []

    def test_cone_disabled_still_correct(self, loop_net, crossing_schedule):
        encoding = build(
            loop_net,
            crossing_schedule,
            options=EncodingOptions(use_cone=False),
        )
        solution = solve(encoding)
        assert solution is not None
        assert validate_solution(encoding, solution) == []

    def test_cone_shrinks_encoding(self, loop_net, crossing_schedule):
        small = build(loop_net, crossing_schedule)
        large = build(
            loop_net,
            crossing_schedule,
            options=EncodingOptions(use_cone=False),
        )
        assert small.cnf.num_vars < large.cnf.num_vars
        assert small.cnf.num_clauses < large.cnf.num_clauses

    def test_swap_clauses_prevent_pass_through(self, micro_line):
        """With swap clauses the single-cell-station line scenario is UNSAT;
        without them the trains tunnel through each other."""
        from repro.network.discretize import DiscreteNetwork

        coarse = DiscreteNetwork(micro_line, 1.0)
        runs = [
            TrainRun(Train("1", 100, 60), "A", "B", 0.0, None),
            TrainRun(Train("2", 100, 60), "B", "A", 0.0, None),
        ]
        schedule = Schedule(runs, 8.0)
        with_swap = build(coarse, schedule)
        assert solve(with_swap) is None
        without = build(
            coarse,
            schedule,
            options=EncodingOptions(add_swap_clauses=False),
        )
        tunneled = solve(without)
        assert tunneled is not None  # the soundness gap the clauses close
        assert validate_solution(without, tunneled) != []
