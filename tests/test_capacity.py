"""Tests for the capacity (budget vs makespan) analysis."""

from __future__ import annotations

import pytest

from repro.tasks import (
    best_makespan_with_budget,
    capacity_curve,
    optimize_schedule,
)
from repro.tasks.capacity import format_capacity_curve
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@pytest.fixture
def convoy_schedule():
    """Two same-direction trains: each border buys closer following."""
    return Schedule(
        [
            TrainRun(Train("1", 100, 60), "A", "B", 0.0, None),
            TrainRun(Train("2", 100, 60), "A", "B", 0.5, None),
        ],
        duration_min=5.0,
    )


class TestSinglePoint:
    def test_unlimited_budget_matches_optimize(self, micro_net,
                                               convoy_schedule):
        point = best_makespan_with_budget(
            micro_net, convoy_schedule, 0.5, budget=None
        )
        reference = optimize_schedule(micro_net, convoy_schedule, 0.5)
        assert point.feasible and point.proven_optimal
        assert point.makespan == reference.time_steps

    def test_budget_respected(self, micro_net, convoy_schedule):
        for budget in (0, 1, 2):
            point = best_makespan_with_budget(
                micro_net, convoy_schedule, 0.5, budget=budget
            )
            assert point.feasible
            assert point.borders_used <= budget

    def test_infeasible_horizon(self, micro_net):
        # One train that cannot complete within a 1-step horizon.
        schedule = Schedule(
            [TrainRun(Train("T", 100, 60), "A", "B", 0.0, None)],
            duration_min=0.5,
        )
        point = best_makespan_with_budget(micro_net, schedule, 0.5, budget=0)
        assert not point.feasible
        assert point.makespan is None


class TestCurve:
    def test_monotone_nonincreasing(self, micro_net, convoy_schedule):
        points = capacity_curve(
            micro_net, convoy_schedule, 0.5, budgets=[0, 1, 2, None]
        )
        makespans = [p.makespan for p in points]
        assert all(m is not None for m in makespans)
        assert makespans == sorted(makespans, reverse=True)

    def test_borders_eventually_help_convoy(self, micro_net,
                                             convoy_schedule):
        zero, two = capacity_curve(
            micro_net, convoy_schedule, 0.5, budgets=[0, 2]
        )
        # With budget 0 the follower waits a whole TTD behind; on this
        # micro net it takes two virtual borders for it to gain a step.
        assert two.makespan < zero.makespan
        assert two.borders_used == 2

    def test_formatting(self, micro_net, convoy_schedule):
        points = capacity_curve(
            micro_net, convoy_schedule, 0.5, budgets=[0, 1, None]
        )
        text = format_capacity_curve(points)
        assert "budget" in text
        assert "∞" in text
        assert "(-" in text  # at least one improvement marker
