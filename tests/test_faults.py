"""Deterministic fault-injection suite (``make test-faults``).

Every scenario arms a :class:`repro.testing.faults.FaultPlan` and asserts
the system ends in a *correct result or a typed error* with matching
telemetry — never a hang, never a silently wrong answer.  Forked workers
inherit the plan through the ``REPRO_FAULTS`` environment variable.
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from repro.logic import CNF, VarPool
from repro.opt import minimize_sum
from repro.sat.portfolio import fork_available
from repro.sat.service import SolverService
from repro.sat.types import SolveResult
from repro.tasks import generate_layout, verify_schedule
from repro.tasks.batch import BatchJob, run_batch
from repro.testing import FaultPlan, active_plan, injected
from repro.testing.faults import ENV_KEY, FaultPlanError

pytestmark = pytest.mark.faults

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _staircase(n: int = 6):
    """Objective over negated vars: several improvements per descent."""
    cnf = CNF(VarPool())
    lits = [cnf.pool.var(("x", i)) for i in range(n)]
    for combo in itertools.combinations(range(n), n - 1):
        cnf.add([-lits[i] for i in combo])
    return cnf, [-lit for lit in lits]


def _job_ok(value, seed=0):
    return value + 100


class TestFaultPlans:
    def test_env_round_trip(self):
        plan = FaultPlan(kill_member="neg-phase", kill_probe=2,
                         checkpoint_fail_at=3)
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_env('{"explode_at": 1}')

    def test_unparseable_payload_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_env("not json")

    def test_injected_sets_and_restores_env(self):
        assert active_plan() is None
        with injected(FaultPlan(slow_member="base")) as plan:
            assert os.environ[ENV_KEY] == plan.to_env()
            assert active_plan() == plan
        assert ENV_KEY not in os.environ
        assert active_plan() is None


@needs_fork
class TestServiceFaults:
    def test_worker_kill_mid_descent_survives(self):
        # Kill the non-primary member at its 2nd probe: the session
        # keeps going on the survivor and the crash is counted.
        cnf, obj = _staircase()
        with injected(FaultPlan(kill_member="neg-phase", kill_probe=2)):
            result = minimize_sum(cnf, obj, parallel=2, persistent=True)
        assert result.feasible and result.proven_optimal
        assert result.cost == 2
        service = result.portfolio["service"]
        assert service["counters"].get("service.worker_crashes", 0) >= 1

    def test_worker_kill_at_startup_downgrades_gracefully(self):
        cnf, obj = _staircase()
        with injected(FaultPlan(kill_member="neg-phase", kill_probe=0)):
            result = minimize_sum(cnf, obj, parallel=2, persistent=True)
        assert result.feasible and result.proven_optimal
        assert result.cost == 2

    def test_hung_worker_is_cancelled_not_waited_for(self):
        # Member "neg-phase" sleeps 30 s at probe 1; the parent races the
        # other member, cancels, and only waits the (small) grace.
        clauses = [[1, 2], [-1, 3], [-2, -3]]
        with injected(FaultPlan(hang_member="neg-phase", hang_probe=1,
                                hang_s=30.0)):
            service = SolverService(
                3, clauses, processes=2, cancel_grace_s=1.0
            ).start()
            try:
                start = time.perf_counter()
                outcome = service.probe()
                elapsed = time.perf_counter() - start
            finally:
                service.close()  # terminates the sleeper
        assert outcome.verdict is SolveResult.SAT
        assert elapsed < 10.0  # nowhere near the 30 s hang

    def test_slow_worker_start_only_delays(self):
        cnf, obj = _staircase()
        with injected(FaultPlan(slow_member="neg-phase",
                                slow_start_s=0.2)):
            result = minimize_sum(cnf, obj, parallel=2, persistent=True)
        assert result.feasible and result.proven_optimal
        assert result.cost == 2


class TestCheckpointFaults:
    def test_write_failure_disables_writer_not_descent(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        cnf, obj = _staircase()
        with injected(FaultPlan(checkpoint_fail_at=2)):
            result = minimize_sum(cnf, obj, checkpoint_path=path)
        # The descent is unharmed ...
        assert result.feasible and result.proven_optimal
        assert result.cost == 2
        # ... the failure is visible, and writing stopped at the fault.
        assert result.checkpoint["write_failures"] == 1
        assert result.checkpoint["writes"] == 1  # only the header landed

    def test_failed_checkpoint_never_resumes_wrong(self, tmp_path):
        # A checkpoint truncated by write failures must still either
        # resume soundly or start fresh — never corrupt the result.
        path = str(tmp_path / "ck.jsonl")
        cnf, obj = _staircase()
        with injected(FaultPlan(checkpoint_fail_at=3)):
            minimize_sum(cnf, obj, checkpoint_path=path)
        cnf, obj = _staircase()
        resumed = minimize_sum(cnf, obj, checkpoint_path=path,
                               resume=True)
        assert resumed.feasible and resumed.proven_optimal
        assert resumed.cost == 2


@needs_fork
class TestLazyFaults:
    """Worker crashes during the CEGAR refinement loop.

    The running example's verification is UNSAT after one refinement
    round (probe 1: SAT on the relaxation → refine; probe 2: UNSAT), so
    a kill at probe 2 lands mid-refinement by construction.
    """

    @staticmethod
    def _running_example():
        from repro.casestudies.running_example import running_example

        study = running_example()
        return study.discretize(), study.schedule, study.r_t_min

    def test_worker_kill_mid_refinement_survives(self):
        # Kill "base" at its 2nd probe: the refinement clauses shipped
        # in that probe's delta are not lost — the surviving member got
        # its own copy — and the final UNSAT verdict is unchanged.
        net, schedule, r_t = self._running_example()
        with injected(FaultPlan(kill_member="base", kill_probe=2)):
            result = verify_schedule(
                net, schedule, r_t, parallel=2, lazy=True
            )
        assert not result.satisfiable  # same verdict as the clean run
        assert result.metrics["lazy.rounds"] >= 1
        service = result.portfolio["service"]
        assert service["counters"].get("service.worker_crashes", 0) >= 1

    def test_service_death_mid_refinement_falls_back(self):
        # A single-member service that dies at probe 2 leaves no
        # survivors (ServiceDeadError); the loop must replay the round
        # through the one-shot portfolio — over the *refined* clause
        # set — and still conclude UNSAT.
        from repro.encoding.lazy import solve_lazy_verification
        from repro.network.sections import VSSLayout
        from repro.sat.portfolio import diversified_members
        from repro.tasks.common import build_encoding

        net, schedule, r_t = self._running_example()
        encoding = build_encoding(net, schedule, r_t, None, lazy=True)
        encoding.pin_layout(VSSLayout.pure_ttd(net))
        with injected(FaultPlan(kill_member="base", kill_probe=2)):
            outcome = solve_lazy_verification(
                encoding, parallel=2, members=diversified_members(1)
            )
        assert not outcome.satisfiable
        assert outcome.refiner.rounds >= 1
        assert "fallback" in outcome.portfolio["service"]

    def test_worker_kill_mid_lazy_descent_survives(self):
        # The lazy generation descent re-solves every SAT probe until
        # its model is clean; killing the non-primary member partway
        # must not change the proven optimum.
        net, schedule, r_t = self._running_example()
        with injected(FaultPlan(kill_member="neg-phase", kill_probe=2)):
            result = generate_layout(
                net, schedule, r_t, parallel=2, persistent=True,
                lazy=True,
            )
        assert result.satisfiable and result.proven_optimal
        assert result.objective_value == 1  # the clean-run optimum
        service = result.portfolio["service"]
        assert service["counters"].get("service.worker_crashes", 0) >= 1


@needs_fork
class TestBatchFaults:
    def test_kill_every_attempt_recovers_in_parent(self):
        jobs = [BatchJob("doomed", _job_ok, args=(1,)),
                BatchJob("fine", _job_ok, args=(2,))]
        with injected(FaultPlan(batch_kill_job="doomed")):
            report = run_batch(jobs, processes=2, max_retries=1,
                               retry_backoff_s=0.01)
        assert report.ok
        assert report.value_of("doomed") == 101
        assert "doomed" in report.recovered_jobs
        assert report.metrics.get("batch.pool_broken", 0) >= 1

    def test_kill_first_attempt_only_succeeds_on_retry(self):
        jobs = [BatchJob("flaky", _job_ok, args=(1,)),
                BatchJob("fine", _job_ok, args=(2,))]
        with injected(FaultPlan(batch_kill_job="flaky",
                                batch_kill_attempts=1)):
            report = run_batch(jobs, processes=2, max_retries=2,
                               retry_backoff_s=0.01)
        assert report.ok
        assert report.value_of("flaky") == 101
        assert "flaky" in report.retried_jobs
        assert "flaky" not in report.recovered_jobs  # the retry pool won
        assert report.metrics.get("retry.attempts", 0) >= 1
