"""Tests for the cone-of-influence reduction."""

from __future__ import annotations

from repro.encoding.cone import Cone, multi_source_distances
from repro.trains.discretize import discretize_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


def build_cone(net, schedule, r_t=0.5, enabled=True):
    runs, t_max = discretize_schedule(net, schedule, r_t)
    return Cone(net, runs, t_max, enabled=enabled), runs, t_max


class TestMultiSourceDistances:
    def test_sources_at_zero(self, micro_net):
        dist = multi_source_distances(micro_net, [0, 3])
        assert dist[0] == 0 and dist[3] == 0

    def test_triangle_inequality_neighbours(self, loop_net):
        dist = multi_source_distances(loop_net, [0])
        for seg, neighbours in enumerate(loop_net.seg_neighbours):
            for other in neighbours:
                assert abs(dist[seg] - dist[other]) <= 1

    def test_empty_sources(self, micro_net):
        assert multi_source_distances(micro_net, []) == [-1] * 6


class TestCone:
    def test_absent_before_departure(self, micro_net):
        run = TrainRun(Train("T", 100, 120), "A", "B", 2.0, None)
        cone, __, t_max = build_cone(micro_net, Schedule([run], 5.0))
        assert cone.at(0, 0) == frozenset()
        assert cone.at(0, 3) == frozenset()
        assert cone.at(0, 4) != frozenset()

    def test_departure_step_is_start_station(self, micro_net,
                                              single_train_schedule):
        cone, runs, __ = build_cone(micro_net, single_train_schedule)
        assert cone.at(0, 0) == frozenset(runs[0].start_segments)

    def test_growth_bounded_by_speed(self, micro_net, single_train_schedule):
        cone, runs, t_max = build_cone(micro_net, single_train_schedule)
        speed = runs[0].speed_segments
        from repro.network.paths import reachable

        for t in range(t_max - 1):
            now = cone.at(0, t)
            nxt = cone.at(0, t + 1)
            grown = set()
            for e in now:
                grown.update(reachable(micro_net, e, speed))
            assert nxt <= grown or not now

    def test_deadline_prunes_far_segments(self, micro_net):
        # Deadline at step 8; the earliest arrival is step 3.  Post-deadline
        # positions are bounded by the post-visit ball around the goal:
        # within speed * (t - earliest_arrival) hops.
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 4.0)
        cone, runs, __ = build_cone(micro_net, Schedule([run], 5.0))
        from repro.network.paths import reachable

        goal = set(runs[0].goal_segments)
        speed = runs[0].speed_segments
        earliest = 3  # 5 hops from the inner start segment at speed 2
        for t in (8, 9):
            ball: set[int] = set()
            for g in goal:
                ball.update(reachable(micro_net, g, speed * (t - earliest)))
            assert cone.at(0, t) <= ball
        # And the cone is still a real restriction mid-journey: right after
        # departure the far end of the line is not possible.
        assert not (cone.at(0, 1) & goal)

    def test_disabled_cone_is_everything(self, micro_net,
                                          single_train_schedule):
        cone, runs, t_max = build_cone(
            micro_net, single_train_schedule, enabled=False
        )
        everything = frozenset(range(micro_net.num_segments))
        # The departure step keeps its parked-in-station semantics even
        # without pruning; all later steps are unconstrained.
        assert cone.at(0, 0) == frozenset(runs[0].start_segments)
        for t in range(1, t_max):
            assert cone.at(0, t) == everything

    def test_total_positions(self, micro_net, single_train_schedule):
        full, __, __ = build_cone(
            micro_net, single_train_schedule, enabled=False
        )
        pruned, __, __ = build_cone(micro_net, single_train_schedule)
        assert pruned.total_positions() < full.total_positions()

    def test_tail_slack_for_long_trains(self, micro_net):
        # A 2-segment train's cone must include chain-spill neighbours of
        # the start station at the departure step + 1.
        run = TrainRun(Train("T", 900, 60), "A", "B", 0.0, None)
        cone, runs, __ = build_cone(micro_net, Schedule([run], 5.0))
        assert runs[0].length_segments == 2
        start = set(runs[0].start_segments)
        assert cone.at(0, 1) > start
