"""Tests for the spatial discretisation into the segment graph G=(V,E)."""

from __future__ import annotations

import pytest

from repro.network.discretize import DiscreteNetwork
from repro.network.topology import NetworkError


class TestSegmentation:
    def test_segment_counts(self, micro_net):
        # Three 1 km tracks at r_s = 0.5 km -> 2 segments each.
        assert micro_net.num_segments == 6
        for track in ("staA", "mid", "staB"):
            assert len(micro_net.track_segments(track)) == 2

    def test_segment_lengths_sum_to_track(self, micro_line):
        net = DiscreteNetwork(micro_line, 0.3)
        for track_name, track in micro_line.tracks.items():
            total = sum(
                net.segments[s].length_km
                for s in net.track_segments(track_name)
            )
            assert total == pytest.approx(track.length_km)

    def test_short_track_yields_one_segment(self, micro_line):
        net = DiscreteNetwork(micro_line, 5.0)
        assert net.num_segments == 3

    def test_segments_chain_through_track(self, micro_net):
        for track in ("staA", "mid", "staB"):
            ids = micro_net.track_segments(track)
            for first, second in zip(ids, ids[1:]):
                a = micro_net.segments[first]
                b = micro_net.segments[second]
                assert a.v == b.u  # consecutive slices share a vertex

    def test_vertex_count(self, micro_net):
        # 4 original nodes + 1 interior per track.
        assert micro_net.num_vertices == 7

    def test_invalid_resolution(self, micro_line):
        with pytest.raises(NetworkError):
            DiscreteNetwork(micro_line, 0.0)

    def test_ttd_inheritance(self, micro_net):
        for seg in micro_net.segments:
            assert seg.ttd == micro_net.network.tracks[seg.track].ttd
        assert micro_net.num_ttds == 3

    def test_unknown_track_query(self, micro_net):
        with pytest.raises(NetworkError):
            micro_net.track_segments("nope")
        with pytest.raises(NetworkError):
            micro_net.vertex_of_node("nope")


class TestAdjacency:
    def test_neighbours_symmetric(self, loop_net):
        for seg_id, neighbours in enumerate(loop_net.seg_neighbours):
            for other in neighbours:
                assert seg_id in loop_net.seg_neighbours[other]

    def test_switch_connects_all_incident(self, loop_net):
        p1 = loop_net.vertex_of_node("p1")
        incident = loop_net.segments_at[p1]
        assert len(incident) == 3
        for a in incident:
            for b in incident:
                if a != b:
                    assert b in loop_net.seg_neighbours[a]

    def test_interior_degree_two(self, micro_net):
        interior_vertices = [
            v for v in range(micro_net.num_vertices)
            if len(micro_net.segments_at[v]) == 2
        ]
        assert len(interior_vertices) >= 3


class TestForcedBorders:
    def test_boundary_and_switch_forced(self, loop_net):
        for name in ("A", "B", "p1", "p2"):
            assert loop_net.vertex_of_node(name) in loop_net.forced_borders

    def test_interior_not_forced(self, loop_net):
        free = loop_net.free_border_candidates()
        # One interior vertex per 1 km track at r_s = 0.5.
        assert len(free) == 4
        assert set(free).isdisjoint(loop_net.forced_borders)

    def test_ttd_boundary_forced(self, micro_line):
        # micro_line has 3 one-track TTDs: m1/m2 are TTD borders.
        net = DiscreteNetwork(micro_line, 0.5)
        assert net.vertex_of_node("m1") in net.forced_borders
        assert net.vertex_of_node("m2") in net.forced_borders

    def test_border_candidates_cover_all_vertices(self, micro_net):
        assert micro_net.border_candidates() == list(
            range(micro_net.num_vertices)
        )


class TestStations:
    def test_station_segments(self, micro_net):
        assert (micro_net.station_segments("A")
                == micro_net.track_segments("staA"))

    def test_multi_track_station(self, loop_net):
        # Make a station out of both loop tracks.
        loop_net.network.stations["L"] = ["up", "down"]
        segments = loop_net.station_segments("L")
        assert len(segments) == 4

    def test_repr(self, micro_net):
        assert "6 segments" in repr(micro_net)
