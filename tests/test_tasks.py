"""Integration tests for the three design tasks (paper §II-B)."""

from __future__ import annotations

import pytest

from repro.encoding.encoder import EncodingOptions
from repro.network.sections import VSSLayout
from repro.tasks import generate_layout, optimize_schedule, verify_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


@pytest.fixture
def headway_schedule():
    """Two same-direction trains whose deadlines need close following.

    Train 2 must reach B by step 4; with full-TTD headway it can only enter
    the middle TTD once train 1 has cleared it, arriving at step 5 — so the
    pure layout fails and at least one VSS border is required.
    """
    runs = [
        TrainRun(Train("1", 100, 60), "A", "B", 0.0, 4.0),
        TrainRun(Train("2", 100, 60), "A", "B", 0.5, 2.0),
    ]
    return Schedule(runs, duration_min=5.0)


class TestVerification:
    def test_pure_ttd_default_layout(self, micro_net, headway_schedule):
        result = verify_schedule(micro_net, headway_schedule, 0.5)
        assert result.task == "verification"
        assert not result.satisfiable  # train 2 blocked a full TTD behind
        assert result.num_sections == micro_net.num_ttds
        assert result.time_steps is None
        assert result.solution is None

    def test_finest_layout_makes_it_work(self, micro_net, headway_schedule):
        result = verify_schedule(
            micro_net, headway_schedule, 0.5,
            layout=VSSLayout.finest(micro_net),
        )
        assert result.satisfiable
        assert result.solution is not None
        assert result.num_sections == micro_net.num_segments

    def test_single_train_pure_ttd_ok(self, micro_net,
                                      single_train_schedule):
        result = verify_schedule(micro_net, single_train_schedule, 0.5)
        assert result.satisfiable
        assert result.time_steps is not None

    def test_waypoints_respected(self, micro_net, single_train_schedule):
        result = verify_schedule(
            micro_net, single_train_schedule, 0.5,
            waypoints=[("T", "B", 7)],
        )
        assert result.satisfiable
        goal = set(micro_net.station_segments("B"))
        assert result.solution.trajectories[0].steps[7] & goal

    def test_impossible_waypoint(self, micro_net, single_train_schedule):
        result = verify_schedule(
            micro_net, single_train_schedule, 0.5,
            waypoints=[("T", "B", 0)],
        )
        assert not result.satisfiable

    def test_table_row_shape(self, micro_net, single_train_schedule):
        result = verify_schedule(micro_net, single_train_schedule, 0.5)
        task, variables, sat, sections, steps, runtime = result.table_row()
        assert task == "verification"
        assert sat == "Yes"
        assert isinstance(variables, int)
        assert runtime >= 0


class TestGeneration:
    @pytest.mark.parametrize("strategy", ["linear", "binary", "core"])
    def test_strategies_find_same_optimum(self, micro_net, headway_schedule,
                                          strategy):
        result = generate_layout(
            micro_net, headway_schedule, 0.5, strategy=strategy
        )
        assert result.satisfiable
        assert result.proven_optimal
        # Close following needs borders, but far fewer than the finest split.
        assert 1 <= result.objective_value < len(
            micro_net.free_border_candidates()
        )
        assert (result.num_sections
                == micro_net.num_ttds + result.objective_value)

    def test_zero_borders_when_pure_works(self, micro_net,
                                          single_train_schedule):
        result = generate_layout(micro_net, single_train_schedule, 0.5)
        assert result.satisfiable
        assert result.objective_value == 0
        assert result.num_sections == micro_net.num_ttds

    def test_infeasible_schedule(self, micro_net):
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        result = generate_layout(micro_net, Schedule([run], 5.0), 0.5)
        assert not result.satisfiable
        assert result.solution is None
        assert result.num_sections == micro_net.num_ttds

    def test_layout_satisfies_schedule(self, micro_net, headway_schedule):
        result = generate_layout(micro_net, headway_schedule, 0.5)
        verification = verify_schedule(
            micro_net, headway_schedule, 0.5, layout=result.solution.layout
        )
        assert verification.satisfiable


class TestOptimization:
    def test_deadlines_are_ignored(self, micro_net):
        # Deadline impossible, but optimization drops it.
        run = TrainRun(Train("T", 100, 60), "A", "B", 0.0, 1.0)
        result = optimize_schedule(micro_net, Schedule([run], 5.0), 0.5)
        assert result.satisfiable

    def test_makespan_is_minimal(self, micro_net, single_train_schedule):
        result = optimize_schedule(micro_net, single_train_schedule, 0.5)
        assert result.satisfiable and result.proven_optimal
        # 5 hops from the inner start segment to the goal at 2 segments/step.
        assert result.time_steps == 2

    def test_beats_or_equals_generation(self, micro_net, headway_schedule):
        generated = generate_layout(micro_net, headway_schedule, 0.5)
        optimized = optimize_schedule(micro_net, headway_schedule, 0.5)
        assert optimized.satisfiable
        assert optimized.time_steps <= generated.time_steps

    def test_secondary_border_minimisation(self, micro_net,
                                           headway_schedule):
        plain = optimize_schedule(micro_net, headway_schedule, 0.5)
        tight = optimize_schedule(
            micro_net, headway_schedule, 0.5,
            minimize_borders_secondary=True,
        )
        assert tight.time_steps == plain.time_steps
        assert tight.num_sections <= plain.num_sections

    @pytest.mark.parametrize("strategy", ["linear", "binary", "core"])
    def test_strategies_agree(self, micro_net, headway_schedule, strategy):
        result = optimize_schedule(
            micro_net, headway_schedule, 0.5, strategy=strategy
        )
        assert result.satisfiable and result.proven_optimal
        baseline = optimize_schedule(micro_net, headway_schedule, 0.5)
        assert result.time_steps == baseline.time_steps


class TestOptionsPlumbing:
    def test_options_forwarded(self, micro_net, single_train_schedule):
        result = verify_schedule(
            micro_net, single_train_schedule, 0.5,
            options=EncodingOptions(amo="pairwise"),
        )
        assert result.satisfiable

    def test_solver_stats_populated(self, micro_net, single_train_schedule):
        result = verify_schedule(micro_net, single_train_schedule, 0.5)
        assert "propagations" in result.solver_stats
