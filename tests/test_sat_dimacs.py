"""Tests for DIMACS CNF parsing and writing."""

from __future__ import annotations

import pytest

from repro.sat import Solver, SolveResult, parse_dimacs, write_dimacs
from repro.sat.dimacs import DimacsError, parse_dimacs_file


class TestParse:
    def test_simple(self):
        num_vars, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3]]

    def test_comments_ignored(self):
        text = "c a comment\nc another\np cnf 1 1\nc inline\n1 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 1
        assert clauses == [[1]]

    def test_clause_spanning_lines(self):
        num_vars, clauses = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert clauses == [[1, 2, 3]]

    def test_multiple_clauses_per_line(self):
        __, clauses = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert clauses == [[1], [-2]]

    def test_num_vars_grows_with_usage(self):
        num_vars, __ = parse_dimacs("p cnf 1 1\n9 0\n")
        assert num_vars == 9

    def test_missing_header_is_fine(self):
        num_vars, clauses = parse_dimacs("1 2 0\n")
        assert num_vars == 2
        assert clauses == [[1, 2]]

    def test_unterminated_clause(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_bad_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p dnf 2 1\n1 0\n")

    def test_bad_literal(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_percent_terminator_tolerated(self):
        # Some SATLIB files end with a "%" line.
        num_vars, clauses = parse_dimacs("p cnf 1 1\n1 0\n%\n")
        assert clauses == [[1]]


class TestWrite:
    def test_roundtrip(self):
        clauses = [[1, -2, 3], [-1], [2, 3]]
        text = write_dimacs(3, clauses, comment="hello\nworld")
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses
        assert text.startswith("c hello\nc world\n")

    def test_file_roundtrip(self, tmp_path):
        clauses = [[1, 2], [-1, -2]]
        path = tmp_path / "f.cnf"
        path.write_text(write_dimacs(2, clauses))
        num_vars, parsed = parse_dimacs_file(path)
        assert (num_vars, parsed) == (2, clauses)

    def test_parsed_formula_solvable(self):
        text = write_dimacs(2, [[1, 2], [-1, 2], [1, -2]])
        num_vars, clauses = parse_dimacs(text)
        solver = Solver()
        solver.ensure_var(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SolveResult.SAT
        assert solver.model_value(1) and solver.model_value(2)
