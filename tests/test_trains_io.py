"""Tests for schedule JSON serialisation."""

from __future__ import annotations

import pytest

from repro.trains.io import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.trains.schedule import Schedule, ScheduleError, Stop, TrainRun
from repro.trains.train import Train


@pytest.fixture
def rich_schedule():
    return Schedule(
        [
            TrainRun(
                Train("IC-1", 400, 160),
                start="A",
                goal="B",
                departure_min=0.0,
                arrival_min=12.0,
                stops=(Stop("M", earliest_min=2.0, latest_min=6.0),),
            ),
            TrainRun(
                Train("FRT", 600, 80),
                start="B",
                goal="A",
                departure_min=3.0,
                arrival_min=None,
            ),
        ],
        duration_min=20.0,
    )


class TestRoundtrip:
    def test_preserves_everything(self, rich_schedule):
        restored = schedule_from_json(schedule_to_json(rich_schedule))
        assert restored.duration_min == rich_schedule.duration_min
        assert len(restored) == len(rich_schedule)
        for original, copy in zip(rich_schedule.runs, restored.runs):
            assert copy.train == original.train
            assert (copy.start, copy.goal) == (original.start, original.goal)
            assert copy.departure_min == original.departure_min
            assert copy.arrival_min == original.arrival_min
            assert copy.stops == original.stops

    def test_file_roundtrip(self, rich_schedule, tmp_path):
        path = tmp_path / "sched.json"
        save_schedule(rich_schedule, path)
        assert load_schedule(path).run_of("IC-1").arrival_min == 12.0

    def test_case_study_schedules_roundtrip(self):
        from repro.casestudies import all_case_studies

        for study in all_case_studies():
            restored = schedule_from_json(schedule_to_json(study.schedule))
            assert len(restored) == len(study.schedule)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ScheduleError, match="invalid JSON"):
            schedule_from_json("{nope")

    def test_missing_fields(self):
        with pytest.raises(ScheduleError, match="malformed"):
            schedule_from_json('{"trains": [{"name": "x"}]}')

    def test_semantic_validation_applies(self):
        text = """
        {"duration_min": 5.0,
         "trains": [{"name": "x", "length_m": 100, "max_speed_kmh": 100,
                     "start": "A", "goal": "A",
                     "departure_min": 0.0, "arrival_min": 3.0}]}
        """
        with pytest.raises(ScheduleError):
            schedule_from_json(text)


class TestCliIntegration:
    def test_schedule_file_flag(self, micro_line, tmp_path, rich_schedule):
        from repro.cli import main
        from repro.network.io import save_network
        from repro.trains.schedule import Schedule, TrainRun
        from repro.trains.train import Train

        net_path = tmp_path / "net.json"
        save_network(micro_line, net_path)
        schedule = Schedule(
            [TrainRun(Train("T", 400, 120), "A", "B", 0.0, 4.0)], 5.0
        )
        sched_path = tmp_path / "sched.json"
        save_schedule(schedule, sched_path)
        code = main([
            "verify", "--network", str(net_path),
            "--schedule", str(sched_path),
            "--r-s", "0.5", "--r-t", "0.5",
        ])
        assert code == 0
