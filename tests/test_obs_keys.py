"""Metric-key catalog (repro.obs.keys) and its lint-style enforcement.

AST-scans ``src/`` and ``benchmarks/`` for literal metric-key
registrations — ``reg.inc("lazy.rounds")``, ``met.observe(...)``,
``trace.counter(...)`` and friends — and checks every dotted key's first
component against :data:`repro.obs.keys.PREFIXES`.  A new ``foo.*``
family therefore has to be registered in the catalog (one deliberate
line with an owner comment) before it can land.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.obs.keys import PREFIXES, check_keys, is_catalogued, prefix_of

REPO = Path(__file__).resolve().parent.parent

#: Method names whose first string argument is a metric key.
KEY_METHODS = frozenset({
    "inc", "set", "observe", "counter", "gauge", "histogram",
})


def _leading_literal(node: ast.expr) -> str | None:
    """The literal text a key argument starts with, or None.

    Plain string constants return themselves; f-strings return their
    leading constant segment (``f"lazy.{n}"`` → ``"lazy."``), which is
    enough to classify the namespace.  Anything fully dynamic is skipped.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _registered_keys(path: Path) -> list[tuple[str, int]]:
    """All literal dotted metric keys registered in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in KEY_METHODS
            and node.args
        ):
            continue
        text = _leading_literal(node.args[0])
        # Undotted strings are not namespaced metric keys (e.g. an
        # unrelated ``.set("flag")`` call) — only dotted keys are lintable.
        if text and "." in text:
            found.append((text, node.lineno))
    return found


class TestCatalogHelpers:
    def test_prefix_of(self):
        assert prefix_of("solver.conflicts") == "solver"
        assert prefix_of("profile.propagate.time_s") == "profile"
        assert prefix_of("undotted") == "undotted"

    def test_is_catalogued(self):
        assert is_catalogued("lazy.rounds")
        assert is_catalogued("bench.profile.overhead")
        assert not is_catalogued("rogue.counter")

    def test_check_keys_returns_sorted_offenders(self):
        keys = ["solver.conflicts", "zzz.x", "aaa.y", "zzz.x"]
        assert check_keys(keys) == ["aaa.y", "zzz.x"]

    def test_prefixes_are_sorted_and_lowercase(self):
        listed = sorted(PREFIXES)
        assert all(p == p.lower() for p in listed)
        assert "profile" in PREFIXES and "events" in PREFIXES


class TestSourceTreeLint:
    def test_every_registered_metric_key_is_catalogued(self):
        offenders: list[str] = []
        for root in ("src", "benchmarks"):
            for path in sorted((REPO / root).rglob("*.py")):
                for key, lineno in _registered_keys(path):
                    if not is_catalogued(key):
                        offenders.append(
                            f"{path.relative_to(REPO)}:{lineno}: {key!r}"
                        )
        assert not offenders, (
            "metric keys outside the catalog (add the namespace to "
            "repro/obs/keys.py PREFIXES with an owner comment):\n"
            + "\n".join(offenders)
        )

    def test_scanner_actually_sees_the_tree(self):
        """Guard against the lint silently scanning nothing."""
        total = sum(
            len(_registered_keys(path))
            for root in ("src", "benchmarks")
            for path in (REPO / root).rglob("*.py")
        )
        assert total > 50, f"only {total} registrations found — scan broken?"

    def test_solver_stats_keys_are_catalogued_when_absorbed(self):
        """The solver.*/profile.* families produced at runtime stay in
        catalog, not just the literal registrations."""
        from repro.obs.metrics import MetricsRegistry
        from repro.sat.solver import Solver
        from repro.sat.types import SolverConfig

        solver = Solver(SolverConfig(profile=True))
        solver.ensure_var(2)
        solver.add_clause([1, 2])
        solver.add_clause([-1])
        solver.solve()
        reg = MetricsRegistry()
        reg.absorb_solver_stats(solver.stats.as_dict())
        assert check_keys(reg.as_dict()) == []
