"""Deterministic fault injection for the resilience test tier.

The crash/fallback paths of the solver service, the one-shot portfolio,
the batch runner, and the checkpoint writer are hard to reach naturally:
they trigger on worker death, wedged searches, and failing disks.  This
module makes those events *reproducible*: a :class:`FaultPlan` armed via
the ``REPRO_FAULTS`` environment variable (a JSON object) tells the
production hooks below exactly where to misbehave — kill this member at
that probe, hang for so long, fail the Nth checkpoint write.

The environment is the transport on purpose: service and portfolio
workers are forked children, so an armed plan reaches them with zero
plumbing.  Every hook is a near-zero-cost no-op when no plan is armed
(one cached environment lookup).

Example::

    plan = FaultPlan(kill_member="fast-decay", kill_probe=2)
    with injected(plan):
        result = minimize_sum(cnf, lits, parallel=2, persistent=True)
    # worker "fast-decay" SIGKILLed itself at its 2nd probe; the
    # descent finished on the survivors.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields

#: Environment variable carrying the armed fault plan (JSON).
ENV_KEY = "REPRO_FAULTS"


class FaultPlanError(ValueError):
    """The ``REPRO_FAULTS`` payload could not be parsed into a plan."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic misbehaviour, keyed by member/probe/attempt.

    Attributes:
        kill_member: portfolio/service member that SIGKILLs its own
            process at probe number ``kill_probe`` (1-based; 0 = during
            worker startup, before the solver is built).
        hang_member: member that sleeps ``hang_s`` seconds at probe
            ``hang_probe`` instead of answering — exercises the
            cancellation-grace / parent-timeout path.
        slow_member: member that sleeps ``slow_start_s`` once at worker
            startup (slow fork / cold cache).
        checkpoint_fail_at: 1-based checkpoint write sequence number from
            which every write raises :class:`OSError` (simulated full or
            yanked disk).
        batch_kill_job: batch job name whose *pool worker* SIGKILLs
            itself; attempts below ``batch_kill_attempts`` die, so the
            parent's retry / serial-recovery tiers are exercised.  The
            serial in-parent recovery never consults this hook.
    """

    kill_member: str | None = None
    kill_probe: int = 1
    hang_member: str | None = None
    hang_probe: int = 1
    hang_s: float = 30.0
    slow_member: str | None = None
    slow_start_s: float = 0.25
    checkpoint_fail_at: int | None = None
    batch_kill_job: str | None = None
    batch_kill_attempts: int = 1_000_000  # default: every attempt dies

    def to_env(self) -> str:
        """Serialise for the ``REPRO_FAULTS`` environment variable."""
        payload = {
            key: value for key, value in asdict(self).items()
            if value is not None
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_env(cls, raw: str) -> "FaultPlan":
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"unparseable {ENV_KEY}: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultPlanError(f"{ENV_KEY} must hold a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan keys: {', '.join(unknown)}"
            )
        return cls(**payload)


# Cache keyed by the raw environment string, so repeated hook calls cost
# one os.environ lookup plus a string compare — and forked children (which
# inherit the parent's environment *and* this cache) stay consistent.
_cached_raw: str | None = None
_cached_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The armed fault plan, or None (the overwhelmingly common case)."""
    global _cached_raw, _cached_plan
    raw = os.environ.get(ENV_KEY)
    if raw != _cached_raw:
        _cached_raw = raw
        _cached_plan = FaultPlan.from_env(raw) if raw else None
    return _cached_plan


@contextmanager
def injected(plan: FaultPlan):
    """Arm ``plan`` for the duration of the block (and its forked children)."""
    previous = os.environ.get(ENV_KEY)
    os.environ[ENV_KEY] = plan.to_env()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_KEY, None)
        else:
            os.environ[ENV_KEY] = previous


def _die() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# Hooks called from production code.  Each is a no-op without an armed plan.
# ---------------------------------------------------------------------------


def on_worker_start(member_name: str) -> None:
    """Called once when a portfolio/service worker comes up."""
    plan = active_plan()
    if plan is None:
        return
    if plan.slow_member == member_name:
        time.sleep(plan.slow_start_s)
    if plan.kill_member == member_name and plan.kill_probe == 0:
        _die()


def on_probe(member_name: str, probe: int) -> None:
    """Called at the start of probe number ``probe`` (1-based) in a worker."""
    plan = active_plan()
    if plan is None:
        return
    if plan.kill_member == member_name and plan.kill_probe == probe:
        _die()
    if plan.hang_member == member_name and plan.hang_probe == probe:
        time.sleep(plan.hang_s)


def on_batch_job(job_name: str, attempt: int) -> None:
    """Called in a batch *pool worker* before running ``job_name``.

    ``attempt`` is 0 for the first pool execution, 1.. for retries.
    """
    plan = active_plan()
    if plan is None:
        return
    if (
        plan.batch_kill_job == job_name
        and attempt < plan.batch_kill_attempts
    ):
        _die()


def on_checkpoint_write(seq: int) -> None:
    """Called before checkpoint write number ``seq`` (1-based)."""
    plan = active_plan()
    if plan is None:
        return
    if (
        plan.checkpoint_fail_at is not None
        and seq >= plan.checkpoint_fail_at
    ):
        raise OSError(f"injected checkpoint write failure at seq {seq}")
