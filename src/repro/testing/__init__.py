"""Test-support utilities shipped with the package.

Only deterministic *fault injection* lives here for now
(:mod:`repro.testing.faults`); production code calls its hooks, which are
no-ops unless a fault plan is armed through the environment.
"""

from repro.testing.faults import FaultPlan, active_plan, injected

__all__ = ["FaultPlan", "active_plan", "injected"]
