"""Task 2: generation of VSS layouts.

Given a network with its TTD sections and a schedule with deadlines, find an
assignment of the free ``border_v`` variables — i.e. a VSS layout — under
which the schedule becomes feasible, minimising the number of added virtual
borders (paper §III-C, ``min Σ border_v``).
"""

from __future__ import annotations

import time

from repro.encoding.encoder import EncodingOptions
from repro.encoding.lazy import DESCENT_LAZY_STRATEGY, LazyRefiner
from repro.network.discretize import DiscreteNetwork
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.opt.maxsat import minimize_sum_core_guided
from repro.opt.minimize import minimize_sum
from repro.opt.weighted import minimize_weighted_sum
from repro.tasks.common import (
    build_encoding,
    checked_decode,
    record_descent,
    record_encoding,
)
from repro.tasks.result import TaskResult
from repro.trains.schedule import Schedule


def generate_layout(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    strategy: str = "linear",
    options: EncodingOptions | None = None,
    border_costs: dict[int, int] | None = None,
    parallel: int = 1,
    persistent: bool = True,
    timeout_s: float | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    lazy: bool = False,
    lazy_strategy: str = DESCENT_LAZY_STRATEGY,
    profile: bool = False,
    warm_model: list[int] | None = None,
    warm_fingerprint: dict | None = None,
) -> TaskResult:
    """Generate a minimum-VSS layout realising ``schedule``.

    ``strategy`` selects the optimisation engine: "linear", "binary", or
    "core" (see :mod:`repro.opt`).

    ``border_costs`` optionally maps free border vertices to positive
    integer installation costs; the objective then becomes the weighted sum
    (paper: unweighted ``min Σ border_v``).  Unlisted vertices cost 1.

    ``parallel > 1`` races every solve of the linear/binary descent through
    the process portfolio (:mod:`repro.sat.portfolio`).  The core-guided
    engine is inherently incremental and stays serial.

    ``persistent`` (default) runs the parallel descent on the resident
    incremental solver service (:mod:`repro.sat.service`), which keeps
    learned clauses across probes and ships only clause deltas; it falls
    back to the one-shot portfolio automatically when unavailable.

    ``timeout_s`` bounds the descent's wall clock: on expiry the task
    returns the best layout found so far (``status="timeout"`` with the
    proven ``lower_bound``/``upper_bound``) instead of raising.
    ``checkpoint_path`` persists the descent's proven facts to a JSONL
    file as they are found, and ``resume=True`` continues a previously
    killed run from that file (linear/binary strategies without
    ``border_costs``; see :mod:`repro.opt.checkpoint`).

    ``lazy`` defers the cross-train constraint families and lets the
    descent instantiate only the violated instances via the CEGAR check
    (:mod:`repro.encoding.lazy`) — the optimum is provably unchanged.
    ``lazy_strategy`` selects the refiner's grouping/selection cell —
    the optimum is the same in every cell, but descents revisit many
    models, so coarse cells that need fewer refinement rounds win here;
    the default is :data:`~repro.encoding.lazy.DESCENT_LAZY_STRATEGY`
    (measure with ``benchmarks/bench_lazy.py``).  The core-guided
    engine drives its own assumption schedule and stays eager.

    ``profile`` turns on the hot-path phase profiler in every solver the
    descent creates; attribution lands as ``profile.*`` metrics (see
    :mod:`repro.obs.profile`).

    ``warm_model`` / ``warm_fingerprint`` seed the linear/binary descent
    with a cached model from a delta-close instance (the solve
    gateway's result cache): after re-certification against this
    formula the descent starts from the cached layout's cost instead of
    an unconstrained probe (see :func:`repro.opt.minimize.minimize_sum`).
    The core-guided and weighted engines ignore the hint.
    """
    start = time.perf_counter()
    reg = MetricsRegistry()
    use_lazy = lazy and strategy != "core"
    if lazy and not use_lazy:
        trace.event("lazy.unsupported", strategy=strategy)
    with trace.span(
        "generate", strategy=strategy, parallel=parallel, lazy=use_lazy
    ) as task_span:
        with trace.span("encode", lazy=use_lazy):
            encoding = build_encoding(
                net, schedule, r_t_min, options, lazy=use_lazy
            )
            objective = encoding.border_objective()
        record_encoding(reg, encoding)
        refiner = (
            LazyRefiner(encoding, strategy=lazy_strategy)
            if use_lazy else None
        )
        refine = refiner.refine if refiner is not None else None

        with trace.span("solve", strategy=strategy):
            if border_costs is not None:
                free = net.free_border_candidates()
                weighted = [
                    (var, border_costs.get(vertex, 1))
                    for var, vertex in zip(objective, free)
                ]
                result = minimize_weighted_sum(
                    encoding.cnf, weighted,
                    strategy=strategy if strategy != "core" else "linear",
                    parallel=parallel, persistent=persistent,
                    wall_deadline_s=timeout_s, refine=refine,
                    profile=profile,
                )
            elif strategy == "core":
                result = minimize_sum_core_guided(
                    encoding.cnf, objective, wall_deadline_s=timeout_s,
                    profile=profile,
                )
            else:
                result = minimize_sum(
                    encoding.cnf, objective, strategy=strategy,
                    parallel=parallel, persistent=persistent,
                    wall_deadline_s=timeout_s,
                    checkpoint_path=checkpoint_path, resume=resume,
                    refine=refine, profile=profile,
                    warm_model=warm_model,
                    warm_fingerprint=warm_fingerprint,
                )
        record_descent(reg, result)
        if refiner is not None:
            reg.absorb_lazy(refiner.stats())

        solution = None
        with trace.span("decode", satisfiable=result.feasible):
            if result.feasible:
                solution = checked_decode(encoding, result.true_set())
        task_span.add(satisfiable=result.feasible, cost=result.cost)
    runtime = time.perf_counter() - start
    reg.set("task.runtime_s", runtime)
    return TaskResult(
        task="generation",
        variables=encoding.paper_equivalent_vars(),
        satisfiable=result.feasible,
        num_sections=(
            solution.num_sections if solution else net.num_ttds
        ),
        time_steps=solution.makespan if solution else None,
        runtime_s=runtime,
        actual_vars=encoding.cnf.num_vars,
        clauses=encoding.cnf.num_clauses,
        solution=solution,
        objective_value=result.cost if result.feasible else None,
        proven_optimal=result.proven_optimal,
        solve_calls=result.solve_calls,
        solver_stats=result.solver_stats,
        portfolio=result.portfolio,
        metrics=reg.as_dict(),
        status=result.status,
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        resumed=result.resumed,
        model=sorted(result.true_set()) if result.feasible else [],
        warm_started=result.warm_started,
        fingerprint=result.fingerprint,
    )
