"""Task 1: verification of train schedules on ETCS Level 3 layouts.

Given a network, a fixed TTD/VSS layout, and a schedule (with arrival
deadlines), decide whether routes exist that realise the schedule.  SAT means
"yes, here is a witness"; UNSAT is a *proof* that no combination of routes,
speeds and waiting times works (paper §III-C, first task).
"""

from __future__ import annotations

import time

from repro.encoding.encoder import EncodingOptions
from repro.encoding.lazy import (
    DEFAULT_LAZY_STRATEGY,
    LazyRefiner,
    solve_lazy_verification,
)
from repro.logic.cnf import clauses_satisfied
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.opt.checkpoint import descent_fingerprint, warm_compatible
from repro.sat import (
    ProofLogger,
    Solver,
    SolverConfig,
    check_rup_proof,
    diversified_members,
    simplify_clauses,
    solve_portfolio,
)
from repro.network.discretize import DiscreteNetwork
from repro.network.sections import VSSLayout
from repro.tasks.common import (
    attach_progress,
    build_encoding,
    checked_decode,
    record_encoding,
    record_solver,
)
from repro.tasks.result import TaskResult
from repro.trains.schedule import Schedule


def verify_schedule(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    layout: VSSLayout | None = None,
    options: EncodingOptions | None = None,
    waypoints: list[tuple[str, str, int]] | None = None,
    with_proof: bool = False,
    presimplify: bool = False,
    parallel: int = 1,
    lazy: bool = True,
    lazy_strategy: str = DEFAULT_LAZY_STRATEGY,
    profile: bool = False,
    warm_hints: list[int] | None = None,
    warm_fingerprint: dict | None = None,
) -> TaskResult:
    """Verify ``schedule`` on ``layout`` (default: the pure TTD layout).

    ``waypoints`` optionally pins (train, station, step) triples exactly,
    matching the paper's triple-based schedule encoding.

    With ``with_proof``, an UNSAT verdict is backed by a DRAT proof that is
    re-checked by the independent RUP checker; the outcome is reported in
    ``TaskResult.proof_checked``.  (Slower — the checker is deliberately
    naive; use for high-assurance runs.)

    ``presimplify`` runs the clause preprocessor (unit propagation,
    subsumption, strengthening — :mod:`repro.sat.simplify`) before solving;
    the verdict is unaffected, the solver's workload shrinks.

    ``parallel > 1`` races the solve through a process portfolio of that
    many diversified solver configurations (:mod:`repro.sat.portfolio`);
    the verdict is provably unchanged and the witness stays deterministic.
    ``parallel=1`` is exactly the serial path.

    ``lazy`` (the default) defers the cross-train constraint families to
    the CEGAR loop in :mod:`repro.encoding.lazy` — same verdict, usually
    far fewer clauses.  Proof logging and presimplification need the
    full clause set as fixed premises, so either of them forces the
    eager encoder.  ``lazy_strategy`` picks the refiner's
    grouping/selection cell (see :class:`repro.encoding.lazy.LazyRefiner`);
    every cell yields the same verdict.

    ``profile`` turns on the hot-path phase profiler in every solver the
    task creates (serial, portfolio members, lazy rounds); the
    attribution lands as ``profile.*`` metrics (see
    :mod:`repro.obs.profile`), with ≤5 % wall overhead.

    ``warm_hints`` is a cached model from a delta-close instance (the
    solve gateway's result cache): the task first tries *witness
    replay* — re-certifying the hinted assignment against this
    instance's clauses (plus one lazy-refinement round for deferred
    families).  A hint that survives yields the SAT verdict with zero
    solver calls (``warm_started=True``); a hint that fails any check
    is discarded and the normal solve runs.  ``warm_fingerprint`` (the
    cached result's :func:`repro.opt.checkpoint.descent_fingerprint`)
    rejects hints from an incompatible variable space up front.  Proof
    runs (``with_proof``) never replay — an audit-grade verdict must
    come from the solver.
    """
    start = time.perf_counter()
    reg = MetricsRegistry()
    use_lazy = lazy and not with_proof and not presimplify
    member_base = SolverConfig(profile=True) if profile else None
    with trace.span("verify", parallel=parallel, lazy=use_lazy) as task_span:
        if layout is None:
            layout = VSSLayout.pure_ttd(net)
        with trace.span("encode", lazy=use_lazy):
            encoding = build_encoding(
                net, schedule, r_t_min, options, lazy=use_lazy
            )
            encoding.pin_layout(layout)
            if waypoints:
                encoding.pin_waypoints(waypoints)
        record_encoding(reg, encoding)

        clauses = encoding.cnf.clauses
        enabled = presimplify and not with_proof
        with trace.span("simplify", enabled=enabled):
            if enabled:
                # (Proof logging needs the original clauses to remain the
                # proof's premises, so the two options are mutually
                # exclusive by design.)
                clauses, simplify_stats = simplify_clauses(clauses)
                reg.absorb_simplify(simplify_stats)

        fingerprint = descent_fingerprint(
            encoding.cnf.num_vars, encoding.cnf.num_clauses, [], "verify"
        )
        portfolio_summary = None
        solve_calls = 1
        warm_used = False
        if (
            warm_hints
            and not with_proof
            and warm_compatible(warm_fingerprint, fingerprint)
        ):
            hint_vars = {lit for lit in warm_hints if lit > 0}
            with trace.span("warm-replay") as replay_span:
                clean = True
                if use_lazy and encoding.deferred_families:
                    # Deferred constraint families are not in the clause
                    # list yet; one refinement round materialises exactly
                    # the ones the hinted model would violate.  Clauses it
                    # adds are valid constraints and stay for the fallback
                    # solve.
                    clean = (
                        LazyRefiner(encoding, strategy=lazy_strategy)
                        .refine(sorted(hint_vars)) == 0
                    )
                warm_used = clean and clauses_satisfied(
                    encoding.cnf.clauses, hint_vars
                )
                replay_span.add(accepted=warm_used)
        if warm_used:
            # Witness replay: the cached model satisfies every clause of
            # *this* instance, so SAT is certified without a solver call.
            satisfiable = True
            solve_calls = 0
            proof_checked = None
            solver_stats: dict = {}
            reg.inc("task.warm_hits")
            with trace.span("decode", satisfiable=True):
                solution = checked_decode(encoding, hint_vars)
            model_lits = sorted(hint_vars)
        elif use_lazy:
            with trace.span("solve", lazy=True, processes=parallel):
                outcome = solve_lazy_verification(
                    encoding, parallel=parallel, strategy=lazy_strategy,
                    profile=profile,
                )
            satisfiable = outcome.satisfiable
            solve_calls = outcome.solve_calls
            proof_checked = None
            portfolio_summary = outcome.portfolio
            with trace.span("decode", satisfiable=satisfiable):
                solution = (
                    checked_decode(encoding, outcome.true_vars)
                    if satisfiable
                    else None
                )
            if outcome.solver is not None:
                record_solver(reg, outcome.solver)
            else:
                reg.absorb_solver_stats(outcome.solver_stats)
            solver_stats = outcome.solver_stats
            reg.absorb_lazy(outcome.refiner.stats())
            task_span.add(lazy_rounds=outcome.refiner.rounds)
            model_lits = sorted(outcome.true_vars) if satisfiable else []
        elif parallel > 1:
            with trace.span("solve", processes=parallel):
                race = solve_portfolio(
                    encoding.cnf.num_vars, clauses,
                    members=diversified_members(parallel, base=member_base),
                    processes=parallel, with_proof=with_proof,
                )
            satisfiable = bool(race)
            proof_checked = None
            with trace.span("decode", satisfiable=satisfiable):
                solution = (
                    checked_decode(encoding, race.true_set())
                    if satisfiable
                    else None
                )
            if (
                not satisfiable
                and with_proof
                and race.proof_steps is not None
            ):
                with trace.span("check-proof"):
                    proof_checked = check_rup_proof(
                        encoding.cnf.num_vars, clauses, race.proof_steps
                    )
            solver_stats = race.stats.merged_counters() if race.stats else {}
            if race.stats:
                portfolio_summary = race.stats.as_dict()
                reg.absorb_portfolio(race.stats)
            reg.absorb_solver_stats(solver_stats)
            model_lits = sorted(race.true_set()) if satisfiable else []
        else:
            logger = None
            solver = Solver(SolverConfig(profile=profile))
            if with_proof:
                logger = ProofLogger()
                solver.attach_proof(logger)
            attach_progress(solver)
            with trace.span("solve"):
                solver.ensure_var(max(encoding.cnf.num_vars, 1))
                for clause in clauses:
                    solver.add_clause(clause)
                verdict = solver.solve()
            satisfiable = bool(verdict)
            proof_checked = None
            true_vars = (
                {lit for lit in solver.model() if lit > 0}
                if satisfiable
                else set()
            )
            with trace.span("decode", satisfiable=satisfiable):
                solution = (
                    checked_decode(encoding, true_vars)
                    if satisfiable
                    else None
                )
            if not satisfiable and logger is not None:
                with trace.span("check-proof"):
                    proof_checked = check_rup_proof(
                        encoding.cnf.num_vars, encoding.cnf.clauses,
                        logger.steps,
                    )
            record_solver(reg, solver)
            solver_stats = solver.stats.as_dict()
            model_lits = sorted(true_vars)
        task_span.add(satisfiable=satisfiable, warm=warm_used)
    runtime = time.perf_counter() - start
    reg.set("task.runtime_s", runtime)
    return TaskResult(
        task="verification",
        variables=encoding.paper_equivalent_vars(),
        satisfiable=satisfiable,
        num_sections=(
            solution.num_sections if solution else layout.num_sections
        ),
        time_steps=solution.makespan if solution else None,
        runtime_s=runtime,
        actual_vars=encoding.cnf.num_vars,
        clauses=encoding.cnf.num_clauses,
        solution=solution,
        solve_calls=solve_calls,
        solver_stats=solver_stats,
        proof_checked=proof_checked,
        portfolio=portfolio_summary,
        metrics=reg.as_dict(),
        model=model_lits,
        warm_started=warm_used,
        fingerprint=fingerprint,
    )
