"""Batch task execution over a process pool.

Many workloads in this repository are *batches of independent task
invocations*: the twelve Table I rows, a resolution-sensitivity sweep, a
robustness screen over delay scenarios.  :func:`run_batch` runs such a batch
over a process pool with

* **deterministic per-job seeds** — every job gets a seed that is a pure
  function of the batch seed, the job index, and the job name, so a batch
  is reproducible regardless of how its jobs were scheduled;
* **structured per-job results** — each job yields a
  :class:`BatchJobResult` carrying the returned value *or* the captured
  error, never an exception that kills the batch;
* **graceful degradation** — ``processes=1``, a single-job batch, or a
  platform without ``fork`` runs the jobs serially in-process, with
  identical results.

Job functions must be importable (module-level) callables when running with
processes — the pool ships them by pickling.  The serial path has no such
restriction.

The module also packages the paper's Table I as a ready-made batch
(:func:`table1_jobs` / :func:`run_table1`), which is what ``python -m repro
table1 --jobs N`` executes.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable

from repro.obs import trace
from repro.sat.portfolio import default_processes, fork_available


@dataclass(frozen=True)
class BatchJob:
    """One unit of a batch: a callable plus its arguments.

    ``seed_kwarg`` names a keyword argument through which the job wants to
    receive its deterministic per-job seed (omitted when None).
    """

    name: str
    func: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed_kwarg: str | None = None


@dataclass
class BatchJobResult:
    """Outcome of one batch job (value or captured error, never both).

    ``spans`` carries the trace spans recorded in the worker process when
    tracing is on; :func:`run_batch` merges them into the parent's trace.
    """

    name: str
    index: int
    ok: bool
    value: Any = None
    error: str = ""
    runtime_s: float = 0.0
    seed: int = 0
    spans: list = field(default_factory=list)


@dataclass
class BatchReport:
    """Outcome of a whole batch."""

    results: list[BatchJobResult]
    wall_time_s: float
    processes: int
    serial_fallback: bool

    @property
    def ok(self) -> bool:
        """True when every job succeeded."""
        return all(result.ok for result in self.results)

    def failures(self) -> list[BatchJobResult]:
        """The jobs that raised, in batch order."""
        return [result for result in self.results if not result.ok]

    def values(self) -> list[Any]:
        """The returned values of the successful jobs, in batch order."""
        return [result.value for result in self.results if result.ok]

    def value_of(self, name: str) -> Any:
        """The value returned by the job called ``name``."""
        for result in self.results:
            if result.name == name:
                if not result.ok:
                    raise RuntimeError(
                        f"batch job {name!r} failed: {result.error}"
                    )
                return result.value
        raise KeyError(f"no batch job named {name!r}")


def job_seed(batch_seed: int, index: int, name: str) -> int:
    """Deterministic per-job seed: a pure function of batch seed/index/name."""
    return zlib.crc32(f"{batch_seed}:{index}:{name}".encode()) & 0x7FFFFFFF


def _execute(
    job: BatchJob, index: int, seed: int, child_trace: bool = False
) -> BatchJobResult:
    """Run one job in the current process, capturing any exception.

    With ``child_trace`` (the process-pool path) the job runs under a fresh
    per-worker tracer whose spans are shipped back in the result; the
    fork-inherited parent tracer tells the worker whether tracing is on.
    """
    start = time.perf_counter()
    child_trace = child_trace and trace.enabled()
    if child_trace:
        trace.install(trace.fork_child(tid=f"batch:{job.name}"))
    kwargs = dict(job.kwargs)
    if job.seed_kwarg is not None:
        kwargs[job.seed_kwarg] = seed
    try:
        with trace.span("batch.job", job=job.name, seed=seed):
            value = job.func(*job.args, **kwargs)
    except Exception as exc:  # captured, reported, never re-raised
        return BatchJobResult(
            name=job.name, index=index, ok=False,
            error=f"{type(exc).__name__}: {exc}",
            runtime_s=time.perf_counter() - start, seed=seed,
            spans=trace.export_spans() if child_trace else [],
        )
    return BatchJobResult(
        name=job.name, index=index, ok=True, value=value,
        runtime_s=time.perf_counter() - start, seed=seed,
        spans=trace.export_spans() if child_trace else [],
    )


def run_batch(
    jobs: list[BatchJob],
    processes: int | None = None,
    seed: int = 0,
) -> BatchReport:
    """Run ``jobs`` concurrently over a process pool.

    ``processes`` defaults to :func:`repro.sat.portfolio.default_processes`.
    With ``processes <= 1``, a single job, or no ``fork`` support the batch
    runs serially in-process (bit-identical results, no pickling
    requirement on the job functions).

    A worker process that dies abruptly (beyond a captured Python
    exception) does not sink the batch: its pending jobs are re-executed
    serially in the parent.
    """
    start = time.perf_counter()
    if processes is None:
        processes = default_processes()
    seeds = [job_seed(seed, i, job.name) for i, job in enumerate(jobs)]

    serial = processes <= 1 or len(jobs) <= 1 or not fork_available()
    results: list[BatchJobResult | None] = [None] * len(jobs)
    with trace.span(
        "batch", jobs=len(jobs), processes=processes, serial=serial
    ):
        if serial:
            for i, job in enumerate(jobs):
                results[i] = _execute(job, i, seeds[i])
        else:
            pending: dict = {}
            try:
                with ProcessPoolExecutor(
                    max_workers=processes, mp_context=get_context("fork")
                ) as pool:
                    pending = {
                        pool.submit(
                            _execute, job, i, seeds[i], True
                        ): i
                        for i, job in enumerate(jobs)
                    }
                    not_done = set(pending)
                    while not_done:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            i = pending[future]
                            exc = future.exception()
                            if exc is None:
                                results[i] = future.result()
                            # else: pool breakage — fallback below
            except Exception:
                pass  # BrokenProcessPool and friends: recovery below
            for i, job in enumerate(jobs):
                if results[i] is None:
                    # The worker (or the whole pool) died before
                    # reporting: recover serially in the parent.
                    results[i] = _execute(job, i, seeds[i])
                else:
                    trace.merge(results[i].spans)

    return BatchReport(
        results=[result for result in results if result is not None],
        wall_time_s=time.perf_counter() - start,
        processes=processes,
        serial_fallback=serial,
    )


# ----------------------------------------------------------------------
# Ready-made batches
# ----------------------------------------------------------------------


def _case_key(name: str) -> str:
    return name.lower().replace(" ", "-")


def run_case_task(case: str, task: str, parallel: int = 1, **kwargs):
    """Run one design task on one named case study (a batchable unit).

    ``case`` is the case-study key (e.g. ``"running-example"``), ``task``
    one of ``"verification"``, ``"generation"``, ``"optimization"``.
    Remaining keyword arguments are forwarded to the task function.
    """
    from repro.casestudies import all_case_studies
    from repro.tasks.generation import generate_layout
    from repro.tasks.optimization import optimize_schedule
    from repro.tasks.verification import verify_schedule

    study = next(
        (s for s in all_case_studies() if _case_key(s.name) == case), None
    )
    if study is None:
        raise ValueError(f"unknown case study {case!r}")
    net = study.discretize()
    if task == "verification":
        return verify_schedule(
            net, study.schedule, study.r_t_min, parallel=parallel, **kwargs
        )
    if task == "generation":
        return generate_layout(
            net, study.schedule, study.r_t_min, parallel=parallel, **kwargs
        )
    if task == "optimization":
        return optimize_schedule(
            net, study.schedule, study.r_t_min, parallel=parallel, **kwargs
        )
    raise ValueError(f"unknown task {task!r}")


def table1_jobs(
    skip_slow: bool = False, parallel: int = 1
) -> list[BatchJob]:
    """The paper's Table I (all case studies × all three tasks) as a batch."""
    from repro.casestudies import all_case_studies

    studies = all_case_studies()
    if skip_slow:
        studies = studies[:2]
    jobs = []
    for study in studies:
        key = _case_key(study.name)
        for task, kwargs in (
            ("verification", {}),
            ("generation", {}),
            ("optimization", {"minimize_borders_secondary": True}),
        ):
            jobs.append(
                BatchJob(
                    name=f"{key}/{task}",
                    func=run_case_task,
                    args=(key, task),
                    kwargs={"parallel": parallel, **kwargs},
                )
            )
    return jobs


def run_table1(
    skip_slow: bool = False,
    processes: int | None = None,
    parallel: int = 1,
) -> BatchReport:
    """Regenerate Table I as a batch: one job per row, ``processes`` wide."""
    return run_batch(table1_jobs(skip_slow, parallel), processes=processes)
