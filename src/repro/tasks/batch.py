"""Batch task execution over a process pool.

Many workloads in this repository are *batches of independent task
invocations*: the twelve Table I rows, a resolution-sensitivity sweep, a
robustness screen over delay scenarios.  :func:`run_batch` runs such a batch
over a process pool with

* **deterministic per-job seeds** — every job gets a seed that is a pure
  function of the batch seed, the job index, and the job name, so a batch
  is reproducible regardless of how its jobs were scheduled;
* **structured per-job results** — each job yields a
  :class:`BatchJobResult` carrying the returned value *or* the captured
  error, never an exception that kills the batch;
* **graceful degradation** — ``processes=1``, a single-job batch, or a
  platform without ``fork`` runs the jobs serially in-process, with
  identical results.

Worker death is survivable in three escalating steps: jobs lost to a broken
pool are first **retried** in fresh single-worker pools (bounded attempts
with exponential backoff), then **recovered** serially in the parent; a
``manifest_path`` additionally persists every finished job to a JSONL
manifest so a *killed batch* can be re-run and skip its completed jobs.
``job_timeout_s`` bounds each job with a SIGALRM-based wall clock.  All
recovery activity is counted in ``BatchReport.metrics``
(``batch.pool_broken``, ``retry.attempts``, ``batch.serial_recoveries``,
``batch.job_timeouts``, …).

Job functions must be importable (module-level) callables when running with
processes — the pool ships them by pickling.  The serial path has no such
restriction.

The module also packages the paper's Table I as a ready-made batch
(:func:`table1_jobs` / :func:`run_table1`), which is what ``python -m repro
table1 --jobs N`` executes.
"""

from __future__ import annotations

import importlib
import json
import signal
import threading
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable

from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.sat.portfolio import default_processes, fork_available
from repro.testing import faults


@dataclass(frozen=True)
class BatchJob:
    """One unit of a batch: a callable plus its arguments.

    ``seed_kwarg`` names a keyword argument through which the job wants to
    receive its deterministic per-job seed (omitted when None).
    """

    name: str
    func: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed_kwarg: str | None = None


@dataclass
class BatchJobResult:
    """Outcome of one batch job (value or captured error, never both).

    ``spans`` carries the trace spans recorded in the worker process when
    tracing is on; :func:`run_batch` merges them into the parent's trace.
    """

    name: str
    index: int
    ok: bool
    value: Any = None
    error: str = ""
    runtime_s: float = 0.0
    seed: int = 0
    spans: list = field(default_factory=list)


@dataclass
class BatchReport:
    """Outcome of a whole batch.

    ``serial`` records the *scheduling decision* (the batch ran serially
    in-process from the start); the recovery story after a worker death
    is split out into ``retried_jobs`` (re-run in fresh single-worker
    pools) and ``recovered_jobs`` (re-run serially in the parent after
    retries were exhausted).  ``resumed_jobs`` were restored from the
    manifest without running at all.
    """

    results: list[BatchJobResult]
    wall_time_s: float
    processes: int
    serial: bool
    recovered_jobs: list[str] = field(default_factory=list)
    retried_jobs: list[str] = field(default_factory=list)
    resumed_jobs: list[str] = field(default_factory=list)
    pool_error: str = ""
    metrics: dict = field(default_factory=dict)

    @property
    def serial_fallback(self) -> bool:
        """Deprecated alias for ``serial`` (the initial scheduling
        decision) — pre-dates the ``recovered_jobs`` split."""
        return self.serial

    @property
    def ok(self) -> bool:
        """True when every job succeeded."""
        return all(result.ok for result in self.results)

    def failures(self) -> list[BatchJobResult]:
        """The jobs that raised, in batch order."""
        return [result for result in self.results if not result.ok]

    def values(self) -> list[Any]:
        """The returned values of the successful jobs, in batch order."""
        return [result.value for result in self.results if result.ok]

    def value_of(self, name: str) -> Any:
        """The value returned by the job called ``name``."""
        for result in self.results:
            if result.name == name:
                if not result.ok:
                    raise RuntimeError(
                        f"batch job {name!r} failed: {result.error}"
                    )
                return result.value
        raise KeyError(f"no batch job named {name!r}")


def job_seed(batch_seed: int, index: int, name: str) -> int:
    """Deterministic per-job seed: a pure function of batch seed/index/name."""
    return zlib.crc32(f"{batch_seed}:{index}:{name}".encode()) & 0x7FFFFFFF


class BatchJobTimeout(Exception):
    """A job exceeded ``job_timeout_s`` (raised inside the job via SIGALRM)."""


@contextmanager
def _job_alarm(timeout_s: float | None):
    """Interrupt the enclosed block after ``timeout_s`` via SIGALRM.

    Only armed on the main thread of a POSIX process (SIGALRM cannot be
    delivered to other threads, and Windows has no itimers); elsewhere
    the block runs unbounded.  An outer itimer (e.g. a test-suite
    timeout) is saved and re-armed with its remaining time on exit.
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise BatchJobTimeout(f"job exceeded {timeout_s:.3g}s")

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    outer_remaining, __ = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    start = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)
        if outer_remaining > 0:
            # Re-arm the enclosing timer with whatever it had left.
            remaining = outer_remaining - (time.monotonic() - start)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 0.001))


def _execute(
    job: BatchJob,
    index: int,
    seed: int,
    child_trace: bool = False,
    timeout_s: float | None = None,
    attempt: int = 0,
) -> BatchJobResult:
    """Run one job in the current process, capturing any exception.

    With ``child_trace`` (the process-pool path) the job runs under a fresh
    per-worker tracer whose spans are shipped back in the result; the
    fork-inherited parent tracer tells the worker whether tracing is on.
    Fault-injection hooks fire only on the pool path, so the parent's
    serial recovery always survives an injected worker kill.
    """
    start = time.perf_counter()
    in_pool = child_trace
    child_trace = child_trace and trace.enabled()
    if child_trace:
        trace.install(trace.fork_child(tid=f"batch:{job.name}"))
    if in_pool:
        faults.on_batch_job(job.name, attempt)
    kwargs = dict(job.kwargs)
    if job.seed_kwarg is not None:
        kwargs[job.seed_kwarg] = seed
    try:
        with _job_alarm(timeout_s):
            with trace.span("batch.job", job=job.name, seed=seed):
                value = job.func(*job.args, **kwargs)
    except Exception as exc:  # captured, reported, never re-raised
        return BatchJobResult(
            name=job.name, index=index, ok=False,
            error=f"{type(exc).__name__}: {exc}",
            runtime_s=time.perf_counter() - start, seed=seed,
            spans=trace.export_spans() if child_trace else [],
        )
    return BatchJobResult(
        name=job.name, index=index, ok=True, value=value,
        runtime_s=time.perf_counter() - start, seed=seed,
        spans=trace.export_spans() if child_trace else [],
    )


def _restore_value(value_type: str, payload):
    """Rebuild a manifest value recorded through a ``to_manifest`` codec.

    ``value_type`` is ``"module:QualName"`` of the original class; its
    ``from_manifest`` classmethod gets the JSON payload back.  Plain
    JSON values (empty ``value_type``) pass through untouched.
    """
    if not value_type:
        return payload
    module_name, _, qualname = value_type.partition(":")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj.from_manifest(payload)


class BatchManifest:
    """JSONL record of finished jobs, for resuming a killed batch.

    Each line is one finished job keyed by ``(index, name, seed)`` — the
    key includes the seed so a manifest written under a different batch
    seed (or job order) never leaks stale results into a resume.  A
    successful job is *restored* when its value is JSON-representable or
    its value's class offers a ``to_manifest()`` / ``from_manifest()``
    JSON codec (:class:`repro.tasks.result.TaskResult` does, minus the
    decoded solution); everything else is recorded for the log but
    re-runs.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None
        self._disabled = False

    def load(self) -> dict[tuple[int, str, int], dict]:
        """Previously recorded jobs, keyed by (index, name, seed)."""
        entries: dict[tuple[int, str, int], dict] = {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn trailing line from a kill
                    key = (
                        record.get("index"),
                        record.get("name"),
                        record.get("seed"),
                    )
                    entries[key] = record
        except FileNotFoundError:
            pass
        return entries

    def open(self) -> None:
        try:
            self._handle = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            self._disabled = True
            trace.event("manifest.open_failed", path=self.path,
                        error=str(exc))

    def record(self, result: BatchJobResult) -> None:
        """Append one finished job; flushed so a kill loses at most it."""
        if self._disabled or self._handle is None:
            return
        value, restorable, value_type = None, False, ""
        if result.ok:
            payload = result.value
            to_manifest = getattr(payload, "to_manifest", None)
            if callable(to_manifest):
                try:
                    payload = to_manifest()
                    value_type = (
                        f"{type(result.value).__module__}:"
                        f"{type(result.value).__qualname__}"
                    )
                except Exception:
                    payload, value_type = result.value, ""
            try:
                value = json.loads(json.dumps(payload))
                restorable = True
            except (TypeError, ValueError):
                value_type = ""  # non-JSON value: logged but re-run
        record = {
            "index": result.index, "name": result.name,
            "seed": result.seed, "ok": result.ok,
            "error": result.error, "runtime_s": result.runtime_s,
            "restorable": restorable, "value": value,
            "value_type": value_type,
        }
        try:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
        except OSError as exc:
            self._disabled = True
            trace.event("manifest.write_failed", path=self.path,
                        error=str(exc))

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


def run_batch(
    jobs: list[BatchJob],
    processes: int | None = None,
    seed: int = 0,
    job_timeout_s: float | None = None,
    max_retries: int = 1,
    retry_backoff_s: float = 0.05,
    manifest_path: str | None = None,
) -> BatchReport:
    """Run ``jobs`` concurrently over a process pool.

    ``processes`` defaults to :func:`repro.sat.portfolio.default_processes`.
    With ``processes <= 1``, a single job, or no ``fork`` support the batch
    runs serially in-process (bit-identical results, no pickling
    requirement on the job functions).

    A worker process that dies abruptly (beyond a captured Python
    exception) does not sink the batch: its jobs are retried up to
    ``max_retries`` times in fresh single-worker pools (exponential
    backoff starting at ``retry_backoff_s``), and whatever still has no
    result is recovered serially in the parent.  ``job_timeout_s``
    bounds each job's wall clock (the job fails with
    :class:`BatchJobTimeout` instead of hanging the batch).
    ``manifest_path`` appends every finished job to a JSONL manifest and
    — when the file already exists — restores completed jobs from it
    instead of re-running them.
    """
    start = time.perf_counter()
    met = MetricsRegistry()
    if processes is None:
        processes = default_processes()
    seeds = [job_seed(seed, i, job.name) for i, job in enumerate(jobs)]

    results: list[BatchJobResult | None] = [None] * len(jobs)
    recovered: list[str] = []
    retried: list[str] = []
    resumed: list[str] = []
    pool_error = ""

    manifest = BatchManifest(manifest_path) if manifest_path else None
    if manifest is not None:
        previous = manifest.load()
        for i, job in enumerate(jobs):
            record = previous.get((i, job.name, seeds[i]))
            if record is None:
                continue
            if record.get("ok") and record.get("restorable"):
                try:
                    value = _restore_value(
                        record.get("value_type", ""), record.get("value")
                    )
                except Exception as exc:
                    trace.event("manifest.restore_failed", job=job.name,
                                error=f"{type(exc).__name__}: {exc}")
                    met.inc("batch.manifest_skipped")
                    continue
                results[i] = BatchJobResult(
                    name=job.name, index=i, ok=True, value=value,
                    runtime_s=record.get("runtime_s", 0.0),
                    seed=seeds[i],
                )
                resumed.append(job.name)
                met.inc("batch.manifest_restored")
            else:
                met.inc("batch.manifest_skipped")
        manifest.open()

    todo = [i for i in range(len(jobs)) if results[i] is None]
    serial = processes <= 1 or len(jobs) <= 1 or not fork_available()

    def note_pool_error(exc: BaseException) -> None:
        nonlocal pool_error
        message = f"{type(exc).__name__}: {exc}"
        if not pool_error:
            pool_error = message
        met.inc("batch.pool_broken")
        trace.event("batch.pool_broken", error=message)

    def finish(result: BatchJobResult) -> None:
        results[result.index] = result
        if not result.ok and result.error.startswith("BatchJobTimeout"):
            met.inc("batch.job_timeouts")
        if manifest is not None:
            manifest.record(result)

    with trace.span(
        "batch", jobs=len(jobs), processes=processes, serial=serial
    ):
        if serial:
            for i in todo:
                finish(_execute(jobs[i], i, seeds[i],
                                timeout_s=job_timeout_s))
        elif todo:
            try:
                with ProcessPoolExecutor(
                    max_workers=processes, mp_context=get_context("fork")
                ) as pool:
                    pending = {
                        pool.submit(
                            _execute, jobs[i], i, seeds[i], True,
                            job_timeout_s,
                        ): i
                        for i in todo
                    }
                    not_done = set(pending)
                    while not_done:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            exc = future.exception()
                            if exc is None:
                                result = future.result()
                                trace.merge(result.spans)
                                finish(result)
                            elif isinstance(exc, KeyboardInterrupt):
                                raise exc
                            elif isinstance(exc, (BrokenProcessPool,
                                                  OSError)):
                                # The worker died without reporting;
                                # leave the slot for the retry phase.
                                note_pool_error(exc)
                            else:
                                raise exc
            except KeyboardInterrupt:
                raise
            except (BrokenProcessPool, OSError) as exc:
                note_pool_error(exc)

            # Retry phase: fresh single-worker pools, bounded attempts,
            # exponential backoff — a crash loop cannot spin forever.
            for attempt in range(1, max_retries + 1):
                remaining = [i for i in todo if results[i] is None]
                if not remaining:
                    break
                time.sleep(retry_backoff_s * (2 ** (attempt - 1)))
                met.observe("retry.backoff_s",
                            retry_backoff_s * (2 ** (attempt - 1)))
                for i in remaining:
                    met.inc("retry.attempts")
                    if jobs[i].name not in retried:
                        retried.append(jobs[i].name)
                    try:
                        with ProcessPoolExecutor(
                            max_workers=1, mp_context=get_context("fork")
                        ) as pool:
                            future = pool.submit(
                                _execute, jobs[i], i, seeds[i], True,
                                job_timeout_s, attempt,
                            )
                            exc = future.exception()
                            if exc is None:
                                result = future.result()
                                trace.merge(result.spans)
                                finish(result)
                            elif isinstance(exc, KeyboardInterrupt):
                                raise exc
                            elif isinstance(exc, (BrokenProcessPool,
                                                  OSError)):
                                met.inc("retry.worker_deaths")
                                note_pool_error(exc)
                            else:
                                raise exc
                    except KeyboardInterrupt:
                        raise
                    except (BrokenProcessPool, OSError) as exc:
                        met.inc("retry.worker_deaths")
                        note_pool_error(exc)

            # Last resort: run what is still missing serially in the
            # parent (no fault hooks fire here, so injected kills
            # cannot reach this path).
            for i in todo:
                if results[i] is None:
                    finish(_execute(jobs[i], i, seeds[i],
                                    timeout_s=job_timeout_s))
                    recovered.append(jobs[i].name)
                    met.inc("batch.serial_recoveries")
                    trace.event("batch.serial_recovery", job=jobs[i].name)

    if manifest is not None:
        manifest.close()

    return BatchReport(
        results=[result for result in results if result is not None],
        wall_time_s=time.perf_counter() - start,
        processes=processes,
        serial=serial,
        recovered_jobs=recovered,
        retried_jobs=retried,
        resumed_jobs=resumed,
        pool_error=pool_error,
        metrics=met.as_dict(),
    )


# ----------------------------------------------------------------------
# Ready-made batches
# ----------------------------------------------------------------------


def _case_key(name: str) -> str:
    return name.lower().replace(" ", "-")


def run_case_task(case: str, task: str, parallel: int = 1, **kwargs):
    """Run one design task on one named case study (a batchable unit).

    ``case`` is the case-study key (e.g. ``"running-example"``), ``task``
    one of ``"verification"``, ``"generation"``, ``"optimization"``.
    Remaining keyword arguments are forwarded to the task function.
    """
    from repro.casestudies import all_case_studies
    from repro.tasks.generation import generate_layout
    from repro.tasks.optimization import optimize_schedule
    from repro.tasks.verification import verify_schedule

    study = next(
        (s for s in all_case_studies() if _case_key(s.name) == case), None
    )
    if study is None:
        raise ValueError(f"unknown case study {case!r}")
    net = study.discretize()
    if task == "verification":
        return verify_schedule(
            net, study.schedule, study.r_t_min, parallel=parallel, **kwargs
        )
    if task == "generation":
        return generate_layout(
            net, study.schedule, study.r_t_min, parallel=parallel, **kwargs
        )
    if task == "optimization":
        return optimize_schedule(
            net, study.schedule, study.r_t_min, parallel=parallel, **kwargs
        )
    raise ValueError(f"unknown task {task!r}")


def table1_jobs(
    skip_slow: bool = False, parallel: int = 1
) -> list[BatchJob]:
    """The paper's Table I (all case studies × all three tasks) as a batch."""
    from repro.casestudies import all_case_studies

    studies = all_case_studies()
    if skip_slow:
        studies = studies[:2]
    jobs = []
    for study in studies:
        key = _case_key(study.name)
        for task, kwargs in (
            ("verification", {}),
            ("generation", {}),
            ("optimization", {"minimize_borders_secondary": True}),
        ):
            jobs.append(
                BatchJob(
                    name=f"{key}/{task}",
                    func=run_case_task,
                    args=(key, task),
                    kwargs={"parallel": parallel, **kwargs},
                )
            )
    return jobs


def run_table1(
    skip_slow: bool = False,
    processes: int | None = None,
    parallel: int = 1,
    job_timeout_s: float | None = None,
    manifest_path: str | None = None,
) -> BatchReport:
    """Regenerate Table I as a batch: one job per row, ``processes`` wide."""
    return run_batch(
        table1_jobs(skip_slow, parallel),
        processes=processes,
        job_timeout_s=job_timeout_s,
        manifest_path=manifest_path,
    )
