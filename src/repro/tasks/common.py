"""Shared plumbing for the task implementations."""

from __future__ import annotations

from repro.encoding.decode import Solution
from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.encoding.validate import validate_solution
from repro.network.discretize import DiscreteNetwork
from repro.trains.schedule import Schedule


class SolutionInvalidError(AssertionError):
    """A decoded SAT solution violated the operational rules.

    This indicates a bug in the encoder (or the validator); it is raised
    rather than returned so that tests and case studies fail loudly.
    """


def build_encoding(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    options: EncodingOptions | None,
) -> EtcsEncoding:
    """Construct and build the base encoding."""
    return EtcsEncoding(net, schedule, r_t_min, options).build()


def checked_decode(encoding: EtcsEncoding, true_vars: set[int]) -> Solution:
    """Decode a model and cross-check it with the independent validator."""
    solution = encoding.decode(true_vars)
    problems = validate_solution(encoding, solution)
    if problems:
        details = "\n  ".join(problems[:20])
        raise SolutionInvalidError(
            f"decoded solution violates {len(problems)} rule(s):\n  {details}"
        )
    return solution
