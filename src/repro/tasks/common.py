"""Shared plumbing for the task implementations."""

from __future__ import annotations

from repro.encoding.decode import Solution
from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.encoding.validate import validate_solution
from repro.network.discretize import DiscreteNetwork
from repro.obs import events as obs_events
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.opt.result import STATUS_TIMEOUT
from repro.sat.solver import Solver
from repro.trains.schedule import Schedule


class SolutionInvalidError(AssertionError):
    """A decoded SAT solution violated the operational rules.

    This indicates a bug in the encoder (or the validator); it is raised
    rather than returned so that tests and case studies fail loudly.
    """


def build_encoding(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    options: EncodingOptions | None,
    lazy: bool = False,
) -> EtcsEncoding:
    """Construct and build the base encoding.

    With ``lazy`` the cross-train families are deferred for the CEGAR
    loop (:mod:`repro.encoding.lazy`) to instantiate on demand.

    With ``options.guarded_arrivals`` every arrival selector is pinned
    true, so the timetable commitments stay enforced and the verdict
    matches the unguarded encoding — tasks gain a deadline-independent
    variable space (the gateway's warm-start requirement) without the
    diagnosis semantics, which builds its own encoding and drives the
    selectors as assumptions instead.
    """
    encoding = EtcsEncoding(net, schedule, r_t_min, options).build(lazy=lazy)
    for selector in encoding.arrival_selectors.values():
        encoding.cnf.add_unit(selector)
    return encoding


def checked_decode(encoding: EtcsEncoding, true_vars: set[int]) -> Solution:
    """Decode a model and cross-check it with the independent validator."""
    solution = encoding.decode(true_vars)
    with trace.span("validate"):
        problems = validate_solution(encoding, solution)
    if problems:
        details = "\n  ".join(problems[:20])
        raise SolutionInvalidError(
            f"decoded solution violates {len(problems)} rule(s):\n  {details}"
        )
    return solution


def record_encoding(reg: MetricsRegistry, encoding: EtcsEncoding) -> None:
    """Absorb the encoding's size metrics (per constraint family + totals)."""
    reg.absorb_encoder(encoding.family_stats)
    reg.set("encoder.vars", encoding.cnf.num_vars)
    reg.set("encoder.clauses", encoding.cnf.num_clauses)
    reg.set("encoder.t_max", encoding.t_max)
    reg.set("encoder.trains", len(encoding.runs))


def record_solver(reg: MetricsRegistry, solver: Solver) -> None:
    """Absorb a serial solver's counters and restart cadence."""
    reg.absorb_solver_stats(solver.stats.as_dict())
    for delta in solver.stats.restart_conflict_deltas:
        reg.observe("solver.restart_conflicts", delta)


def record_descent(reg: MetricsRegistry, result) -> None:
    """Absorb a :class:`MinimizeResult`'s counters and race summary."""
    reg.absorb_solver_stats(result.solver_stats)
    reg.inc("descent.solve_calls", result.solve_calls)
    status = getattr(result, "status", "")
    if status:
        reg.inc(f"descent.status.{status}")
        if status == STATUS_TIMEOUT:
            reg.inc("deadline.descent_timeouts")
    if getattr(result, "resumed", False):
        reg.inc("checkpoint.resumes")
    checkpoint = getattr(result, "checkpoint", None)
    if checkpoint:
        reg.inc("checkpoint.writes", checkpoint.get("writes", 0))
        failures = checkpoint.get("write_failures", 0)
        if failures:
            reg.inc("checkpoint.write_failures", failures)
    deadline_hits = result.solver_stats.get("deadline_hits", 0)
    if deadline_hits:
        reg.inc("deadline.solver_hits", deadline_hits)
    if result.portfolio:
        reg.set("portfolio.processes", result.portfolio.get("processes", 0))
        reg.inc("portfolio.races", result.portfolio.get("calls", 0))
        reg.observe(
            "portfolio.wall_time_s", result.portfolio.get("wall_time_s", 0.0)
        )
        for member, count in result.portfolio.get("winners", {}).items():
            reg.inc(f"portfolio.wins.{member}", count)
        service = result.portfolio.get("service")
        if service:
            # ``service.*`` / ``share.*`` session counters, including
            # ``service.worker_crashes`` for mid-descent deaths.
            reg.merge_dict(service.get("counters", {}))
            if service.get("fallback"):
                reg.inc("service.fallbacks")


def attach_progress(solver: Solver, interval_conflicts: int = 2000) -> None:
    """Feed periodic solver progress snapshots into the trace and the
    structured event stream (whichever are enabled), and forward the
    solver's own events (restarts, deadline hits) to the event log."""
    progress = obs_events.progress_callback()
    if progress is not None:
        solver.on_progress(progress, interval_conflicts=interval_conflicts)
    if obs_events.enabled():
        solver.on_event(obs_events.emit)
