"""Delay-robustness analysis: how late may a train run before the plan breaks?

One of the "design tasks beyond" the paper's three (its footnote 3): a
timetable that is feasible only if every train departs to the second is
operationally worthless.  :func:`delay_tolerance` injects departure delays
into one train and finds, by exhaustive upward search, the largest delay (in
time steps) under which the schedule remains realisable on the given layout —
and :func:`robustness_report` does it for every train.
"""

from __future__ import annotations

from repro.encoding.encoder import EncodingOptions
from repro.network.discretize import DiscreteNetwork
from repro.network.sections import VSSLayout
from repro.scenarios.disruptions import delayed_schedule
from repro.tasks.verification import verify_schedule
from repro.trains.schedule import Schedule, ScheduleError

_delayed = delayed_schedule  # historical alias of the shared transform


def delay_tolerance(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    train_name: str,
    layout: VSSLayout | None = None,
    max_steps: int = 10,
    options: EncodingOptions | None = None,
) -> int:
    """Largest departure delay (in steps) of ``train_name`` that keeps the
    schedule feasible on ``layout``.

    Returns -1 if the schedule is infeasible even without any delay, and
    ``max_steps`` if every probed delay still works.  Deadlines stay fixed —
    a delayed train must still arrive on time, which is the operational
    meaning of slack.
    """
    schedule.run_of(train_name)  # raises ScheduleError for unknown trains
    tolerance = -1
    for delay in range(0, max_steps + 1):
        try:
            delayed = delayed_schedule(schedule, train_name, delay * r_t_min)
        except ScheduleError:
            break  # departure pushed past a deadline or scenario end
        result = verify_schedule(
            net, delayed, r_t_min, layout=layout, options=options
        )
        if not result.satisfiable:
            break
        tolerance = delay
    return tolerance


def robustness_report(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    layout: VSSLayout | None = None,
    max_steps: int = 10,
    options: EncodingOptions | None = None,
) -> dict[str, int]:
    """Per-train delay tolerance (in steps) on the given layout."""
    return {
        run.train.name: delay_tolerance(
            net, schedule, r_t_min, run.train.name,
            layout=layout, max_steps=max_steps, options=options,
        )
        for run in schedule.runs
    }
