"""Infeasibility diagnosis: *which* timetable commitments conflict?

When verification answers UNSAT, the paper's methodology proves the
schedule impossible — but a designer next wants to know *why*.  This module
answers it at the domain level: each train's arrival deadline (and stop
windows) becomes a soft commitment guarded by a solver assumption; the unsat
core names the conflicting trains, and an iterative deletion pass shrinks it
to a *minimal* conflicting set (removing any one train's commitments from it
makes the rest realisable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.network.discretize import DiscreteNetwork
from repro.network.sections import VSSLayout
from repro.obs.metrics import MetricsRegistry
from repro.sat import Solver, SolveResult
from repro.trains.schedule import Schedule


@dataclass
class DiagnosisResult:
    """Outcome of :func:`diagnose_infeasibility`.

    Attributes:
        feasible: True when all commitments hold together (empty diagnosis).
        conflicting_trains: minimal set of train names whose deadlines/stops
            cannot jointly be met on the layout (empty when feasible).
        relaxable: True when dropping the conflicting trains' commitments
            makes the remaining schedule realisable (sanity confirmation).
        structural: True when the infeasibility persists even with *all*
            commitments relaxed — the layout simply cannot host the runs
            within the horizon (e.g. the running example's pure-TTD
            deadlock); no deadline is to blame.
        solve_calls: SAT invocations used.
        runtime_s: wall-clock seconds.
        metrics: flat ``diagnosis.*`` metrics of the run
            (:class:`repro.obs.metrics.MetricsRegistry` export).
    """

    feasible: bool
    conflicting_trains: list[str] = field(default_factory=list)
    relaxable: bool = False
    structural: bool = False
    solve_calls: int = 0
    runtime_s: float = 0.0
    metrics: dict = field(default_factory=dict)


def diagnose_infeasibility(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    layout: VSSLayout | None = None,
    options: EncodingOptions | None = None,
) -> DiagnosisResult:
    """Find a minimal set of trains whose commitments conflict on ``layout``.

    The layout defaults to the pure TTD layout (the verification setting).
    Note that even with all commitments relaxed, trains must still complete
    their runs within the scenario horizon — if that alone is impossible the
    diagnosis reports *all* trains of the final core.
    """
    start = time.perf_counter()
    if layout is None:
        layout = VSSLayout.pure_ttd(net)
    base = options or EncodingOptions()
    options = EncodingOptions(
        amo=base.amo,
        use_cone=base.use_cone,
        add_swap_clauses=base.add_swap_clauses,
        add_collision_clauses=base.add_collision_clauses,
        guarded_arrivals=True,
    )
    encoding = EtcsEncoding(net, schedule, r_t_min, options).build()
    encoding.pin_layout(layout)
    solver = encoding.cnf.to_solver(Solver())
    calls = 0

    selector_of = encoding.arrival_selectors
    name_of = {i: run.name for i, run in enumerate(encoding.runs)}

    def _metrics(core_size: int, calls: int, runtime: float) -> dict:
        reg = MetricsRegistry()
        reg.inc("diagnosis.runs")
        reg.inc("diagnosis.solve_calls", calls)
        reg.set("diagnosis.core_size", core_size)
        reg.set("diagnosis.runtime_s", runtime)
        return reg.as_dict()

    all_selectors = [selector_of[i] for i in sorted(selector_of)]
    calls += 1
    if solver.solve(all_selectors) is SolveResult.SAT:
        runtime = time.perf_counter() - start
        return DiagnosisResult(
            feasible=True,
            solve_calls=calls,
            runtime_s=runtime,
            metrics=_metrics(0, calls, runtime),
        )

    # Start from the solver's core, then shrink by iterative deletion.
    core = [lit for lit in solver.unsat_core() if lit in set(all_selectors)]
    if not core:
        # Conflict independent of any commitment (hard constraints alone).
        core = list(all_selectors)
    changed = True
    while changed:
        changed = False
        for candidate in list(core):
            trial = [lit for lit in core if lit != candidate]
            calls += 1
            if solver.solve(trial) is not SolveResult.SAT:
                # Still conflicting without it: candidate is unnecessary.
                refined = [
                    lit
                    for lit in solver.unsat_core()
                    if lit in set(trial)
                ] or trial
                core = refined
                changed = True
                break

    # Sanity: relaxing exactly the core must make the rest feasible.
    calls += 1
    complement = [lit for lit in all_selectors if lit not in set(core)]
    relaxable = solver.solve(complement) is SolveResult.SAT

    index_of = {selector: i for i, selector in selector_of.items()}
    trains = sorted(name_of[index_of[lit]] for lit in core)
    runtime = time.perf_counter() - start
    return DiagnosisResult(
        feasible=False,
        conflicting_trains=trains,
        relaxable=relaxable,
        structural=not trains,
        solve_calls=calls,
        runtime_s=runtime,
        metrics=_metrics(len(trains), calls, runtime),
    )
