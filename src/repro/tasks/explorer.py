"""Interactive layout exploration on a single incremental solver.

Designers comparing VSS layout candidates (the paper's workflow in §II-B)
should not pay the encoding + solving cost from scratch per candidate.  The
:class:`LayoutExplorer` encodes the scenario once with *free* border
variables and answers per-layout feasibility queries through solver
assumptions — the solver keeps its learned clauses between queries, so a
sequence of checks is far cheaper than independent runs.
"""

from __future__ import annotations

from repro.encoding.decode import Solution
from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.network.discretize import DiscreteNetwork
from repro.network.sections import VSSLayout
from repro.sat import SolveResult, Solver
from repro.tasks.common import checked_decode
from repro.trains.schedule import Schedule


class LayoutExplorer:
    """Answers "does this VSS layout realise the schedule?" repeatedly.

    Example::

        explorer = LayoutExplorer(net, schedule, r_t_min=1.0)
        explorer.check(VSSLayout.pure_ttd(net))     # False
        explorer.check(VSSLayout.finest(net))       # True
        solution = explorer.last_solution           # decoded witness
    """

    def __init__(
        self,
        net: DiscreteNetwork,
        schedule: Schedule,
        r_t_min: float,
        options: EncodingOptions | None = None,
    ):
        self.net = net
        self._encoding = EtcsEncoding(net, schedule, r_t_min, options).build()
        self._solver = self._encoding.cnf.to_solver(Solver())
        self._num_base_clauses = self._encoding.cnf.num_clauses
        self.last_solution: Solution | None = None
        self.queries = 0

    def _assumptions_for(self, layout: VSSLayout) -> list[int]:
        assumptions = []
        for vertex in range(self.net.num_vertices):
            var = self._encoding.reg.border(vertex)
            assumptions.append(var if layout.is_border(vertex) else -var)
        return assumptions

    def check(self, layout: VSSLayout) -> bool:
        """Is the schedule feasible under ``layout``?

        On success, ``last_solution`` holds the decoded, validated witness.
        """
        # New clauses may have been appended to the shared CNF (e.g. by a
        # totalizer elsewhere); keep the solver in sync.
        for clause in self._encoding.cnf.clauses[self._num_base_clauses:]:
            self._solver.add_clause(clause)
        self._num_base_clauses = self._encoding.cnf.num_clauses

        self.queries += 1
        verdict = self._solver.solve(self._assumptions_for(layout))
        if verdict is not SolveResult.SAT:
            self.last_solution = None
            return False
        self.last_solution = checked_decode(
            self._encoding,
            {lit for lit in self._solver.model() if lit > 0},
        )
        return True

    def makespan_of(self, layout: VSSLayout) -> int | None:
        """Makespan of some witness under ``layout`` (None if infeasible)."""
        if not self.check(layout):
            return None
        return self.last_solution.makespan

    @property
    def solver_stats(self) -> dict:
        """Cumulative solver statistics across all queries."""
        return self._solver.stats.as_dict()
