"""Task results: the columns of the paper's Table I, plus the solution."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields

from repro.encoding.decode import Solution


@dataclass
class TaskResult:
    """Outcome of one design/verification task.

    Attributes mirror Table I of the paper:
        task: "verification" | "generation" | "optimization".
        variables: the paper-equivalent primary variable count
            (borders + dense occupies grid).
        satisfiable: the solver's verdict.
        num_sections: TTD/VSS sections in the (resulting) layout.
        time_steps: steps until all trains reached their goals (makespan);
            None when unsatisfiable.
        runtime_s: wall-clock seconds for encoding + solving.

    Additional reproduction detail:
        actual_vars / clauses: true size of the (cone-reduced) encoding.
        solution: the decoded layout + trajectories (None if UNSAT).
        objective_value: value of the task's objective (borders added, or
            makespan), when one was optimised.
        proven_optimal: whether the optimisation loop certified optimality.
        solve_calls: SAT invocations used.
        solver_stats: cumulative solver counters.
        metrics: the run's metrics-registry payload (stable dotted keys:
            ``solver.*``, ``encoder.<family>.*``, ``portfolio.*``, ...).
        portfolio: portfolio-race summary when the task ran with
            ``parallel > 1`` (winner members, processes, wall time); None on
            the serial path.

    Anytime/resilience detail (see :mod:`repro.opt.result`):
        status: how the optimisation ended — "optimal", "feasible",
            "timeout" (deadline hit; the solution is best-so-far), or
            "resumed"; None for tasks without an optimisation loop.
        lower_bound / upper_bound: proven objective bounds (meaningful
            when ``status`` is set and the task optimised something).
        resumed: the optimisation restarted from a checkpoint.

    Gateway detail (see :mod:`repro.gateway`):
        model: the accepted model's true literals, sorted ascending
            (empty when UNSAT/infeasible) — the payload a result cache
            replays as warm hints on delta-close instances.
        warm_started: the task reused a cached model (witness replay on
            verification, descent seeding on generation/optimization).
        fingerprint: the instance's descent fingerprint
            (:func:`repro.opt.checkpoint.descent_fingerprint`), used by
            the gateway cache to validate warm-starts.
    """

    task: str
    variables: int
    satisfiable: bool
    num_sections: int
    time_steps: int | None
    runtime_s: float
    actual_vars: int = 0
    clauses: int = 0
    solution: Solution | None = None
    objective_value: int | None = None
    proven_optimal: bool | None = None
    solve_calls: int = 1
    solver_stats: dict = field(default_factory=dict)
    proof_checked: bool | None = None  # UNSAT verdicts: DRAT proof validated
    portfolio: dict | None = None
    metrics: dict = field(default_factory=dict)
    status: str | None = None
    lower_bound: int = 0
    upper_bound: int | None = None
    resumed: bool = False
    model: list[int] = field(default_factory=list)
    warm_started: bool = False
    fingerprint: dict | None = None

    @property
    def stats(self) -> dict:
        """Deprecated alias for :attr:`solver_stats`.

        Kept so external callers reading ``result.stats`` keep working
        after the metrics-registry refactor; prefer :attr:`solver_stats`
        for the raw counters or :attr:`metrics` for the full registry.
        """
        warnings.warn(
            "TaskResult.stats is deprecated; use TaskResult.solver_stats "
            "or TaskResult.metrics",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.solver_stats

    def to_manifest(self) -> dict:
        """JSON-safe view for the batch manifest.

        Drops :attr:`solution` (the decoded layout does not survive a
        JSON round-trip) and :attr:`model` (thousands of literals the
        table does not need); everything Table I needs is plain data,
        so a restored result still renders its row and metrics.
        """
        return {
            f.name: getattr(self, f.name) for f in fields(self)
            if f.name not in ("solution", "model")
        }

    @classmethod
    def from_manifest(cls, payload: dict) -> "TaskResult":
        """Rebuild from :meth:`to_manifest` output (unknown keys from a
        newer writer are ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{
            key: value for key, value in payload.items() if key in known
        })

    def table_row(self) -> tuple:
        """(task, vars, sat, sections, steps, runtime) — a Table I row."""
        return (
            self.task,
            self.variables,
            "Yes" if self.satisfiable else "No",
            self.num_sections,
            self.time_steps if self.satisfiable else None,
            self.runtime_s,
        )
