"""Capacity analysis: the VSS-budget vs timetable-quality trade-off curve.

Infrastructure planning asks the inverse of the generation task: not "how
few borders realise this timetable" but "what is the best timetable each
border budget buys".  :func:`capacity_curve` sweeps a list of budgets and,
for each, minimises the makespan subject to ``Σ border_v <= budget`` — the
curve's knee is where additional virtual subsections stop paying off (the
ETCS Level 3 business case, quantified).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.encoding.encoder import EncodingOptions, EtcsEncoding
from repro.logic.totalizer import Totalizer
from repro.network.discretize import DiscreteNetwork
from repro.opt.minimize import minimize_sum
from repro.tasks.common import checked_decode
from repro.trains.schedule import Schedule


@dataclass(frozen=True)
class CapacityPoint:
    """One budget sample of the capacity curve.

    Attributes:
        budget: maximum number of VSS borders allowed (None = unlimited).
        feasible: whether any timetable completes within the horizon.
        makespan: minimal number of steps until all trains are done.
        sections_used: TTD/VSS sections of the witness layout.
        borders_used: virtual borders the witness actually places.
        proven_optimal: the minimisation closed with an UNSAT step.
        runtime_s: wall-clock seconds for this point.
    """

    budget: int | None
    feasible: bool
    makespan: int | None
    sections_used: int | None
    borders_used: int | None
    proven_optimal: bool
    runtime_s: float


def best_makespan_with_budget(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    budget: int | None,
    strategy: str = "linear",
    options: EncodingOptions | None = None,
) -> CapacityPoint:
    """Minimal makespan when at most ``budget`` VSS borders may be added.

    ``budget=None`` (or any budget >= the number of free border candidates)
    leaves the layout unconstrained — the plain optimization task.
    Deadlines are dropped, as in the paper's optimization task.
    """
    start = time.perf_counter()
    encoding = EtcsEncoding(
        net, schedule.without_deadlines(), r_t_min, options
    ).build()
    borders = encoding.border_objective()
    if budget is not None and budget < len(borders):
        totalizer = Totalizer(encoding.cnf, borders)
        totalizer.assert_at_most(budget)
    result = minimize_sum(
        encoding.cnf, encoding.makespan_objective(), strategy=strategy
    )
    if not result.feasible:
        return CapacityPoint(
            budget=budget,
            feasible=False,
            makespan=None,
            sections_used=None,
            borders_used=None,
            proven_optimal=result.proven_optimal,
            runtime_s=time.perf_counter() - start,
        )
    solution = checked_decode(encoding, result.true_set())
    return CapacityPoint(
        budget=budget,
        feasible=True,
        makespan=result.cost,
        sections_used=solution.layout.num_sections,
        borders_used=len(solution.layout.added_borders),
        proven_optimal=result.proven_optimal,
        runtime_s=time.perf_counter() - start,
    )


def capacity_curve(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    budgets: list[int | None],
    strategy: str = "linear",
    options: EncodingOptions | None = None,
) -> list[CapacityPoint]:
    """The full trade-off curve over a list of border budgets."""
    return [
        best_makespan_with_budget(
            net, schedule, r_t_min, budget,
            strategy=strategy, options=options,
        )
        for budget in budgets
    ]


def format_capacity_curve(points: list[CapacityPoint]) -> str:
    """Render the curve as an aligned text table with improvement markers."""
    header = (
        f"{'budget':>8} {'makespan':>10} {'sections':>10} "
        f"{'borders used':>13}"
    )
    lines = [header, "-" * len(header)]
    previous: int | None = None
    for point in points:
        budget = "∞" if point.budget is None else str(point.budget)
        if not point.feasible:
            lines.append(f"{budget:>8} {'infeasible':>10}")
            continue
        marker = ""
        if previous is not None and point.makespan < previous:
            marker = f"  (-{previous - point.makespan})"
        lines.append(
            f"{budget:>8} {point.makespan:>10} {point.sections_used:>10} "
            f"{point.borders_used:>13}{marker}"
        )
        previous = point.makespan
    return "\n".join(lines)
