"""The paper's three design/verification tasks (§II-B) as a public API.

* :func:`verify_schedule` — does the schedule work on a fixed TTD/VSS layout?
* :func:`generate_layout` — find a (minimum) VSS layout that makes the
  schedule feasible.
* :func:`optimize_schedule` — drop the arrival deadlines and minimise the
  makespan, letting the solver pick both layout and routes.

All three return a :class:`TaskResult` carrying the Table I columns
(variables, satisfiable, TTD/VSS section count, time steps, runtime).
"""

from repro.tasks.batch import (
    BatchJob,
    BatchJobResult,
    BatchReport,
    run_batch,
    run_case_task,
    run_table1,
    table1_jobs,
)
from repro.tasks.capacity import (
    CapacityPoint,
    best_makespan_with_budget,
    capacity_curve,
)
from repro.tasks.diagnosis import DiagnosisResult, diagnose_infeasibility
from repro.tasks.explorer import LayoutExplorer
from repro.tasks.generation import generate_layout
from repro.tasks.optimization import optimize_schedule
from repro.tasks.result import TaskResult
from repro.tasks.robustness import delay_tolerance, robustness_report
from repro.tasks.verification import verify_schedule

__all__ = [
    "TaskResult",
    "verify_schedule",
    "generate_layout",
    "optimize_schedule",
    "LayoutExplorer",
    "CapacityPoint",
    "capacity_curve",
    "best_makespan_with_budget",
    "DiagnosisResult",
    "diagnose_infeasibility",
    "delay_tolerance",
    "robustness_report",
    "BatchJob",
    "BatchJobResult",
    "BatchReport",
    "run_batch",
    "run_case_task",
    "run_table1",
    "table1_jobs",
]
