"""Task 3: schedule optimization using the potential of VSS.

Arrival deadlines are dropped; only departures and stops remain fixed.  The
solver chooses a VSS layout *and* the train routes, minimising the number of
time steps until all trains are done (paper §III-C, ``min Σ_t ¬done^t``).
Optionally the number of added borders is minimised as a secondary objective
among the makespan-optimal solutions.
"""

from __future__ import annotations

import time

from repro.encoding.encoder import EncodingOptions
from repro.encoding.lazy import DESCENT_LAZY_STRATEGY, LazyRefiner
from repro.logic.totalizer import Totalizer
from repro.network.discretize import DiscreteNetwork
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.opt.maxsat import minimize_sum_core_guided
from repro.opt.minimize import minimize_sum
from repro.opt.result import STATUS_TIMEOUT
from repro.tasks.common import (
    build_encoding,
    checked_decode,
    record_descent,
    record_encoding,
)
from repro.tasks.result import TaskResult
from repro.trains.schedule import Schedule


def optimize_schedule(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    strategy: str = "linear",
    minimize_borders_secondary: bool = False,
    options: EncodingOptions | None = None,
    objective: str = "makespan",
    refine_arrivals: bool = False,
    parallel: int = 1,
    persistent: bool = True,
    timeout_s: float | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    lazy: bool = False,
    lazy_strategy: str = DESCENT_LAZY_STRATEGY,
    profile: bool = False,
    warm_model: list[int] | None = None,
    warm_fingerprint: dict | None = None,
) -> TaskResult:
    """Find layout + routes optimising ``schedule`` (deadlines dropped).

    ``objective`` selects the paper's §III-C efficiency reading:

    * ``"makespan"`` (default) — ``min Σ_t ¬done^t``: minimise the number of
      steps until *all* trains are done;
    * ``"total-arrival"`` — ``min Σ_tr Σ_t ¬done_tr^t``: minimise the summed
      arrival times of the individual trains.

    ``refine_arrivals`` (with the makespan objective) lexicographically
    minimises the summed arrival times *among makespan-optimal solutions* —
    this reproduces the shape of the paper's Fig. 2b, where trains 2 and 3
    arrive well before the 7-step makespan.

    Set ``minimize_borders_secondary`` to additionally minimise VSS borders
    among objective-optimal solutions (applied last).

    ``parallel > 1`` races every solve of the linear/binary descents
    (including the refinement and secondary passes) through the process
    portfolio (:mod:`repro.sat.portfolio`); the core-guided engine stays
    serial.

    ``persistent`` (default) runs each parallel descent on the resident
    incremental solver service (:mod:`repro.sat.service`) — one session
    per descent pass — falling back to the one-shot portfolio when
    unavailable.

    ``timeout_s`` bounds the *whole* task: the primary descent gets the
    remaining wall budget, each later pass gets what is left after the
    ones before it, and passes whose budget is already spent are skipped
    (counted as ``deadline.pass_skipped``).  On expiry the task returns
    the best schedule found so far with ``status="timeout"``.
    ``checkpoint_path``/``resume`` checkpoint the *primary* descent only
    (the refinement and secondary passes optimise different objectives
    and always re-run).

    ``lazy`` defers the cross-train constraint families to the CEGAR
    check (:mod:`repro.encoding.lazy`), shared by the primary and every
    follow-up pass; off by default (see :func:`generate_layout`).
    ``lazy_strategy`` selects the refiner's grouping/selection cell
    (default :data:`~repro.encoding.lazy.DESCENT_LAZY_STRATEGY`, the
    matrix cell that wins for descents).  The core-guided engine stays
    eager.

    ``profile`` turns on the hot-path phase profiler in every solver of
    every pass; attribution lands as ``profile.*`` metrics (see
    :mod:`repro.obs.profile`).

    ``warm_model`` / ``warm_fingerprint`` seed the *primary* descent
    with a cached model from a delta-close instance (the solve
    gateway's result cache; see
    :func:`repro.opt.minimize.minimize_sum`).  Follow-up passes
    optimise different objectives and always run cold.
    """
    if objective not in ("makespan", "total-arrival"):
        raise ValueError(f"unknown objective {objective!r}")
    start = time.perf_counter()
    deadline = (
        time.perf_counter() + timeout_s if timeout_s is not None else None
    )

    def remaining() -> float | None:
        if deadline is None:
            return None
        return max(deadline - time.perf_counter(), 0.0)

    reg = MetricsRegistry()
    use_lazy = lazy and strategy != "core"
    if lazy and not use_lazy:
        trace.event("lazy.unsupported", strategy=strategy)
    with trace.span(
        "optimize", objective=objective, strategy=strategy,
        parallel=parallel, lazy=use_lazy,
    ) as task_span:
        free_schedule = schedule.without_deadlines()
        with trace.span("encode", lazy=use_lazy):
            encoding = build_encoding(
                net, free_schedule, r_t_min, options, lazy=use_lazy
            )
            if objective == "makespan":
                objective_lits = encoding.makespan_objective()
            else:
                objective_lits = encoding.total_arrival_objective()
        record_encoding(reg, encoding)
        refiner = (
            LazyRefiner(encoding, strategy=lazy_strategy)
            if use_lazy else None
        )
        lazy_refine = refiner.refine if refiner is not None else None

        with trace.span("solve", phase="primary"):
            if strategy == "core":
                result = minimize_sum_core_guided(
                    encoding.cnf, objective_lits,
                    wall_deadline_s=remaining(), profile=profile,
                )
            else:
                result = minimize_sum(
                    encoding.cnf, objective_lits, strategy=strategy,
                    parallel=parallel, persistent=persistent,
                    wall_deadline_s=remaining(),
                    checkpoint_path=checkpoint_path, resume=resume,
                    refine=lazy_refine, profile=profile,
                    warm_model=warm_model,
                    warm_fingerprint=warm_fingerprint,
                )
        record_descent(reg, result)
        solve_calls = result.solve_calls
        portfolio_summary = result.portfolio
        stats_total = dict(result.solver_stats)
        timed_out = result.status == STATUS_TIMEOUT
        was_resumed = result.resumed
        # The follow-up passes rebuild ``result`` without the gateway
        # fields; pin the primary descent's identity and warm verdict.
        warm_hit = result.warm_started
        primary_fingerprint = result.fingerprint

        def pass_budget(phase: str) -> tuple[float | None, bool]:
            """Remaining budget for a follow-up pass, or (0, True) to
            skip it because the deadline is already spent."""
            budget = remaining()
            if budget is not None and budget <= 0:
                reg.inc("deadline.pass_skipped")
                trace.event("deadline.pass_skipped", phase=phase)
                return budget, True
            return budget, False

        refine = (
            result.feasible and refine_arrivals and objective == "makespan"
        )
        if refine:
            budget, skipped = pass_budget("refine-arrivals")
            refine = not skipped
            timed_out = timed_out or skipped
        if refine:
            # Freeze the makespan, then minimise summed arrivals among
            # optima.
            if result.cost < len(objective_lits):
                totalizer = Totalizer(encoding.cnf, objective_lits)
                totalizer.assert_at_most(result.cost)
            arrival_lits = encoding.total_arrival_objective()
            with trace.span("solve", phase="refine-arrivals"):
                refined = minimize_sum(
                    encoding.cnf, arrival_lits, strategy=strategy,
                    parallel=parallel, persistent=persistent,
                    wall_deadline_s=budget, refine=lazy_refine,
                    profile=profile,
                )
            record_descent(reg, refined)
            _merge_counts(stats_total, refined.solver_stats)
            solve_calls += refined.solve_calls
            timed_out = timed_out or refined.status == STATUS_TIMEOUT
            if refined.feasible:
                # Freeze the arrival optimum so that a subsequent border
                # pass cannot trade it away.
                if refined.cost < len(arrival_lits):
                    arrival_totalizer = Totalizer(
                        encoding.cnf, arrival_lits
                    )
                    arrival_totalizer.assert_at_most(refined.cost)
                result = type(result)(
                    feasible=True,
                    cost=result.cost,
                    model=refined.model,
                    proven_optimal=result.proven_optimal
                    and refined.proven_optimal,
                    solve_calls=solve_calls,
                    strategy=result.strategy,
                    lower_bound=result.lower_bound,
                    resumed=was_resumed,
                )

        borders = result.feasible and minimize_borders_secondary
        if borders:
            budget, skipped = pass_budget("minimize-borders")
            borders = not skipped
            timed_out = timed_out or skipped
        if borders:
            # Freeze the primary optimum, then minimise borders among
            # optima.
            if result.cost < len(objective_lits):
                totalizer = Totalizer(encoding.cnf, objective_lits)
                totalizer.assert_at_most(result.cost)
            with trace.span("solve", phase="minimize-borders"):
                secondary = minimize_sum(
                    encoding.cnf, encoding.border_objective(),
                    strategy=strategy, parallel=parallel,
                    persistent=persistent,
                    wall_deadline_s=budget, refine=lazy_refine,
                    profile=profile,
                )
            record_descent(reg, secondary)
            _merge_counts(stats_total, secondary.solver_stats)
            solve_calls += secondary.solve_calls
            timed_out = timed_out or secondary.status == STATUS_TIMEOUT
            if secondary.feasible:
                result = type(result)(
                    feasible=True,
                    cost=result.cost,
                    model=secondary.model,
                    proven_optimal=result.proven_optimal
                    and secondary.proven_optimal,
                    solve_calls=solve_calls,
                    strategy=result.strategy,
                    lower_bound=result.lower_bound,
                    resumed=was_resumed,
                )

        if refiner is not None:
            reg.absorb_lazy(refiner.stats())
        solution = None
        with trace.span("decode", satisfiable=result.feasible):
            if result.feasible:
                solution = checked_decode(encoding, result.true_set())
        task_span.add(satisfiable=result.feasible, cost=result.cost)
    runtime = time.perf_counter() - start
    reg.set("task.runtime_s", runtime)
    reported_steps = None
    if result.feasible:
        reported_steps = (
            result.cost if objective == "makespan" else solution.makespan
        )
    return TaskResult(
        task="optimization",
        variables=encoding.paper_equivalent_vars(),
        satisfiable=result.feasible,
        num_sections=(
            solution.num_sections if solution else net.num_ttds
        ),
        time_steps=reported_steps,
        runtime_s=runtime,
        actual_vars=encoding.cnf.num_vars,
        clauses=encoding.cnf.num_clauses,
        solution=solution,
        objective_value=result.cost if result.feasible else None,
        proven_optimal=result.proven_optimal,
        solve_calls=solve_calls,
        solver_stats=stats_total,
        portfolio=portfolio_summary,
        metrics=reg.as_dict(),
        status=STATUS_TIMEOUT if timed_out else result.status,
        lower_bound=result.lower_bound,
        upper_bound=result.upper_bound,
        resumed=result.resumed,
        model=sorted(result.true_set()) if result.feasible else [],
        warm_started=warm_hit,
        fingerprint=primary_fingerprint,
    )


def _merge_counts(total: dict, extra: dict) -> None:
    """Accumulate numeric counters from ``extra`` into ``total`` in place."""
    for key, value in extra.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if key.startswith("max_"):
            total[key] = max(total.get(key, 0), value)
        else:
            total[key] = total.get(key, 0) + value
