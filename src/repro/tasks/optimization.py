"""Task 3: schedule optimization using the potential of VSS.

Arrival deadlines are dropped; only departures and stops remain fixed.  The
solver chooses a VSS layout *and* the train routes, minimising the number of
time steps until all trains are done (paper §III-C, ``min Σ_t ¬done^t``).
Optionally the number of added borders is minimised as a secondary objective
among the makespan-optimal solutions.
"""

from __future__ import annotations

import time

from repro.encoding.encoder import EncodingOptions
from repro.logic.totalizer import Totalizer
from repro.network.discretize import DiscreteNetwork
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.opt.maxsat import minimize_sum_core_guided
from repro.opt.minimize import minimize_sum
from repro.tasks.common import (
    build_encoding,
    checked_decode,
    record_descent,
    record_encoding,
)
from repro.tasks.result import TaskResult
from repro.trains.schedule import Schedule


def optimize_schedule(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    strategy: str = "linear",
    minimize_borders_secondary: bool = False,
    options: EncodingOptions | None = None,
    objective: str = "makespan",
    refine_arrivals: bool = False,
    parallel: int = 1,
    persistent: bool = True,
) -> TaskResult:
    """Find layout + routes optimising ``schedule`` (deadlines dropped).

    ``objective`` selects the paper's §III-C efficiency reading:

    * ``"makespan"`` (default) — ``min Σ_t ¬done^t``: minimise the number of
      steps until *all* trains are done;
    * ``"total-arrival"`` — ``min Σ_tr Σ_t ¬done_tr^t``: minimise the summed
      arrival times of the individual trains.

    ``refine_arrivals`` (with the makespan objective) lexicographically
    minimises the summed arrival times *among makespan-optimal solutions* —
    this reproduces the shape of the paper's Fig. 2b, where trains 2 and 3
    arrive well before the 7-step makespan.

    Set ``minimize_borders_secondary`` to additionally minimise VSS borders
    among objective-optimal solutions (applied last).

    ``parallel > 1`` races every solve of the linear/binary descents
    (including the refinement and secondary passes) through the process
    portfolio (:mod:`repro.sat.portfolio`); the core-guided engine stays
    serial.

    ``persistent`` (default) runs each parallel descent on the resident
    incremental solver service (:mod:`repro.sat.service`) — one session
    per descent pass — falling back to the one-shot portfolio when
    unavailable.
    """
    if objective not in ("makespan", "total-arrival"):
        raise ValueError(f"unknown objective {objective!r}")
    start = time.perf_counter()
    reg = MetricsRegistry()
    with trace.span(
        "optimize", objective=objective, strategy=strategy, parallel=parallel
    ) as task_span:
        free_schedule = schedule.without_deadlines()
        with trace.span("encode"):
            encoding = build_encoding(net, free_schedule, r_t_min, options)
            if objective == "makespan":
                objective_lits = encoding.makespan_objective()
            else:
                objective_lits = encoding.total_arrival_objective()
        record_encoding(reg, encoding)

        with trace.span("solve", phase="primary"):
            if strategy == "core":
                result = minimize_sum_core_guided(
                    encoding.cnf, objective_lits
                )
            else:
                result = minimize_sum(
                    encoding.cnf, objective_lits, strategy=strategy,
                    parallel=parallel, persistent=persistent,
                )
        record_descent(reg, result)
        solve_calls = result.solve_calls
        portfolio_summary = result.portfolio
        stats_total = dict(result.solver_stats)

        if result.feasible and refine_arrivals and objective == "makespan":
            # Freeze the makespan, then minimise summed arrivals among
            # optima.
            if result.cost < len(objective_lits):
                totalizer = Totalizer(encoding.cnf, objective_lits)
                totalizer.assert_at_most(result.cost)
            arrival_lits = encoding.total_arrival_objective()
            with trace.span("solve", phase="refine-arrivals"):
                refined = minimize_sum(
                    encoding.cnf, arrival_lits, strategy=strategy,
                    parallel=parallel, persistent=persistent,
                )
            record_descent(reg, refined)
            _merge_counts(stats_total, refined.solver_stats)
            solve_calls += refined.solve_calls
            if refined.feasible:
                # Freeze the arrival optimum so that a subsequent border
                # pass cannot trade it away.
                if refined.cost < len(arrival_lits):
                    arrival_totalizer = Totalizer(
                        encoding.cnf, arrival_lits
                    )
                    arrival_totalizer.assert_at_most(refined.cost)
                result = type(result)(
                    feasible=True,
                    cost=result.cost,
                    model=refined.model,
                    proven_optimal=result.proven_optimal
                    and refined.proven_optimal,
                    solve_calls=solve_calls,
                    strategy=result.strategy,
                )

        if result.feasible and minimize_borders_secondary:
            # Freeze the primary optimum, then minimise borders among
            # optima.
            if result.cost < len(objective_lits):
                totalizer = Totalizer(encoding.cnf, objective_lits)
                totalizer.assert_at_most(result.cost)
            with trace.span("solve", phase="minimize-borders"):
                secondary = minimize_sum(
                    encoding.cnf, encoding.border_objective(),
                    strategy=strategy, parallel=parallel,
                    persistent=persistent,
                )
            record_descent(reg, secondary)
            _merge_counts(stats_total, secondary.solver_stats)
            solve_calls += secondary.solve_calls
            if secondary.feasible:
                result = type(result)(
                    feasible=True,
                    cost=result.cost,
                    model=secondary.model,
                    proven_optimal=result.proven_optimal
                    and secondary.proven_optimal,
                    solve_calls=solve_calls,
                    strategy=result.strategy,
                )

        solution = None
        with trace.span("decode", satisfiable=result.feasible):
            if result.feasible:
                solution = checked_decode(encoding, result.true_set())
        task_span.add(satisfiable=result.feasible, cost=result.cost)
    runtime = time.perf_counter() - start
    reg.set("task.runtime_s", runtime)
    reported_steps = None
    if result.feasible:
        reported_steps = (
            result.cost if objective == "makespan" else solution.makespan
        )
    return TaskResult(
        task="optimization",
        variables=encoding.paper_equivalent_vars(),
        satisfiable=result.feasible,
        num_sections=(
            solution.num_sections if solution else net.num_ttds
        ),
        time_steps=reported_steps,
        runtime_s=runtime,
        actual_vars=encoding.cnf.num_vars,
        clauses=encoding.cnf.num_clauses,
        solution=solution,
        objective_value=result.cost if result.feasible else None,
        proven_optimal=result.proven_optimal,
        solve_calls=solve_calls,
        solver_stats=stats_total,
        portfolio=portfolio_summary,
        metrics=reg.as_dict(),
    )


def _merge_counts(total: dict, extra: dict) -> None:
    """Accumulate numeric counters from ``extra`` into ``total`` in place."""
    for key, value in extra.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if key.startswith("max_"):
            total[key] = max(total.get(key, 0), value)
        else:
            total[key] = total.get(key, 0) + value
