"""Analysis utilities on top of the design tasks.

* :mod:`repro.analysis.sensitivity` — how do the verdicts, encoding sizes,
  and runtimes react to the spatial/temporal resolutions ``r_s`` / ``r_t``
  (the discretisation knobs of the paper's §III-A)?
"""

from repro.analysis.sensitivity import (
    SweepPoint,
    resolution_sweep,
    resolution_sweep_parallel,
)

__all__ = ["SweepPoint", "resolution_sweep", "resolution_sweep_parallel"]
