"""Resolution sensitivity: sweep ``r_s`` / ``r_t`` and watch the formulation.

The paper fixes one resolution pair per case study (Table I's captions) and
notes that the spatial resolution bounds the VSS layouts expressible and the
temporal resolution bounds the schedules expressible.  This module makes the
trade-off measurable: for a list of resolution pairs it re-discretises, re-
encodes, and re-solves, reporting sizes and verdicts side by side.

Coarsening is *not* verdict-preserving — a coarser grid can make a feasible
schedule infeasible (not enough positions to let trains pass) and, more
rarely, an infeasible one feasible (rounding lengthens a deadline).  The
sweep is exactly the tool for finding the resolution below which the answer
stabilises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.encoding.encoder import EncodingOptions
from repro.network.discretize import DiscreteNetwork
from repro.network.topology import RailwayNetwork
from repro.tasks.generation import generate_layout
from repro.tasks.verification import verify_schedule
from repro.trains.schedule import Schedule, ScheduleError


@dataclass(frozen=True)
class SweepPoint:
    """One (r_s, r_t) sample of the sensitivity sweep."""

    r_s_km: float
    r_t_min: float
    segments: int
    t_max: int
    paper_vars: int
    actual_vars: int
    clauses: int
    satisfiable: bool | None  # None: the scenario failed to discretise
    sections: int | None
    runtime_s: float
    error: str = ""


def resolution_sweep(
    network: RailwayNetwork,
    schedule: Schedule,
    resolutions: list[tuple[float, float]],
    task: str = "verify",
    options: EncodingOptions | None = None,
) -> list[SweepPoint]:
    """Run ``task`` ("verify" or "generate") at every resolution pair.

    Scenarios that do not discretise at a given resolution (e.g. a train no
    longer fits its start station, or a departure falls outside the horizon)
    yield a point with ``satisfiable=None`` and the error message — that too
    is sensitivity information.
    """
    if task not in ("verify", "generate"):
        raise ValueError(f"unknown task {task!r}")
    points: list[SweepPoint] = []
    for r_s, r_t in resolutions:
        start = time.perf_counter()
        try:
            net = DiscreteNetwork(network, r_s)
            if task == "verify":
                result = verify_schedule(net, schedule, r_t, options=options)
            else:
                result = generate_layout(net, schedule, r_t, options=options)
        except ScheduleError as exc:
            points.append(
                SweepPoint(
                    r_s_km=r_s,
                    r_t_min=r_t,
                    segments=DiscreteNetwork(network, r_s).num_segments,
                    t_max=max(1, round(schedule.duration_min / r_t)),
                    paper_vars=0,
                    actual_vars=0,
                    clauses=0,
                    satisfiable=None,
                    sections=None,
                    runtime_s=time.perf_counter() - start,
                    error=str(exc),
                )
            )
            continue
        points.append(
            SweepPoint(
                r_s_km=r_s,
                r_t_min=r_t,
                segments=net.num_segments,
                t_max=max(1, round(schedule.duration_min / r_t)),
                paper_vars=result.variables,
                actual_vars=result.actual_vars,
                clauses=result.clauses,
                satisfiable=result.satisfiable,
                sections=result.num_sections if result.satisfiable else None,
                runtime_s=time.perf_counter() - start,
            )
        )
    return points


def _sweep_one(
    network: RailwayNetwork,
    schedule: Schedule,
    r_s: float,
    r_t: float,
    task: str,
    options: EncodingOptions | None,
) -> SweepPoint:
    """One resolution pair of the sweep (a batchable unit)."""
    return resolution_sweep(network, schedule, [(r_s, r_t)], task, options)[0]


def resolution_sweep_parallel(
    network: RailwayNetwork,
    schedule: Schedule,
    resolutions: list[tuple[float, float]],
    task: str = "verify",
    options: EncodingOptions | None = None,
    processes: int | None = None,
) -> list[SweepPoint]:
    """:func:`resolution_sweep` with the points run as a process-pool batch.

    Every resolution pair re-discretises, re-encodes, and re-solves
    independently, so the sweep parallelises embarrassingly well — this is
    the batch-runner variant (:mod:`repro.tasks.batch`).  Points come back
    in sweep order regardless of completion order.
    """
    from repro.tasks.batch import BatchJob, run_batch

    if task not in ("verify", "generate"):
        raise ValueError(f"unknown task {task!r}")
    jobs = [
        BatchJob(
            name=f"sweep/r_s={r_s}/r_t={r_t}",
            func=_sweep_one,
            args=(network, schedule, r_s, r_t, task, options),
        )
        for r_s, r_t in resolutions
    ]
    report = run_batch(jobs, processes=processes)
    points = []
    for result, (r_s, r_t) in zip(report.results, resolutions):
        if result.ok:
            points.append(result.value)
        else:
            points.append(
                SweepPoint(
                    r_s_km=r_s, r_t_min=r_t, segments=0, t_max=0,
                    paper_vars=0, actual_vars=0, clauses=0,
                    satisfiable=None, sections=None,
                    runtime_s=result.runtime_s, error=result.error,
                )
            )
    return points


def format_sweep(points: list[SweepPoint]) -> str:
    """Render sweep points as an aligned text table."""
    header = (
        f"{'r_s':>6} {'r_t':>6} {'segs':>6} {'t_max':>6} "
        f"{'vars':>8} {'clauses':>9} {'sat':>6} {'runtime':>9}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        if p.satisfiable is None:
            verdict = "n/a"
        else:
            verdict = "yes" if p.satisfiable else "no"
        lines.append(
            f"{p.r_s_km:>6} {p.r_t_min:>6} {p.segments:>6} {p.t_max:>6} "
            f"{p.paper_vars:>8} {p.clauses:>9} {verdict:>6} "
            f"{p.runtime_s:>8.2f}s"
        )
    return "\n".join(lines)
