"""Seeded random scenario generator with a difficulty ramp.

Networks follow the shape of the paper's case studies: a main line
between two boundary stations, single-track corridors, passing loops
(a through track and a platform track between two switches, the
platform doubling as a mid-line station), and optional branch spurs to
further boundary stations.  Schedules mix directions so opposing
traffic meets on the single-track parts — the structural source of the
paper's interesting UNSAT verdicts.

The difficulty ramp (:func:`ramp_until_flip`) follows the paired
SAT/UNSAT benchmark-generation idea of the NeuroSAT line of work:
starting from generous per-train arrival deadlines, shrink the headroom
step by step until the verification verdict flips, and return the two
scenarios straddling the flip.  The pair is maximally informative — the
SAT member is barely feasible, the UNSAT member barely infeasible — and
the number of ramp steps is a graded difficulty measure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace as dc_replace

from repro.encoding.cone import multi_source_distances
from repro.network.builder import NetworkBuilder
from repro.network.topology import RailwayNetwork
from repro.scenarios.spec import Scenario, ScenarioSpec, spec_to_meta
from repro.trains.discretize import discretize_schedule
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train

#: Candidate rolling stock, (length_m, max_speed_kmh) — the paper's
#: Fig. 1b fleet plus a slow freight profile.
_STOCK = [
    (100.0, 120.0),
    (250.0, 180.0),
    (400.0, 120.0),
    (400.0, 180.0),
    (700.0, 100.0),
]


@dataclass
class _NetworkPlan:
    """What the network builder produced, for the schedule generator."""

    network: RailwayNetwork
    #: Stations where trains may start (boundary stations; their
    #: platform track lengths bound the train lengths that fit).
    entry_stations: dict[str, float]
    #: All station names (entry + mid-line loop platforms).
    stations: list[str]


def _corridor(builder: NetworkBuilder, rng: random.Random,
              frm: str, to: str, idx: int, spec: ScenarioSpec) -> None:
    """A run of 1..corridor_tracks single tracks from ``frm`` to ``to``.

    Intermediate nodes are links, except that a node may become a switch
    carrying a branch spur to a boundary station; spur nodes always
    start a new TTD so switches stay on TTD borders.
    """
    k = rng.randint(1, max(1, spec.corridor_tracks))
    nodes = [frm]
    spurs: list[str] = []
    for i in range(k - 1):
        name = f"c{idx}n{i}"
        if rng.random() < spec.spur_probability:
            builder.switch(name)
            spurs.append(name)
        else:
            builder.link(name)
        nodes.append(name)
    nodes.append(to)
    ttd = f"C{idx}.0"
    fresh = 0
    for i in range(k):
        # Each spur switch must sit on a TTD border.
        if i > 0 and (nodes[i] in spurs or rng.random() < 0.5):
            fresh += 1
            ttd = f"C{idx}.{fresh}"
        builder.track(nodes[i], nodes[i + 1],
                      length_km=round(rng.uniform(0.5, 1.5), 2),
                      ttd=ttd, name=f"c{idx}t{i}")
    for n, node in enumerate(spurs):
        end = f"D{idx}{n}"
        track = f"spur{idx}{n}"
        builder.boundary(end)
        builder.track(node, end, length_km=round(rng.uniform(1.0, 1.5), 2),
                      ttd=f"S{idx}{n}", name=track)
        builder.station(end, [track])


def generate_network(spec: ScenarioSpec) -> _NetworkPlan:
    """Build the seeded random network of ``spec``."""
    rng = random.Random(f"network-{spec.seed}")
    builder = NetworkBuilder()
    builder.boundary("A")
    entry: dict[str, float] = {}

    # End station A: its own TTD, long enough for any stock.
    len_a = round(rng.uniform(1.0, 1.6), 2)
    builder.link("a0")
    builder.track("A", "a0", length_km=len_a, ttd="TA", name="staA")
    builder.station("A", ["staA"])
    entry["A"] = len_a

    stations = ["A"]
    prev = "a0"
    loops = max(0, spec.loops)
    for i in range(loops):
        head, tail = f"w{i}a", f"w{i}b"
        builder.switch(head)
        builder.switch(tail)
        _corridor(builder, rng, prev, head, idx=2 * i, spec=spec)
        loop_len = round(rng.uniform(0.5, 1.5), 2)
        builder.track(head, tail, length_km=loop_len,
                      ttd=f"LT{i}", name=f"thr{i}")
        builder.track(head, tail, length_km=loop_len,
                      ttd=f"LP{i}", name=f"plt{i}")
        builder.station(f"S{i}", [f"plt{i}"])
        stations.append(f"S{i}")
        prev = tail

    builder.link("b0")
    _corridor(builder, rng, prev, "b0", idx=2 * loops, spec=spec)
    len_b = round(rng.uniform(1.0, 1.6), 2)
    builder.boundary("B")
    builder.track("b0", "B", length_km=len_b, ttd="TB", name="staB")
    builder.station("B", ["staB"])
    entry["B"] = len_b
    stations.append("B")

    network = builder.build()
    for name in network.stations:
        if name.startswith("D"):
            entry[name] = network.station_tracks(name)[0].length_km
            stations.append(name)
    return _NetworkPlan(network, entry, stations)


def _fitting_stock(rng: random.Random, station_len_km: float,
                   r_s_km: float) -> tuple[float, float]:
    """Pick (length_m, speed_kmh) stock that fits the start station.

    ``discretize_run`` requires the train footprint (in segments) not to
    exceed the start station's segment count.
    """
    capacity = max(1, math.ceil(station_len_km / r_s_km - 1e-9))
    fitting = [
        (length, speed) for length, speed in _STOCK
        if math.ceil(length / 1000.0 / r_s_km) <= capacity
    ]
    if not fitting:
        fitting = [(100, 120)]
    return rng.choice(fitting)


def generate_scenario(spec: ScenarioSpec) -> Scenario:
    """The seeded scenario of ``spec`` (no arrival deadlines).

    Trains alternate directions (A-side vs B-side starts) so fleets of
    two or more always contain opposing traffic; goals are drawn from
    every other station, loop platforms included.  Departures sit on the
    ``r_t`` grid within the first few steps; the duration leaves
    ``duration_factor`` headroom over the slowest train's direct journey.
    Deadlines are left open — :func:`ramp_until_flip` adds them.
    """
    plan = generate_network(spec)
    rng = random.Random(f"schedule-{spec.seed}")
    network = plan.network
    total_km = network.total_length_km
    entries = sorted(plan.entry_stations)

    runs: list[TrainRun] = []
    latest_finish = spec.r_t_min
    # Opposing traffic can only ever pass at a loop; without one it
    # would be structurally infeasible on *any* layout, so loop-less
    # lines get following traffic (the paper's running-example shape).
    opposing = spec.loops > 0
    # Departures are staggered per start station: a departing train is
    # *placed* at its station at that step, so same-station departures
    # too close together conflict structurally (no deadline slack or
    # VSS layout can fix a hard departure).
    departures_at: dict[str, int] = {}
    for i in range(max(1, spec.trains)):
        if i % 2 == 0 or not opposing:
            start = "A"
        elif "B" in entries:
            start = "B"
        else:
            start = rng.choice(entries)
        # Spur stations occasionally replace the main entry.
        others = [s for s in entries if s != start]
        if opposing and others and rng.random() < 0.2:
            start = rng.choice(others)
        goals = [s for s in plan.stations if s != start]
        goal = rng.choice(goals)
        length_m, speed_kmh = _fitting_stock(
            rng, plan.entry_stations[start], spec.r_s_km
        )
        order = departures_at.get(start, 0)
        departures_at[start] = order + 1
        departure = (2 * order + rng.randint(0, 1)) * spec.r_t_min
        runs.append(
            TrainRun(
                Train(f"t{i}", length_m=length_m, max_speed_kmh=speed_kmh),
                start=start,
                goal=goal,
                departure_min=departure,
                arrival_min=None,
            )
        )
        journey_min = total_km / speed_kmh * 60.0
        latest_finish = max(
            latest_finish,
            departure + journey_min * spec.duration_factor,
        )
    steps = math.ceil(latest_finish / spec.r_t_min) + 2
    duration = steps * spec.r_t_min
    schedule = Schedule(runs, duration_min=duration)
    return Scenario(
        name=f"gen-{spec.seed}",
        network=network,
        schedule=schedule,
        r_s_km=spec.r_s_km,
        r_t_min=spec.r_t_min,
        seed=spec.seed,
        meta=spec_to_meta(spec),
    )


def earliest_arrival_steps(scenario: Scenario) -> list[int]:
    """Per-train earliest goal-arrival step (departure + direct travel),
    mirroring the encoder's reachability arithmetic."""
    net = scenario.discretize()
    runs, _t_max = discretize_schedule(
        net, scenario.schedule, scenario.r_t_min
    )
    earliest = []
    for run in runs:
        from_start = multi_source_distances(net, list(run.start_segments))
        distances = [
            from_start[g] for g in run.goal_segments if from_start[g] >= 0
        ]
        travel = math.ceil(min(distances) / run.speed_segments)
        earliest.append(run.departure_step + travel)
    return earliest


def with_headroom(scenario: Scenario, headroom: int) -> Scenario:
    """Copy of ``scenario`` whose deadlines allow ``headroom`` slack
    steps over each train's earliest possible arrival."""
    earliest = earliest_arrival_steps(scenario)
    r_t = scenario.r_t_min
    duration = scenario.schedule.duration_min
    runs = []
    for run, steps in zip(scenario.schedule.runs, earliest):
        step = steps + headroom
        arrival = min(duration, step * r_t)
        arrival = max(arrival, run.departure_min + r_t)
        runs.append(dc_replace(run, arrival_min=arrival))
    schedule = Schedule(runs, duration)
    return scenario.with_schedule(schedule, note=f"headroom={headroom}")


@dataclass
class GradedPair:
    """A SAT/UNSAT scenario pair straddling the verdict flip.

    ``difficulty`` is ``headroom_start - flip_headroom``: how many
    tightening steps below the starting slack the scenario survived
    (negative when it needed *extra* slack to become feasible at all).
    ``sat`` is None when no probed headroom is feasible — the scenario
    is structurally infeasible on the pure-TTD layout, deadlines are not
    to blame; ``unsat`` is None when the ramp bottomed out without ever
    flipping (rare: every train makes even the minimal deadline).
    """

    sat: Scenario | None
    unsat: Scenario | None
    difficulty: int
    flip_headroom: int | None

    @property
    def flipped(self) -> bool:
        return self.sat is not None and self.unsat is not None


def ramp_until_flip(
    scenario: Scenario,
    headroom_start: int = 3,
    headroom_max: int = 8,
    verify=None,
) -> GradedPair:
    """Shrink deadline headroom until the verification verdict flips.

    Starts at ``headroom_start`` slack steps per train.  Feasible there:
    walk *down* until UNSAT.  Infeasible there: walk *up* to at most
    ``headroom_max`` until SAT (the flip is then between ``h`` and
    ``h-1``).  Either way the returned pair straddles the flip — the SAT
    member barely feasible, the UNSAT member barely not.

    ``verify`` maps a scenario to a bool (SAT?); the default runs the
    serial eager verification task — the reference path of the
    differential fuzz harness.
    """
    if verify is None:
        def verify(candidate: Scenario) -> bool:
            from repro.tasks.verification import verify_schedule

            return verify_schedule(
                candidate.discretize(), candidate.schedule,
                candidate.r_t_min, lazy=False,
            ).satisfiable

    def pair(sat, unsat, flip):
        return GradedPair(
            sat=sat, unsat=unsat,
            difficulty=headroom_start - flip if flip is not None else 0,
            flip_headroom=flip,
        )

    first = with_headroom(scenario, headroom_start)
    if verify(first):
        # Downward walk; a deep-enough negative headroom always clamps
        # every deadline to departure + one step, so the floor is safe.
        floor = -max(earliest_arrival_steps(scenario)) - 1
        previous = first
        for headroom in range(headroom_start - 1, floor, -1):
            candidate = with_headroom(scenario, headroom)
            if not verify(candidate):
                return pair(previous, candidate, headroom)
            previous = candidate
        return pair(previous, None, None)

    previous = first
    for headroom in range(headroom_start + 1, headroom_max + 1):
        candidate = with_headroom(scenario, headroom)
        if verify(candidate):
            return pair(candidate, previous, headroom - 1)
        previous = candidate
    # Structurally infeasible: no deadline slack rescues it.
    return pair(None, previous, None)
