"""Disruption transforms over scenarios.

Each transform maps a well-formed :class:`~repro.scenarios.spec.Scenario`
to a disrupted copy, recording what changed in the scenario's ``meta``.
They model the operational events a VSS design must survive — a late
departure, an extra unplanned train, a blocked piece of infrastructure,
a re-discretised plan — and feed the existing robustness and diagnosis
tasks from a generated-scenario source instead of only the four
hand-built case studies (:mod:`repro.scenarios.workloads`).

Transforms either return a scenario that still discretises cleanly or
raise :class:`DisruptionError`; they never return a scenario that the
encoder would reject.
"""

from __future__ import annotations

import dataclasses
import random

from repro.encoding.cone import multi_source_distances
from repro.network.topology import (
    NetworkError,
    Node,
    NodeKind,
    RailwayNetwork,
)
from repro.scenarios.spec import Scenario
from repro.trains.discretize import discretize_schedule
from repro.trains.schedule import Schedule, ScheduleError, TrainRun
from repro.trains.train import Train


class DisruptionError(Exception):
    """Raised when a disruption cannot yield a well-formed scenario."""


# -- schedule-level transforms ------------------------------------------


def delayed_schedule(schedule: Schedule, train_name: str,
                     delay_min: float) -> Schedule:
    """Copy of ``schedule`` with one train's departure shifted later.

    Deadlines stay fixed — a delayed train must still arrive on time.
    Raises :class:`ScheduleError` when the shift pushes the departure
    past its deadline or the scenario end (the robustness task uses that
    as its search boundary).
    """
    runs = []
    for run in schedule.runs:
        if run.train.name == train_name:
            run = dataclasses.replace(
                run, departure_min=run.departure_min + delay_min
            )
        runs.append(run)
    return Schedule(runs, schedule.duration_min)


def delayed_departure(scenario: Scenario, train_name: str,
                      delay_steps: int) -> Scenario:
    """Disruption: one train departs ``delay_steps`` late."""
    delay_min = delay_steps * scenario.r_t_min
    try:
        schedule = delayed_schedule(
            scenario.schedule, train_name, delay_min
        )
    except ScheduleError as exc:
        raise DisruptionError(str(exc)) from exc
    return _checked(
        scenario.with_schedule(
            schedule, note=f"delay:{train_name}:+{delay_steps}"
        )
    )


def with_added_train(scenario: Scenario, seed: int = 0) -> Scenario:
    """Disruption: an unplanned extra train enters the network.

    The extra train reuses the rolling stock of a seeded-random existing
    run (so it is guaranteed to fit its start station) and runs the
    *opposite* journey, departing at step 0 — the most contention it can
    add without inventing new infrastructure.
    """
    rng = random.Random(f"added-train-{scenario.seed}-{seed}")
    template = rng.choice(scenario.schedule.runs)
    names = {run.train.name for run in scenario.schedule.runs}
    n = len(names)
    while f"x{n}" in names:
        n += 1
    train = Train(
        f"x{n}",
        length_m=template.train.length_m,
        max_speed_kmh=template.train.max_speed_kmh,
    )
    extra = TrainRun(
        train,
        start=template.goal,
        goal=template.start,
        departure_min=0.0,
        arrival_min=None,
    )
    schedule = Schedule(
        list(scenario.schedule.runs) + [extra],
        scenario.schedule.duration_min,
    )
    return _checked(
        scenario.with_schedule(schedule, note=f"added-train:{train.name}")
    )


def shifted_resolution(scenario: Scenario, r_s_factor: float = 1.0,
                       r_t_factor: float = 1.0) -> Scenario:
    """Disruption: re-discretise the same physical scenario.

    Scaling ``r_s`` or ``r_t`` leaves the physical plan untouched but
    changes every discrete quantity — segment counts, speeds, horizons —
    which is exactly the surface where discretisation bugs live.  The
    transform with factor ``1/f`` is the inverse of the one with ``f``.
    """
    if r_s_factor <= 0 or r_t_factor <= 0:
        raise DisruptionError("resolution factors must be positive")
    shifted = dataclasses.replace(
        scenario,
        r_s_km=scenario.r_s_km * r_s_factor,
        r_t_min=scenario.r_t_min * r_t_factor,
        meta=dict(scenario.meta),
    )
    shifted.meta.setdefault("edits", []).append(
        f"resolution:x{r_s_factor}:x{r_t_factor}"
    )
    return _checked(shifted)


# -- network-level transforms -------------------------------------------


def blocked_track(scenario: Scenario, track_name: str) -> Scenario:
    """Disruption: ``track_name`` is out of service and removed.

    Node kinds are recomputed from the post-removal degrees (a switch
    losing its third leg becomes a link, a link losing one side becomes
    a boundary), orphaned nodes and emptied stations are dropped, and
    the result must still be a valid connected network on which every
    scheduled run discretises and can reach its goal — otherwise
    :class:`DisruptionError` is raised.
    """
    network = scenario.network
    if track_name not in network.tracks:
        raise DisruptionError(f"unknown track {track_name!r}")
    tracks = [
        track for name, track in network.tracks.items()
        if name != track_name
    ]
    if not tracks:
        raise DisruptionError("cannot block the only track")
    degrees: dict[str, int] = {}
    for track in tracks:
        for end in (track.node_a, track.node_b):
            degrees[end] = degrees.get(end, 0) + 1
    kinds = {1: NodeKind.BOUNDARY, 2: NodeKind.LINK}
    nodes = [
        Node(name, kinds.get(degree, NodeKind.SWITCH))
        for name, degree in sorted(degrees.items())
    ]
    stations = {}
    for station, platform_tracks in network.stations.items():
        kept = [t for t in platform_tracks if t != track_name]
        if kept:
            stations[station] = kept
    try:
        blocked = RailwayNetwork(nodes, tracks, stations)
    except NetworkError as exc:
        raise DisruptionError(str(exc)) from exc
    return _checked(
        scenario.with_network(blocked, note=f"blocked:{track_name}")
    )


def blockable_tracks(scenario: Scenario) -> list[str]:
    """Track names whose blocking yields a well-formed scenario."""
    names = []
    for name in sorted(scenario.network.tracks):
        try:
            blocked_track(scenario, name)
        except DisruptionError:
            continue
        names.append(name)
    return names


# -- well-formedness -----------------------------------------------------


def _checked(scenario: Scenario) -> Scenario:
    """``scenario`` if it discretises cleanly, else DisruptionError.

    Checks everything short of solving: the network validates (already
    enforced by its constructor), every run discretises (stations exist,
    trains fit their start stations, departures precede the horizon) and
    every goal is reachable from its start.
    """
    try:
        net = scenario.discretize()
        runs, _t_max = discretize_schedule(
            net, scenario.schedule, scenario.r_t_min
        )
    except (ScheduleError, NetworkError) as exc:
        raise DisruptionError(str(exc)) from exc
    for run in runs:
        distances = multi_source_distances(net, list(run.start_segments))
        if not any(distances[g] >= 0 for g in run.goal_segments):
            raise DisruptionError(
                f"train {run.name!r}: goal {run.run.goal!r} unreachable "
                f"from {run.run.start!r}"
            )
    return scenario
