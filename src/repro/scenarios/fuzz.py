"""Randomized differential fuzz harness over solver paths.

Every scenario the generator mints is solved through four independent
pipelines that must agree bit-for-bit on the verdict:

* ``eager``     — serial solve of the full eager encoding;
* ``lazy``      — serial CEGAR loop over the lazily-deferred families;
* ``portfolio`` — eager encoding raced through the process portfolio;
* ``service``   — CEGAR loop on the resident incremental solver service.

Optionally the generation task's optimum (minimum added VSS borders) is
cross-checked between the eager and lazy descents — the lazy refinement
provably cannot change it, so any difference is a bug.

A disagreement is *shrunk* — trains dropped, tracks blocked, greedily,
for as long as the smaller scenario still disagrees — and the minimal
scenario is written out as a reproducer JSON file that
:func:`reproduce` (or ``repro fuzz --reproduce``) replays exactly.

Everything derives from the run seed: the same seed always generates
the same scenarios, verdicts, and records, byte for byte.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass, field

from repro.obs import events as obs_events
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.scenarios.disruptions import DisruptionError, blocked_track
from repro.scenarios.generator import generate_scenario, with_headroom
from repro.scenarios.spec import Scenario, ScenarioSpec, scenario_from_json
from repro.trains.schedule import Schedule

#: The solver paths every scenario is pushed through.
PATHS = ("eager", "lazy", "portfolio", "service")


def solve_path(scenario: Scenario, path: str, jobs: int = 2,
               profile: bool = False):
    """Run the verification task of ``scenario`` along one path."""
    from repro.tasks.verification import verify_schedule

    net = scenario.discretize()
    if path == "eager":
        return verify_schedule(
            net, scenario.schedule, scenario.r_t_min,
            lazy=False, parallel=1, profile=profile,
        )
    if path == "lazy":
        return verify_schedule(
            net, scenario.schedule, scenario.r_t_min,
            lazy=True, parallel=1, profile=profile,
        )
    if path == "portfolio":
        return verify_schedule(
            net, scenario.schedule, scenario.r_t_min,
            lazy=False, parallel=jobs, profile=profile,
        )
    if path == "service":
        return verify_schedule(
            net, scenario.schedule, scenario.r_t_min,
            lazy=True, parallel=jobs, profile=profile,
        )
    raise ValueError(f"unknown path {path!r}")


def path_verdicts(scenario: Scenario, jobs: int = 2,
                  paths: tuple[str, ...] = PATHS,
                  profile: bool = False) -> dict[str, bool]:
    """The verification verdict of every path on ``scenario``."""
    return {
        path: bool(
            solve_path(scenario, path, jobs, profile=profile).satisfiable
        )
        for path in paths
    }


def optimum_pair(scenario: Scenario, jobs: int = 2) -> dict:
    """Generation optimum (feasible, min borders) — eager vs lazy."""
    from repro.tasks.generation import generate_layout

    out = {}
    for mode, lazy in (("eager", False), ("lazy", True)):
        result = generate_layout(
            scenario.discretize(), scenario.schedule, scenario.r_t_min,
            lazy=lazy, parallel=1,
        )
        out[mode] = {
            "feasible": bool(result.satisfiable),
            "cost": result.objective_value,
        }
    return out


@dataclass
class FuzzRecord:
    """One fuzzed scenario and what every path said about it."""

    seed: int
    name: str
    headroom: int
    trains: int
    tracks: int
    verdicts: dict = field(default_factory=dict)
    optima: dict | None = None
    verdicts_agree: bool = True
    optima_agree: bool = True
    shrink_steps: int = 0
    reproducer: str | None = None

    @property
    def agree(self) -> bool:
        return self.verdicts_agree and self.optima_agree


@dataclass
class FuzzReport:
    """Outcome of :func:`run_fuzz`."""

    seed: int
    count: int
    records: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def disagreements(self) -> list:
        return [r for r in self.records if not r.agree]

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "ok": self.ok,
            "records": [asdict(r) for r in self.records],
            "metrics": self.metrics,
        }


def fuzz_scenario(run_seed: int, index: int,
                  max_trains: int = 3, max_loops: int = 1) -> Scenario:
    """The ``index``-th scenario of fuzz run ``run_seed``.

    Specs are sampled then clamped to the fuzz size profile, and a
    seed-drawn deadline headroom in ``[0, 3]`` mixes SAT and UNSAT
    verdicts across the run.
    """
    import dataclasses

    scenario_seed = run_seed * 1000 + index
    spec = ScenarioSpec.sampled(scenario_seed, max_trains=max_trains)
    spec = dataclasses.replace(
        spec,
        loops=min(spec.loops, max_loops),
        corridor_tracks=min(spec.corridor_tracks, 2),
    )
    rng = random.Random(f"fuzz-headroom-{run_seed}-{index}")
    headroom = rng.randint(0, 3)
    scenario = with_headroom(generate_scenario(spec), headroom)
    scenario.meta["fuzz"] = {"run_seed": run_seed, "index": index,
                             "headroom": headroom}
    return scenario


def shrink(scenario: Scenario, still_failing, max_checks: int = 24,
           ) -> tuple[Scenario, int]:
    """Greedily minimise a disagreeing scenario.

    Tries dropping one train at a time, then blocking one track at a
    time, keeping any candidate for which ``still_failing`` holds;
    repeats until a full pass makes no progress or ``max_checks``
    candidate evaluations are spent.  Returns the smallest still-failing
    scenario and the number of successful shrink steps.
    """
    steps = 0
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        if len(scenario.schedule.runs) > 1:
            for run in list(scenario.schedule.runs):
                kept = [
                    r for r in scenario.schedule.runs if r is not run
                ]
                candidate = scenario.with_schedule(
                    Schedule(kept, scenario.schedule.duration_min),
                    note=f"shrink:drop-train:{run.train.name}",
                )
                checks += 1
                if still_failing(candidate):
                    scenario = candidate
                    steps += 1
                    progress = True
                    break
                if checks >= max_checks:
                    break
        if progress or checks >= max_checks:
            continue
        for track in sorted(scenario.network.tracks):
            try:
                candidate = blocked_track(scenario, track)
            except DisruptionError:
                continue
            checks += 1
            if still_failing(candidate):
                scenario = candidate
                steps += 1
                progress = True
                break
            if checks >= max_checks:
                break
    return scenario, steps


def run_fuzz(
    count: int = 25,
    seed: int = 0,
    jobs: int = 2,
    check_optimum: bool = True,
    out_dir: str | None = None,
    registry: MetricsRegistry | None = None,
    max_trains: int = 3,
    max_loops: int = 1,
    paths: tuple[str, ...] = PATHS,
    log=None,
    profile: bool = False,
) -> FuzzReport:
    """Differentially fuzz ``count`` seeded scenarios across all paths.

    Each scenario's verification verdict must be identical on every
    member of ``paths``; with ``check_optimum``, the generation task's
    optimum must additionally agree between the eager and lazy descents.
    Disagreeing scenarios are shrunk and written to ``out_dir`` as
    reproducer JSON files (``out_dir`` is created on the first failure).
    The whole run is a pure function of ``seed``.  ``profile`` turns on
    the hot-path phase profiler in every solve (attribution is summed
    into the report's ``profile.*`` metrics).
    """
    reg = registry if registry is not None else MetricsRegistry()
    report = FuzzReport(seed=seed, count=count)
    for index in range(count):
        scenario = fuzz_scenario(
            seed, index, max_trains=max_trains, max_loops=max_loops
        )
        reg.inc("scenario.generated")
        record = FuzzRecord(
            seed=seed * 1000 + index,
            name=scenario.name,
            headroom=scenario.meta["fuzz"]["headroom"],
            trains=len(scenario.schedule.runs),
            tracks=len(scenario.network.tracks),
        )
        with trace.span("fuzz.scenario", scenario=scenario.name):
            if profile:
                results = {
                    path: solve_path(scenario, path, jobs, profile=True)
                    for path in paths
                }
                record.verdicts = {
                    path: bool(result.satisfiable)
                    for path, result in results.items()
                }
                for result in results.values():
                    # Sum the additive profile counters across paths;
                    # the throughput gauges (``*_per_s``) are per-run
                    # rates and would not survive summation.
                    reg.absorb_counters({
                        key: value
                        for key, value in result.metrics.items()
                        if key.startswith("profile.")
                        and not key.endswith("_per_s")
                        and isinstance(value, (int, float))
                    })
            else:
                # Late-bound module call: tests inject lying oracles by
                # monkeypatching ``path_verdicts``.
                record.verdicts = path_verdicts(scenario, jobs, paths)
            record.verdicts_agree = len(set(record.verdicts.values())) == 1
            verdict = record.verdicts[paths[0]]
            reg.inc("scenario.verdict.sat" if verdict
                    else "scenario.verdict.unsat")
            if check_optimum:
                record.optima = optimum_pair(scenario, jobs)
                record.optima_agree = (
                    record.optima["eager"] == record.optima["lazy"]
                )
                reg.inc("scenario.optimum_checked")
        if not record.agree:
            reg.inc("scenario.disagreements")
            if log:
                log(f"DISAGREEMENT at seed {record.seed}: "
                    f"{record.verdicts} optima={record.optima}")
            record = _handle_disagreement(
                scenario, record, jobs, check_optimum, out_dir, reg, paths
            )
        obs_events.emit(
            "fuzz.scenario",
            index=index + 1,
            count=count,
            name=scenario.name,
            verdict="SAT" if verdict else "UNSAT",
            agree=record.agree,
        )
        report.records.append(record)
        if log:
            log(f"[{index + 1}/{count}] {scenario.name} "
                f"verdict={'SAT' if verdict else 'UNSAT'} "
                f"agree={record.agree}")
    reg.set("scenario.agreement", float(report.ok))
    report.metrics = reg.as_dict()
    return report


def _handle_disagreement(scenario, record, jobs, check_optimum,
                         out_dir, reg, paths):
    """Shrink a disagreeing scenario and emit its reproducer file."""

    def still_failing(candidate: Scenario) -> bool:
        verdicts = path_verdicts(candidate, jobs, paths)
        if len(set(verdicts.values())) != 1:
            return True
        if check_optimum and record.optima is not None:
            optima = optimum_pair(candidate, jobs)
            return optima["eager"] != optima["lazy"]
        return False

    smallest, steps = shrink(scenario, still_failing)
    record.shrink_steps = steps
    reg.inc("scenario.shrink_steps", steps)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"repro-seed-{record.seed}.json")
        smallest.meta["fuzz"]["verdicts"] = record.verdicts
        # Which SAT engine produced the disagreement: a reproducer found
        # under one kernel build may not reproduce under another.
        from repro.sat.kernel import resolve_kind

        smallest.meta["fuzz"]["kernel"] = resolve_kind()
        with open(path, "w") as handle:
            handle.write(smallest.to_json())
            handle.write("\n")
        record.reproducer = path
    return record


def reproduce(path: str, jobs: int = 2, check_optimum: bool = True,
              paths: tuple[str, ...] = PATHS) -> FuzzRecord:
    """Replay a reproducer file emitted by :func:`run_fuzz`."""
    with open(path) as handle:
        scenario = scenario_from_json(handle.read())
    fuzz_meta = scenario.meta.get("fuzz", {})
    record = FuzzRecord(
        seed=fuzz_meta.get("run_seed", -1),
        name=scenario.name,
        headroom=fuzz_meta.get("headroom", -1),
        trains=len(scenario.schedule.runs),
        tracks=len(scenario.network.tracks),
    )
    record.verdicts = path_verdicts(scenario, jobs, paths)
    record.verdicts_agree = len(set(record.verdicts.values())) == 1
    if check_optimum:
        record.optima = optimum_pair(scenario, jobs)
        record.optima_agree = (
            record.optima["eager"] == record.optima["lazy"]
        )
    return record


def write_report(report: FuzzReport, path: str) -> None:
    """Write a fuzz report as JSON."""
    with open(path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
