"""Scenario diversity engine: generators, disruptions, fuzzing.

Everything the four hand-built case studies provide — a network, a
schedule, two resolutions — but minted by the thousands from seeds:

* :mod:`repro.scenarios.spec` — the :class:`Scenario` object and its
  reproducer JSON round-trip;
* :mod:`repro.scenarios.generator` — seeded random networks/schedules
  and the SAT/UNSAT difficulty ramp (:func:`ramp_until_flip`);
* :mod:`repro.scenarios.disruptions` — delayed departures, added
  trains, blocked tracks, shifted resolutions;
* :mod:`repro.scenarios.workloads` — disruption families driving the
  robustness/diagnosis tasks;
* :mod:`repro.scenarios.fuzz` — the randomized differential harness
  behind ``repro fuzz`` (import it directly; it pulls in the task
  layer).
"""

from repro.scenarios.disruptions import (
    DisruptionError,
    blockable_tracks,
    blocked_track,
    delayed_departure,
    delayed_schedule,
    shifted_resolution,
    with_added_train,
)
from repro.scenarios.generator import (
    GradedPair,
    generate_network,
    generate_scenario,
    ramp_until_flip,
    with_headroom,
)
from repro.scenarios.spec import (
    Scenario,
    ScenarioSpec,
    from_case_study,
    scenario_from_json,
)
from repro.scenarios.workloads import (
    DisruptionOutcome,
    WorkloadReport,
    disruption_family,
    run_disruption_workload,
)

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "scenario_from_json",
    "from_case_study",
    "GradedPair",
    "generate_network",
    "generate_scenario",
    "ramp_until_flip",
    "with_headroom",
    "DisruptionError",
    "blockable_tracks",
    "blocked_track",
    "delayed_departure",
    "delayed_schedule",
    "shifted_resolution",
    "with_added_train",
    "DisruptionOutcome",
    "WorkloadReport",
    "disruption_family",
    "run_disruption_workload",
]
