"""Disruption workloads: generated scenarios driving analysis tasks.

Bridges the scenario engine to the existing robustness and diagnosis
tasks: take any scenario (generated, case-study-wrapped, or loaded from
a reproducer file), derive a family of disrupted variants, and report
how the plan holds up — which disruptions keep the schedule realisable,
how much departure slack each train has, and, where a disruption breaks
the plan, *which* trains' commitments conflict.

The task layer is imported lazily so the :mod:`repro.scenarios` package
stays importable from within :mod:`repro.tasks` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenarios.disruptions import (
    DisruptionError,
    blockable_tracks,
    blocked_track,
    delayed_departure,
    shifted_resolution,
    with_added_train,
)
from repro.scenarios.spec import Scenario


@dataclass
class DisruptionOutcome:
    """One disrupted variant and how the schedule fared on it."""

    name: str
    applicable: bool
    satisfiable: bool | None = None
    #: Minimal conflicting train set when unsatisfiable (diagnosis).
    conflicting_trains: list[str] = field(default_factory=list)


@dataclass
class WorkloadReport:
    """Outcome of :func:`run_disruption_workload`."""

    scenario: str
    base_satisfiable: bool
    #: Per-train largest tolerated departure delay, in steps (robustness).
    delay_tolerance: dict[str, int] = field(default_factory=dict)
    outcomes: list[DisruptionOutcome] = field(default_factory=list)

    @property
    def surviving(self) -> int:
        return sum(
            1 for o in self.outcomes if o.applicable and o.satisfiable
        )


def disruption_family(scenario: Scenario, seed: int = 0,
                      delay_steps: int = 2,
                      max_blocked: int = 2) -> list[tuple[str, Scenario]]:
    """Named disrupted variants of ``scenario``.

    One delayed departure per train, one added train, up to
    ``max_blocked`` blocked tracks (preferring non-platform tracks,
    where blocking is most often survivable), and both resolution
    shifts.  Inapplicable disruptions are skipped silently — the family
    is whatever the scenario supports.
    """
    family: list[tuple[str, Scenario]] = []
    for run in scenario.schedule.runs:
        name = run.train.name
        try:
            family.append((
                f"delay:{name}",
                delayed_departure(scenario, name, delay_steps),
            ))
        except DisruptionError:
            pass
    try:
        family.append(("added-train", with_added_train(scenario, seed)))
    except DisruptionError:
        pass
    platform = {
        t for tracks in scenario.network.stations.values() for t in tracks
    }
    candidates = sorted(
        blockable_tracks(scenario), key=lambda t: (t in platform, t)
    )
    for track in candidates[:max_blocked]:
        family.append((f"block:{track}", blocked_track(scenario, track)))
    for r_s_factor, r_t_factor in ((2.0, 1.0), (1.0, 2.0)):
        try:
            family.append((
                f"resolution:{r_s_factor}x{r_t_factor}",
                shifted_resolution(scenario, r_s_factor, r_t_factor),
            ))
        except DisruptionError:
            pass
    return family


def run_disruption_workload(scenario: Scenario, seed: int = 0,
                            delay_steps: int = 2,
                            max_blocked: int = 2,
                            max_delay_probe: int = 5,
                            diagnose: bool = True) -> WorkloadReport:
    """Verify every disrupted variant; diagnose the ones that break.

    The base scenario's per-train delay tolerance comes from the
    robustness task; each family member is verified on the pure-TTD
    layout, and — when ``diagnose`` — unsatisfiable members are passed
    to the diagnosis task for their minimal conflicting train set.
    """
    from repro.tasks.diagnosis import diagnose_infeasibility
    from repro.tasks.robustness import robustness_report
    from repro.tasks.verification import verify_schedule

    net = scenario.discretize()
    base = verify_schedule(net, scenario.schedule, scenario.r_t_min)
    report = WorkloadReport(
        scenario=scenario.name, base_satisfiable=base.satisfiable
    )
    if base.satisfiable:
        report.delay_tolerance = robustness_report(
            net, scenario.schedule, scenario.r_t_min,
            max_steps=max_delay_probe,
        )
    for name, variant in disruption_family(
        scenario, seed=seed, delay_steps=delay_steps,
        max_blocked=max_blocked,
    ):
        result = verify_schedule(
            variant.discretize(), variant.schedule, variant.r_t_min
        )
        outcome = DisruptionOutcome(
            name=name, applicable=True, satisfiable=result.satisfiable
        )
        if not result.satisfiable and diagnose:
            diagnosis = diagnose_infeasibility(
                variant.discretize(), variant.schedule, variant.r_t_min
            )
            outcome.conflicting_trains = diagnosis.conflicting_trains
        report.outcomes.append(outcome)
    return report
