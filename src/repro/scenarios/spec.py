"""Scenario objects and generator specifications.

A :class:`Scenario` bundles what the four hand-built case studies bundle
— a railway network, a schedule, and the two resolutions — but is cheap
to mint by the thousands: the seeded generator
(:mod:`repro.scenarios.generator`), the disruption transforms
(:mod:`repro.scenarios.disruptions`), and the differential fuzz harness
(:mod:`repro.scenarios.fuzz`) all trade in it.  The JSON round-trip
(:meth:`Scenario.to_json` / :func:`scenario_from_json`) is the
reproducer format the fuzz harness emits for failing seeds.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from repro.network.discretize import DiscreteNetwork
from repro.network.io import network_from_json, network_to_json
from repro.network.topology import RailwayNetwork
from repro.trains.io import schedule_from_json, schedule_to_json
from repro.trains.schedule import Schedule


@dataclass(frozen=True)
class ScenarioSpec:
    """Size/shape knobs of one generated scenario.

    Everything random about the scenario derives from ``seed`` alone:
    the same spec always produces byte-identical networks and schedules
    (:func:`repro.scenarios.generator.generate_scenario`).
    """

    seed: int
    #: Passing loops (two parallel tracks between switches) on the line.
    loops: int = 1
    #: Maximum tracks per single-track corridor between two anchors.
    corridor_tracks: int = 2
    #: Probability of hanging a branch spur off a corridor node.
    spur_probability: float = 0.25
    #: Fleet size.
    trains: int = 3
    r_s_km: float = 0.5
    r_t_min: float = 1.0
    #: Deadline slack (in steps over each train's earliest arrival) at
    #: which the difficulty ramp starts.
    headroom_steps: int = 3
    #: Scenario duration as a multiple of the slowest train's journey.
    duration_factor: float = 1.6

    @classmethod
    def sampled(cls, seed: int, max_trains: int = 4) -> "ScenarioSpec":
        """Draw a small random spec (sizes included) from ``seed``."""
        import random

        # A string seed is hashed with SHA-512 by random.seed — stable
        # across processes, unlike tuple hashing under PYTHONHASHSEED.
        rng = random.Random(f"spec-{seed}")
        return cls(
            seed=seed,
            loops=rng.randint(0, 2),
            corridor_tracks=rng.randint(1, 3),
            spur_probability=rng.choice([0.0, 0.25, 0.5]),
            trains=rng.randint(2, max_trains),
        )


@dataclass
class Scenario:
    """A network + schedule + resolutions, generator- or file-born.

    Duck-compatible with :class:`repro.casestudies.base.CaseStudy` where
    the task layer is concerned (``network``, ``schedule``, ``r_s_km``,
    ``r_t_min``, ``discretize()``).
    """

    name: str
    network: RailwayNetwork
    schedule: Schedule
    r_s_km: float
    r_t_min: float
    #: Generator seed (None for hand-built or file-loaded scenarios).
    seed: int | None = None
    #: Free-form provenance (spec fields, applied disruptions, ...).
    meta: dict = field(default_factory=dict)

    def discretize(self) -> DiscreteNetwork:
        """The segment graph at this scenario's spatial resolution."""
        return DiscreteNetwork(self.network, self.r_s_km)

    def build(self, lazy: bool = False):
        """Encode this scenario (:class:`EtcsEncoding`, built)."""
        from repro.encoding.encoder import EtcsEncoding

        return EtcsEncoding(
            self.discretize(), self.schedule, self.r_t_min
        ).build(lazy=lazy)

    def with_schedule(self, schedule: Schedule, note: str | None = None,
                      ) -> "Scenario":
        """Copy of this scenario with the schedule replaced."""
        meta = dict(self.meta)
        if note:
            meta.setdefault("edits", []).append(note)
        return replace(self, schedule=schedule, meta=meta)

    def with_network(self, network: RailwayNetwork,
                     note: str | None = None) -> "Scenario":
        """Copy of this scenario with the network replaced."""
        meta = dict(self.meta)
        if note:
            meta.setdefault("edits", []).append(note)
        return replace(self, network=network, meta=meta)

    def to_json(self) -> str:
        """Serialise to the reproducer JSON format."""
        payload = {
            "name": self.name,
            "seed": self.seed,
            "r_s_km": self.r_s_km,
            "r_t_min": self.r_t_min,
            "meta": self.meta,
            "network": json.loads(network_to_json(self.network)),
            "schedule": json.loads(schedule_to_json(self.schedule)),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def scenario_from_json(text: str) -> Scenario:
    """Deserialise a scenario written by :meth:`Scenario.to_json`."""
    payload = json.loads(text)
    return Scenario(
        name=payload.get("name", "scenario"),
        network=network_from_json(json.dumps(payload["network"])),
        schedule=schedule_from_json(json.dumps(payload["schedule"])),
        r_s_km=float(payload["r_s_km"]),
        r_t_min=float(payload["r_t_min"]),
        seed=payload.get("seed"),
        meta=payload.get("meta", {}),
    )


def from_case_study(study) -> Scenario:
    """Wrap a :class:`repro.casestudies.base.CaseStudy` as a Scenario."""
    return Scenario(
        name=study.name,
        network=study.network,
        schedule=study.schedule,
        r_s_km=study.r_s_km,
        r_t_min=study.r_t_min,
    )


def spec_to_meta(spec: ScenarioSpec) -> dict:
    """Spec fields as the provenance ``meta`` dict of its scenario."""
    return {"spec": asdict(spec)}
