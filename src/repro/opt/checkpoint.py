"""JSONL descent checkpoints: every proven bound survives a kill.

A long SAT–UNSAT descent is a staircase of facts — "a model with cost 9
exists", "cost 4 is infeasible" — each paid for with real solver time.
This module persists those facts *as they are proven*, one JSON record
per line, so a descent killed at any point can resume from its last
proven bound instead of re-proving the whole staircase:

``header``
    problem fingerprint (variable/clause counts, objective digest,
    strategy) guarding against resuming onto a different formula.
``improved``
    a better model: its cost and true-literal list.
``lower``
    a proven lower bound (an UNSAT probe at ``bound - 1``).
``units``
    level-0 facts harvested from the solver — assumption-free
    consequences of the formula, safe to re-add on resume for a warm
    start (serial descents only; see :meth:`Solver.export_learned`).
``done``
    the descent finished; resuming replays the result without probing.

Appends are flushed per record, so a SIGKILL loses at most the record
being written — and the loader tolerates a torn trailing line.  Write
failures (full disk, yanked volume) disable the writer after counting
the failure; they never take the descent down with them.
"""

from __future__ import annotations

import json
import zlib

from repro.obs import events as obs_events
from repro.obs import trace
from repro.testing import faults

#: Bump when the record layout changes incompatibly.
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be resumed from."""


#: Fingerprint keys that pin the *variable space* of an instance.  A
#: cached model is a list of variable numbers; replaying it on another
#: instance is only meaningful when both number their variables
#: identically, which (deterministic :class:`repro.logic.cnf.VarPool`)
#: the variable count pins.  Clause counts are deliberately excluded:
#: delta-close instances differ in clauses, and the warm-start paths
#: re-certify the model clause-by-clause anyway.
WARM_COMPAT_KEYS = ("version", "num_vars")


def warm_compatible(cached: dict | None, current: dict) -> bool:
    """Whether a cached fingerprint's model maps onto ``current``.

    Compares only :data:`WARM_COMPAT_KEYS` (via
    :meth:`CheckpointState.check`).  A missing cached fingerprint
    passes — the clause-level re-certification downstream remains the
    actual soundness gate.
    """
    if not cached:
        return True
    reduce = lambda fp: {k: fp.get(k) for k in WARM_COMPAT_KEYS}  # noqa: E731
    try:
        CheckpointState(reduce(cached)).check(reduce(current))
    except CheckpointError:
        return False
    return True


def descent_fingerprint(
    num_vars: int,
    num_clauses: int,
    objective_lits: list[int],
    strategy: str,
) -> dict:
    """Identity of one descent: resuming requires an exact match.

    The variable/clause counts are taken *before* the totalizer is
    built; together with the objective digest they pin the formula, and
    — because :class:`repro.logic.cnf.VarPool` numbers auxiliaries
    deterministically — also pin every totalizer literal a checkpointed
    record refers to.
    """
    digest = zlib.crc32(
        ",".join(str(lit) for lit in objective_lits).encode()
    )
    return {
        "version": FORMAT_VERSION,
        "num_vars": num_vars,
        "num_clauses": num_clauses,
        "objective_crc": digest,
        "objective_len": len(objective_lits),
        "strategy": strategy,
    }


class CheckpointState:
    """Folded view of a checkpoint file (what a resume starts from)."""

    def __init__(self, fingerprint: dict):
        self.fingerprint = fingerprint
        self.best_cost: int | None = None
        self.best_model: list[int] = []
        self.lower_bound: int = 0
        self.units: list[int] = []
        self.probes: int = 0  # probes recorded by the previous run(s)
        self.done_status: str | None = None

    @classmethod
    def warm(cls, cost: int, model: list[int],
             fingerprint: dict | None = None) -> "CheckpointState":
        """A warm-start seed that is *not* a resume.

        The solve gateway (:mod:`repro.gateway`) replays a cached model
        from a delta-close instance as the descent's starting incumbent:
        the descent then skips its initial unconstrained probe and
        descends straight from ``cost``.  Unlike a checkpoint resume it
        carries no lower bound and no learned units — those are facts
        about a *different* formula and would be unsound to replay.
        """
        state = cls(dict(fingerprint or {}))
        state.best_cost = cost
        state.best_model = list(model)
        return state

    def check(self, fingerprint: dict) -> None:
        """Raise :class:`CheckpointError` unless the fingerprints match."""
        if self.fingerprint != fingerprint:
            diffs = sorted(
                key for key in set(self.fingerprint) | set(fingerprint)
                if self.fingerprint.get(key) != fingerprint.get(key)
            )
            raise CheckpointError(
                "checkpoint belongs to a different descent "
                f"(mismatched: {', '.join(diffs)})"
            )


def load_checkpoint(path: str) -> CheckpointState | None:
    """Fold a checkpoint file into a :class:`CheckpointState`.

    Returns None when the file is missing or empty.  Undecodable lines
    (a record torn by a kill mid-write) are skipped; a file whose first
    intact record is not a header raises :class:`CheckpointError`.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return None
    state: CheckpointState | None = None
    seen_units: set[int] = set()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn trailing line from a kill mid-append
        kind = record.get("type")
        if state is None:
            if kind != "header":
                raise CheckpointError(
                    f"checkpoint {path!r} does not start with a header"
                )
            state = CheckpointState(record.get("fingerprint", {}))
            continue
        if kind == "improved":
            cost = record.get("cost")
            if state.best_cost is None or cost < state.best_cost:
                state.best_cost = cost
                state.best_model = list(record.get("model", []))
            state.probes += 1
        elif kind == "lower":
            state.lower_bound = max(state.lower_bound,
                                    int(record.get("bound", 0)))
            state.probes += 1
        elif kind == "units":
            for lit in record.get("lits", []):
                if lit not in seen_units:
                    seen_units.add(lit)
                    state.units.append(lit)
        elif kind == "done":
            state.done_status = record.get("status")
        # "resumed" markers and unknown kinds are informational only.
    return state


class DescentCheckpoint:
    """Append-only JSONL writer for one descent's proven facts.

    Failure policy: any :class:`OSError` while opening or writing counts
    as a ``write_failure``, disables the writer, and is reported through
    a ``checkpoint.write_failed`` trace event — the descent itself never
    sees the exception.
    """

    def __init__(self, path: str):
        self.path = path
        self.writes = 0
        self.write_failures = 0
        self._seq = 0
        self._handle = None
        self._disabled = False

    def open(self, fingerprint: dict, resumed: bool) -> None:
        """Start writing: truncate fresh, or append a resume marker."""
        try:
            if resumed:
                self._handle = open(self.path, "a", encoding="utf-8")
                self._write({"type": "resumed"})
            else:
                self._handle = open(self.path, "w", encoding="utf-8")
                self._write({"type": "header", "fingerprint": fingerprint})
        except OSError as exc:
            self._fail(exc)

    def improved(self, cost: int, model: list[int], probe: int) -> None:
        self._write({"type": "improved", "cost": cost, "probe": probe,
                     "model": model})

    def lower(self, bound: int, probe: int) -> None:
        self._write({"type": "lower", "bound": bound, "probe": probe})

    def units(self, lits: list[int]) -> None:
        if lits:
            self._write({"type": "units", "lits": lits})

    def done(self, status: str, cost: int | None) -> None:
        self._write({"type": "done", "status": status, "cost": cost})

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def summary(self) -> dict:
        """Writer counters for the result payload / metrics registry."""
        return {
            "path": self.path,
            "writes": self.writes,
            "write_failures": self.write_failures,
        }

    def _write(self, record: dict) -> None:
        if self._disabled or self._handle is None:
            return
        self._seq += 1
        try:
            faults.on_checkpoint_write(self._seq)
            self._handle.write(json.dumps(record) + "\n")
            # Per-record flush: a SIGKILLed descent keeps everything the
            # OS already received (page cache survives process death).
            self._handle.flush()
        except OSError as exc:
            self._fail(exc)
        else:
            self.writes += 1
            obs_events.emit(
                "checkpoint.write",
                type=record.get("type", "?"),
                seq=self._seq,
            )

    def _fail(self, exc: OSError) -> None:
        self.write_failures += 1
        self._disabled = True
        trace.event("checkpoint.write_failed", path=self.path,
                    error=f"{type(exc).__name__}: {exc}")
        self.close()
