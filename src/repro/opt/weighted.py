"""Weighted minimisation: ``min Σ w_i · x_i`` with positive integer weights.

Real VSS borders are not all equally cheap: a virtual border in plain track
is configuration work, one near a switch interacts with interlocking logic,
and upgrading an existing TTD boundary is free.  This engine minimises a
weighted sum of soft literals by reduction to the unweighted engines:
each literal enters the totalizer ``weight`` times (sound because the
totalizer counts true *inputs*, and duplicated inputs count multiply).

For the modest weight ranges of layout design (1-10) the duplication
blow-up is acceptable; larger weights should use stratification, which
:func:`minimize_weighted_sum` applies automatically above a threshold by
splitting weights into strata and minimising lexicographically from the
heaviest stratum down.
"""

from __future__ import annotations

import time

from repro.logic.cnf import CNF
from repro.logic.totalizer import Totalizer
from repro.opt.minimize import minimize_sum
from repro.opt.result import STATUS_TIMEOUT, MinimizeResult

#: Weights at or below this are handled by plain duplication.
_DUPLICATION_LIMIT = 16


def minimize_weighted_sum(
    cnf: CNF,
    weighted_lits: list[tuple[int, int]],
    strategy: str = "linear",
    parallel: int = 1,
    persistent: bool = False,
    wall_deadline_s: float | None = None,
    refine=None,
    profile: bool = False,
) -> MinimizeResult:
    """Minimise ``Σ weight * [lit is true]``.

    ``weighted_lits`` is a list of ``(literal, weight)`` pairs with positive
    integer weights.  Returns a :class:`MinimizeResult` whose ``cost`` is the
    weighted optimum.  ``parallel`` and ``persistent`` are forwarded to the
    underlying :func:`minimize_sum` descents (portfolio-raced when
    ``parallel > 1``, on the resident solver service when ``persistent``).
    ``wall_deadline_s`` bounds the whole minimisation; stratified runs give
    each stratum the remaining budget and propagate a timeout outcome.
    ``refine`` is the lazy-encoding check callback, forwarded to every
    underlying descent (see :func:`repro.opt.minimize.minimize_sum`);
    so is ``profile`` (the hot-path phase profiler).
    """
    for lit, weight in weighted_lits:
        if weight <= 0 or not isinstance(weight, int):
            raise ValueError(
                f"weights must be positive integers, got {weight} for {lit}"
            )

    max_weight = max((w for __, w in weighted_lits), default=0)
    if max_weight <= _DUPLICATION_LIMIT:
        duplicated = [
            lit for lit, weight in weighted_lits for __ in range(weight)
        ]
        result = minimize_sum(
            cnf, duplicated, strategy=strategy, parallel=parallel,
            persistent=persistent, wall_deadline_s=wall_deadline_s,
            refine=refine, profile=profile,
        )
        return result

    # Stratified: minimise the heavy weights first, freeze, then lighter.
    # Lexicographic-by-stratum equals the weighted optimum exactly when each
    # stratum's weight exceeds the total weight of everything lighter (the
    # classic BMO condition); otherwise the result is an upper bound and
    # ``proven_optimal`` is False.
    strata: dict[int, list[int]] = {}
    for lit, weight in weighted_lits:
        strata.setdefault(weight, []).append(lit)
    ordered = sorted(strata, reverse=True)
    bmo = all(
        weight > sum(w * len(strata[w]) for w in ordered if w < weight)
        for weight in ordered
    )
    deadline = (
        time.perf_counter() + wall_deadline_s
        if wall_deadline_s is not None else None
    )
    total_cost = 0
    last: MinimizeResult | None = None
    calls = 0
    all_optimal = True
    timed_out = False
    for weight in ordered:
        lits = strata[weight]
        remaining = None
        if deadline is not None:
            remaining = max(deadline - time.perf_counter(), 0.0)
            if remaining <= 0 and last is not None:
                # Budget spent between strata: freeze what we have.
                timed_out = True
                break
        result = minimize_sum(
            cnf, lits, strategy=strategy, parallel=parallel,
            persistent=persistent, wall_deadline_s=remaining,
            refine=refine, profile=profile,
        )
        calls += result.solve_calls
        timed_out = timed_out or result.status == STATUS_TIMEOUT
        if not result.feasible:
            # A timed-out first solve leaves feasibility open — propagate
            # the timeout status instead of claiming proven infeasibility.
            return MinimizeResult(
                feasible=False, solve_calls=calls, strategy="stratified",
                status=(STATUS_TIMEOUT if result.status == STATUS_TIMEOUT
                        else ""),
            )
        all_optimal = all_optimal and result.proven_optimal
        total_cost += weight * result.cost
        if result.cost < len(lits):
            totalizer = Totalizer(cnf, lits)
            totalizer.assert_at_most(result.cost)
        last = result
    assert last is not None
    proven = bmo and all_optimal and not timed_out
    return MinimizeResult(
        feasible=True,
        cost=total_cost,
        model=last.model,
        proven_optimal=proven,
        solve_calls=calls,
        strategy="stratified",
        status=STATUS_TIMEOUT if timed_out else "",
    )
