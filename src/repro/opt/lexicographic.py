"""Lexicographic multi-objective minimisation.

The paper (§III-C) notes that "efficiency" can be interpreted in several
ways — e.g. first minimise the makespan, then among makespan-optimal
solutions minimise the number of VSS borders.  This wrapper minimises a list
of objectives in priority order, freezing each optimum with a permanent
cardinality bound before attacking the next.
"""

from __future__ import annotations

from repro.logic.cnf import CNF
from repro.logic.totalizer import Totalizer
from repro.opt.minimize import minimize_sum
from repro.opt.result import MinimizeResult


def minimize_lexicographic(
    cnf: CNF,
    objectives: list[list[int]],
    strategy: str = "linear",
) -> list[MinimizeResult]:
    """Minimise each objective in order, fixing earlier optima.

    Returns one :class:`MinimizeResult` per objective.  If the hard
    constraints are infeasible, a single infeasible result is returned.

    Note: each stage permanently adds the bound ``sum(objective_i) <= opt_i``
    to ``cnf``, so the caller's CNF reflects the full lexicographic problem
    afterwards.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    results: list[MinimizeResult] = []
    for objective in objectives:
        result = minimize_sum(cnf, objective, strategy=strategy)
        results.append(result)
        if not result.feasible:
            break
        if objective and result.cost < len(objective):
            totalizer = Totalizer(cnf, objective)
            totalizer.assert_at_most(result.cost)
    return results
