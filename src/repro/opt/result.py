"""Result type shared by the minimisation engines."""

from __future__ import annotations

from dataclasses import dataclass, field

#: The descent ran to a proven conclusion (optimum found, or the hard
#: constraints were proven infeasible).
STATUS_OPTIMAL = "optimal"
#: A model exists but optimality was not certified (budget other than the
#: wall clock ran out, e.g. a conflict limit).
STATUS_FEASIBLE = "feasible"
#: The wall-clock deadline ended the descent; the result is best-so-far.
STATUS_TIMEOUT = "timeout"
#: The descent was restored from a checkpoint and ended without either
#: improving the restored bound or proving anything new.
STATUS_RESUMED = "resumed"


@dataclass
class DescentResult:
    """Anytime outcome of minimising the true literals in an objective.

    Attributes:
        feasible: whether the hard constraints are satisfiable at all.
        cost: number of objective literals true in the best model found
            (meaningless if not feasible).
        model: the best model, as the list of true literals (DIMACS style).
        proven_optimal: True when a final UNSAT step certified optimality.
        solve_calls: number of SAT solver invocations used.
        strategy: which engine produced the result.
        solver_stats: cumulative solver counters over the whole descent
            (merged across portfolio members when ``parallel > 1``).
        portfolio: summary of the portfolio races when the descent ran with
            ``parallel > 1`` (processes, calls, per-member win counts,
            cumulative wall time); None on the serial path.
        status: one of :data:`STATUS_OPTIMAL` / :data:`STATUS_FEASIBLE` /
            :data:`STATUS_TIMEOUT` / :data:`STATUS_RESUMED` — how the
            descent ended.
        lower_bound: largest cost proven infeasible-below (0 when nothing
            was proven); with ``proven_optimal`` it equals ``cost``.
        upper_bound: cost of the best model found (= ``cost``), or None
            when no model was found.
        resumed: the descent restarted from a checkpoint.
        checkpoint: checkpoint-writer summary (path, writes,
            write_failures, restored bounds); None when checkpointing was
            off.
        warm_started: the descent skipped its initial probe because a
            cached model from a delta-close instance re-validated
            against this formula (see :mod:`repro.gateway`).
        fingerprint: the descent's identity
            (:func:`repro.opt.checkpoint.descent_fingerprint`), recorded
            whenever checkpointing or warm-starting computed it; the
            gateway stores it with cached results so a later warm-start
            can reject incompatible instances up front.
    """

    feasible: bool
    cost: int = 0
    model: list[int] = field(default_factory=list)
    proven_optimal: bool = False
    solve_calls: int = 0
    strategy: str = ""
    solver_stats: dict = field(default_factory=dict)
    portfolio: dict | None = None
    status: str = ""
    lower_bound: int = 0
    upper_bound: int | None = None
    resumed: bool = False
    checkpoint: dict | None = None
    warm_started: bool = False
    fingerprint: dict | None = None

    def __post_init__(self) -> None:
        if not self.status:
            self.status = (
                STATUS_OPTIMAL if self.proven_optimal or not self.feasible
                else STATUS_FEASIBLE
            )
        if self.upper_bound is None and self.feasible:
            self.upper_bound = self.cost
        if self.proven_optimal and self.feasible:
            self.lower_bound = max(self.lower_bound, self.cost)

    def true_set(self) -> set[int]:
        """The model's true variables as a set (for decoding)."""
        return {lit for lit in self.model if lit > 0}


#: Backwards-compatible alias: the pre-anytime name of the result type.
MinimizeResult = DescentResult
