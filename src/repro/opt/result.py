"""Result type shared by the minimisation engines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MinimizeResult:
    """Outcome of minimising the number of true literals in an objective.

    Attributes:
        feasible: whether the hard constraints are satisfiable at all.
        cost: number of objective literals true in the best model found
            (meaningless if not feasible).
        model: the best model, as the list of true literals (DIMACS style).
        proven_optimal: True when a final UNSAT step certified optimality.
        solve_calls: number of SAT solver invocations used.
        strategy: which engine produced the result.
        solver_stats: cumulative solver counters over the whole descent
            (merged across portfolio members when ``parallel > 1``).
        portfolio: summary of the portfolio races when the descent ran with
            ``parallel > 1`` (processes, calls, per-member win counts,
            cumulative wall time); None on the serial path.
    """

    feasible: bool
    cost: int = 0
    model: list[int] = field(default_factory=list)
    proven_optimal: bool = False
    solve_calls: int = 0
    strategy: str = ""
    solver_stats: dict = field(default_factory=dict)
    portfolio: dict | None = None

    def true_set(self) -> set[int]:
        """The model's true variables as a set (for decoding)."""
        return {lit for lit in self.model if lit > 0}
