"""Core-guided minimisation (Fu–Malik), searching from below.

Each objective literal ``l`` becomes a soft unit clause ``(¬l)`` guarded by a
selector assumption.  While the selectors are jointly infeasible the solver
returns an unsat core; every soft clause in the core gets a fresh *blocking*
variable (at most one blocker per round may be true), and the lower bound
rises by one.  When the selectors become satisfiable, the number of completed
rounds equals the optimum (Fu & Malik 2006) — the first model found is
already optimal, which is attractive when models are expensive to improve.

Under ``wall_deadline_s`` the search is *anytime from below*: the deadline is
shipped into every solve, and on expiry the engine falls back to an
unconstrained model with the rounds completed so far as a proven lower bound
(``status="timeout"``).
"""

from __future__ import annotations

import time

from repro.logic.cnf import CNF
from repro.opt.result import STATUS_TIMEOUT, MinimizeResult
from repro.sat.solver import Solver
from repro.sat.types import SolveResult, SolverConfig


def minimize_sum_core_guided(
    cnf: CNF,
    objective_lits: list[int],
    solver: Solver | None = None,
    max_iterations: int = 10_000,
    wall_deadline_s: float | None = None,
    profile: bool = False,
) -> MinimizeResult:
    """Minimise the number of true ``objective_lits`` via Fu–Malik relaxation.

    The hard constraints are the clauses of ``cnf``; auxiliary selector and
    blocking variables are drawn from ``cnf.pool`` (and their clauses are
    recorded in ``cnf`` so the container stays in sync with the solver).

    ``wall_deadline_s`` bounds the whole search; on expiry the result is an
    unconstrained model (any model, cost unoptimised) with ``lower_bound``
    set to the rounds proven so far and ``status="timeout"``.

    ``profile`` turns on the hot-path phase profiler in the engine's
    solver (ignored when an explicit ``solver`` is given).
    """
    if solver is None and profile:
        solver = Solver(SolverConfig(profile=True))
    solver = cnf.to_solver(solver)
    deadline = (
        time.perf_counter() + wall_deadline_s
        if wall_deadline_s is not None else None
    )
    configured_deadline = solver.config.wall_deadline_s

    def arm() -> bool:
        """Point the solver at the remaining budget; False when spent."""
        if deadline is None:
            return True
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return False
        solver.config.wall_deadline_s = (
            remaining if configured_deadline is None
            else min(configured_deadline, remaining)
        )
        return True

    def timed_out(verdict: SolveResult) -> bool:
        return verdict is SolveResult.UNKNOWN and (
            solver.last_stats.deadline_hits > 0
            or (deadline is not None and time.perf_counter() >= deadline)
        )

    try:
        calls = 1
        arm()
        first = solver.solve()
        if first is not SolveResult.SAT:
            return MinimizeResult(
                feasible=False, solve_calls=calls, strategy="core",
                status=STATUS_TIMEOUT if timed_out(first) else "",
            )
        first_model = solver.model()
        first_cost = sum(
            1 for lit in objective_lits if solver.model_value(lit)
        )
        if not objective_lits:
            return MinimizeResult(
                feasible=True,
                cost=0,
                model=first_model,
                proven_optimal=True,
                solve_calls=calls,
                strategy="core",
            )

        def add(clause: list[int]) -> None:
            cnf.add(clause)
            solver.add_clause(clause)

        def best_effort(
            calls: int, lower_bound: int, deadline_hit: bool = True
        ) -> MinimizeResult:
            """Budget fallback: the first model, bounded from below."""
            proven = first_cost == lower_bound
            status = ""
            if not proven and deadline_hit:
                status = STATUS_TIMEOUT
            return MinimizeResult(
                feasible=True,
                cost=first_cost,
                model=first_model,
                proven_optimal=proven,
                solve_calls=calls,
                strategy="core",
                status=status,
                lower_bound=lower_bound,
            )

        # selector -> (objective literal, accumulated blocking variables)
        softs: dict[int, tuple[int, list[int]]] = {}
        for lit in objective_lits:
            selector = cnf.pool.new_aux()
            add([-selector, -lit])
            softs[selector] = (lit, [])

        lower_bound = 0
        for _ in range(max_iterations):
            if not arm():
                return best_effort(calls, lower_bound)
            calls += 1
            verdict = solver.solve(sorted(softs))
            if verdict is SolveResult.SAT:
                model = solver.model()
                cost = sum(
                    1 for lit in objective_lits if solver.model_value(lit)
                )
                return MinimizeResult(
                    feasible=True,
                    cost=cost,
                    model=model,
                    proven_optimal=cost == lower_bound,
                    solve_calls=calls,
                    strategy="core",
                    lower_bound=lower_bound,
                )
            if verdict is SolveResult.UNKNOWN:
                if timed_out(verdict):
                    return best_effort(calls, lower_bound)
                break  # conflict budget: fall through to the tail solve
            core = [lit for lit in solver.unsat_core() if lit in softs]
            if not core:
                # Hard clauses alone are unsat — impossible after the first
                # SAT call above, but guard against solver misuse.
                return MinimizeResult(
                    feasible=False, solve_calls=calls, strategy="core"
                )
            lower_bound += 1
            round_blockers: list[int] = []
            for selector in core:
                objective_lit, blockers = softs.pop(selector)
                add([-selector])  # permanently retire the old soft clause
                blocker = cnf.pool.new_aux()
                round_blockers.append(blocker)
                new_blockers = blockers + [blocker]
                new_selector = cnf.pool.new_aux()
                add([-new_selector, -objective_lit, *new_blockers])
                softs[new_selector] = (objective_lit, new_blockers)
            # At most one blocking variable per round may fire.
            for i in range(len(round_blockers)):
                for j in range(i + 1, len(round_blockers)):
                    add([-round_blockers[i], -round_blockers[j]])

        # Iteration budget exhausted: report the first model as-is.
        return best_effort(calls, lower_bound, deadline_hit=False)
    finally:
        solver.config.wall_deadline_s = configured_deadline
