"""Core-guided minimisation (Fu–Malik), searching from below.

Each objective literal ``l`` becomes a soft unit clause ``(¬l)`` guarded by a
selector assumption.  While the selectors are jointly infeasible the solver
returns an unsat core; every soft clause in the core gets a fresh *blocking*
variable (at most one blocker per round may be true), and the lower bound
rises by one.  When the selectors become satisfiable, the number of completed
rounds equals the optimum (Fu & Malik 2006) — the first model found is
already optimal, which is attractive when models are expensive to improve.
"""

from __future__ import annotations

from repro.logic.cnf import CNF
from repro.opt.result import MinimizeResult
from repro.sat.solver import Solver
from repro.sat.types import SolveResult


def minimize_sum_core_guided(
    cnf: CNF,
    objective_lits: list[int],
    solver: Solver | None = None,
    max_iterations: int = 10_000,
) -> MinimizeResult:
    """Minimise the number of true ``objective_lits`` via Fu–Malik relaxation.

    The hard constraints are the clauses of ``cnf``; auxiliary selector and
    blocking variables are drawn from ``cnf.pool`` (and their clauses are
    recorded in ``cnf`` so the container stays in sync with the solver).
    """
    solver = cnf.to_solver(solver)
    calls = 1
    if solver.solve() is not SolveResult.SAT:
        return MinimizeResult(feasible=False, solve_calls=calls, strategy="core")
    if not objective_lits:
        return MinimizeResult(
            feasible=True,
            cost=0,
            model=solver.model(),
            proven_optimal=True,
            solve_calls=calls,
            strategy="core",
        )

    def add(clause: list[int]) -> None:
        cnf.add(clause)
        solver.add_clause(clause)

    # selector -> (objective literal, accumulated blocking variables)
    softs: dict[int, tuple[int, list[int]]] = {}
    for lit in objective_lits:
        selector = cnf.pool.new_aux()
        add([-selector, -lit])
        softs[selector] = (lit, [])

    lower_bound = 0
    for _ in range(max_iterations):
        calls += 1
        verdict = solver.solve(sorted(softs))
        if verdict is SolveResult.SAT:
            model = solver.model()
            cost = sum(1 for lit in objective_lits if solver.model_value(lit))
            return MinimizeResult(
                feasible=True,
                cost=cost,
                model=model,
                proven_optimal=cost == lower_bound,
                solve_calls=calls,
                strategy="core",
            )
        core = [lit for lit in solver.unsat_core() if lit in softs]
        if not core:
            # Hard clauses alone are unsat — impossible after the first SAT
            # call above, but guard against solver misuse.
            return MinimizeResult(
                feasible=False, solve_calls=calls, strategy="core"
            )
        lower_bound += 1
        round_blockers: list[int] = []
        for selector in core:
            objective_lit, blockers = softs.pop(selector)
            add([-selector])  # permanently retire the old soft clause
            blocker = cnf.pool.new_aux()
            round_blockers.append(blocker)
            new_blockers = blockers + [blocker]
            new_selector = cnf.pool.new_aux()
            add([-new_selector, -objective_lit, *new_blockers])
            softs[new_selector] = (objective_lit, new_blockers)
        # At most one blocking variable per round may fire.
        for i in range(len(round_blockers)):
            for j in range(i + 1, len(round_blockers)):
                add([-round_blockers[i], -round_blockers[j]])

    # Iteration budget exhausted: report the unconstrained model.
    calls += 1
    verdict = solver.solve()
    feasible = verdict is SolveResult.SAT
    model = solver.model() if feasible else []
    cost = (
        sum(1 for lit in objective_lits if solver.model_value(lit))
        if feasible
        else 0
    )
    return MinimizeResult(
        feasible=feasible,
        cost=cost,
        model=model,
        proven_optimal=False,
        solve_calls=calls,
        strategy="core",
    )
