"""SAT-based minimisation engines.

The paper's generation and optimization tasks add objective functions
(``min Σ border_v`` and ``min Σ_t ¬done^t``) on top of the satisfiability
formulation; Z3 handles these natively.  This package reimplements the
capability on top of :mod:`repro.sat` with three interchangeable strategies
(compared by ``benchmarks/bench_ablation_optimization.py``):

* ``linear``  — SAT–UNSAT descent: repeatedly tighten a totalizer bound
  below the best model found so far until UNSAT proves optimality.
* ``binary``  — binary search on the totalizer bound.
* ``core``    — OLL-style core-guided search from below (UNSAT–SAT).
"""

from repro.opt.checkpoint import CheckpointError, load_checkpoint
from repro.opt.lexicographic import minimize_lexicographic
from repro.opt.maxsat import minimize_sum_core_guided
from repro.opt.minimize import minimize_sum
from repro.opt.weighted import minimize_weighted_sum
from repro.opt.result import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    STATUS_RESUMED,
    STATUS_TIMEOUT,
    DescentResult,
    MinimizeResult,
)

__all__ = [
    "CheckpointError",
    "DescentResult",
    "MinimizeResult",
    "STATUS_FEASIBLE",
    "STATUS_OPTIMAL",
    "STATUS_RESUMED",
    "STATUS_TIMEOUT",
    "load_checkpoint",
    "minimize_sum",
    "minimize_weighted_sum",
    "minimize_sum_core_guided",
    "minimize_lexicographic",
]
