"""Model-improving minimisation: linear descent and binary search.

Both strategies build one incremental totalizer over the objective literals
and then tighten its bound with unit *assumptions* — the solver keeps all its
learned clauses across iterations, which is what makes the loop cheap.

With ``parallel > 1`` every solve of the descent is raced over diversified
solver configurations.  Two parallel engines exist:

* ``persistent=True`` (the default on the task layer) keeps a resident
  portfolio of *incremental* workers for the whole descent
  (:class:`repro.sat.service.SolverService`): the CNF is shipped once at
  session start, each probe sends only the assumptions plus the clause
  delta, and workers keep learned clauses, activities, and phases across
  probes — racing *and* incrementality.  Low-LBD clauses harvested from
  each probe are shared between members for a warm start.
* ``persistent=False`` forks fresh workers per probe via
  :func:`repro.sat.portfolio.solve_portfolio` — every probe is a
  from-scratch solve.  This path also serves as the graceful fallback
  whenever the service cannot start (no ``fork``) or loses all its
  workers mid-descent.
"""

from __future__ import annotations

from typing import Callable

from repro.logic.cnf import CNF
from repro.logic.totalizer import Totalizer
from repro.obs import trace
from repro.opt.result import MinimizeResult
from repro.sat.portfolio import (
    PortfolioMember,
    diversified_members,
    solve_portfolio,
)
from repro.sat.service import ServiceError, SolverService
from repro.sat.solver import Solver
from repro.sat.types import SolveResult


def minimize_sum(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str = "linear",
    solver: Solver | None = None,
    on_improvement: Callable[[int], None] | None = None,
    parallel: int = 1,
    portfolio_members: list[PortfolioMember] | None = None,
    descent_timeout_s: float | None = None,
    persistent: bool = False,
) -> MinimizeResult:
    """Minimise the number of true literals among ``objective_lits``.

    The hard constraints are the clauses of ``cnf``.  Returns a
    :class:`MinimizeResult`; when ``feasible`` and ``proven_optimal`` are both
    True the reported cost is the exact minimum.

    ``on_improvement`` (if given) is called with each strictly better cost as
    it is discovered — useful for logging long optimisations.

    ``parallel > 1`` races every solve over that many diversified
    configurations (``portfolio_members`` overrides them); with
    ``persistent=True`` the race runs on a resident incremental solver
    service that is started once per descent and falls back to the
    one-shot portfolio when unavailable.  ``descent_timeout_s`` bounds
    each *bound-probing* call; a probe that times out ends the descent
    gracefully at the best bound known so far (``proven_optimal=False``).
    ``parallel=1`` is exactly the serial incremental path.
    """
    if strategy not in ("linear", "binary"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if parallel > 1:
        return _minimize_sum_portfolio(
            cnf, objective_lits, strategy, on_improvement,
            parallel, portfolio_members, descent_timeout_s, persistent,
        )
    solver = cnf.to_solver(solver)
    if trace.enabled():
        solver.on_progress(
            lambda snap: trace.counter("solver.progress", **snap)
        )
    model_cost = _cost_counter(objective_lits)
    calls = 1
    with trace.span("descent.probe", call=calls, strategy=strategy):
        verdict = solver.solve()
    if verdict is not SolveResult.SAT:
        return MinimizeResult(feasible=False, solve_calls=calls,
                              strategy=strategy,
                              solver_stats=solver.stats.as_dict())

    best_model = solver.model()
    best_cost = model_cost(best_model)
    trace.event("descent.improved", cost=best_cost)
    if on_improvement:
        on_improvement(best_cost)
    if best_cost == 0 or not objective_lits:
        return MinimizeResult(
            feasible=True,
            cost=best_cost,
            model=best_model,
            proven_optimal=True,
            solve_calls=calls,
            strategy=strategy,
            solver_stats=solver.stats.as_dict(),
        )

    # Build the totalizer *into the same solver* so bounds are assumptions.
    marker = len(cnf.clauses)
    totalizer = Totalizer(cnf, objective_lits)
    for clause in cnf.clauses[marker:]:
        solver.add_clause(clause)

    if strategy == "linear":
        proven = False
        while best_cost > 0:
            calls += 1
            with trace.span("descent.probe", call=calls,
                            bound=best_cost - 1) as probe_span:
                verdict = solver.solve(
                    [totalizer.bound_literal(best_cost - 1)]
                )
                probe_span.add(verdict=verdict.name)
            if verdict is SolveResult.SAT:
                best_model = solver.model()
                best_cost = model_cost(best_model)
                trace.event("descent.improved", cost=best_cost)
                if on_improvement:
                    on_improvement(best_cost)
            elif verdict is SolveResult.UNSAT:
                proven = True
                break
            else:  # UNKNOWN under a conflict budget
                break
        if best_cost == 0:
            proven = True
    else:  # binary search on the bound
        low = 0  # costs < low are known infeasible... low-1 infeasible
        high = best_cost  # a model with this cost exists
        proven = True
        while low < high:
            mid = (low + high) // 2
            calls += 1
            with trace.span("descent.probe", call=calls,
                            bound=mid) as probe_span:
                verdict = solver.solve([totalizer.bound_literal(mid)])
                probe_span.add(verdict=verdict.name)
            if verdict is SolveResult.SAT:
                best_model = solver.model()
                high = model_cost(best_model)
                best_cost = high
                trace.event("descent.improved", cost=best_cost)
                if on_improvement:
                    on_improvement(best_cost)
            elif verdict is SolveResult.UNSAT:
                low = mid + 1
            else:
                proven = False
                break

    return MinimizeResult(
        feasible=True,
        cost=best_cost,
        model=best_model,
        proven_optimal=proven,
        solve_calls=calls,
        strategy=strategy,
        solver_stats=solver.stats.as_dict(),
    )


def _cost_counter(objective_lits: list[int]) -> Callable[[list[int]], int]:
    """Build the model→cost function for one descent.

    Precomputes the objective-literal set once (plus per-literal
    multiplicities for the weighted duplication path, where a literal
    occurs ``weight`` times), so each improvement costs one set
    intersection instead of rebuilding ``set(model)`` and re-scanning
    the objective.
    """
    objective_set = set(objective_lits)
    if len(objective_set) == len(objective_lits):
        return lambda model: len(objective_set.intersection(model))
    counts: dict[int, int] = {}
    for lit in objective_lits:
        counts[lit] = counts.get(lit, 0) + 1
    return lambda model: sum(
        counts[lit] for lit in objective_set.intersection(model)
    )


def _minimize_sum_portfolio(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str,
    on_improvement: Callable[[int], None] | None,
    parallel: int,
    members: list[PortfolioMember] | None,
    descent_timeout_s: float | None,
    persistent: bool,
) -> MinimizeResult:
    """Portfolio-routed descent: every solve is a race over diversified
    configurations; the deterministic portfolio keeps the result a pure
    function of the problem (see :mod:`repro.sat.portfolio`).

    With ``persistent`` the probes run on a resident
    :class:`~repro.sat.service.SolverService`; any :class:`ServiceError`
    (fork unavailable, every worker dead) downgrades the remaining
    probes to the one-shot portfolio and is recorded in the result's
    ``portfolio["service"]`` summary.
    """
    members = members or diversified_members(parallel)
    model_cost = _cost_counter(objective_lits)
    winners: dict[str, int] = {}
    wall = 0.0
    merged: dict[str, int | float] = {}
    service: SolverService | None = None
    service_info: dict = {}
    # Hoisted clause snapshot for the one-shot path: refreshed exactly
    # once (after the totalizer is built) instead of re-reading the
    # growing ``cnf.clauses`` list on every race call.
    clause_snapshot = list(cnf.clauses)

    if persistent:
        try:
            service = SolverService(
                cnf.num_vars, cnf.clauses, members=members,
                processes=parallel,
            ).start()
        except ServiceError as exc:
            service = None
            service_info["fallback"] = str(exc)
            trace.event("service.fallback", error=str(exc))

    def downgrade(exc: ServiceError) -> None:
        """Retire the service and continue one-shot from here on."""
        nonlocal service
        assert service is not None
        service_info.update(service.summary())
        service_info["fallback"] = str(exc)
        trace.event("service.fallback", error=str(exc))
        service.close()
        service = None

    def absorb(stats: dict) -> None:
        for key, value in stats.items():
            merged[key] = merged.get(key, 0) + value

    def race(assumptions=(), timeout_s=None, bound=None):
        nonlocal wall
        if service is not None:
            try:
                outcome = service.probe(assumptions, timeout_s=timeout_s)
            except ServiceError as exc:
                downgrade(exc)
            else:
                wall += outcome.wall_time_s
                if outcome.winner_name:
                    winners[outcome.winner_name] = (
                        winners.get(outcome.winner_name, 0) + 1
                    )
                absorb(outcome.stats)
                return outcome
        with trace.span("descent.race", bound=bound) as race_span:
            result = solve_portfolio(
                cnf.num_vars, clause_snapshot, assumptions=assumptions,
                members=members, processes=parallel, timeout_s=timeout_s,
            )
            race_span.add(verdict=result.verdict.name)
        if result.stats is not None:
            wall += result.stats.wall_time_s
            if result.stats.winner_name:
                winners[result.stats.winner_name] = (
                    winners.get(result.stats.winner_name, 0) + 1
                )
            absorb(result.stats.merged_counters())
        return result

    def summary(calls: int) -> dict:
        out = {
            "processes": parallel,
            "calls": calls,
            "winners": dict(winners),
            "wall_time_s": wall,
            "persistent": persistent,
        }
        info = dict(service_info)
        if service is not None:
            info.update(service.summary())
        if info:
            out["service"] = info
        return out

    try:
        calls = 1
        first = race()
        if first.verdict is not SolveResult.SAT:
            return MinimizeResult(
                feasible=False, solve_calls=calls, strategy=strategy,
                solver_stats=dict(merged), portfolio=summary(calls),
            )
        best_model = first.model or []
        best_cost = model_cost(best_model)
        trace.event("descent.improved", cost=best_cost)
        if on_improvement:
            on_improvement(best_cost)
        if best_cost == 0 or not objective_lits:
            return MinimizeResult(
                feasible=True, cost=best_cost, model=best_model,
                proven_optimal=True, solve_calls=calls, strategy=strategy,
                solver_stats=dict(merged), portfolio=summary(calls),
            )

        totalizer = Totalizer(cnf, objective_lits)
        # The service ships the totalizer layers as the next probe's
        # delta automatically (it holds ``cnf.clauses`` by reference);
        # the one-shot path re-hoists its snapshot here, once.
        clause_snapshot = list(cnf.clauses)

        if strategy == "linear":
            proven = False
            while best_cost > 0:
                calls += 1
                probe = race(
                    assumptions=[totalizer.bound_literal(best_cost - 1)],
                    timeout_s=descent_timeout_s,
                    bound=best_cost - 1,
                )
                if probe.verdict is SolveResult.SAT:
                    best_model = probe.model or []
                    best_cost = model_cost(best_model)
                    trace.event("descent.improved", cost=best_cost)
                    if on_improvement:
                        on_improvement(best_cost)
                elif probe.verdict is SolveResult.UNSAT:
                    proven = True
                    break
                else:  # timeout: keep the best-known bound
                    break
            if best_cost == 0:
                proven = True
        else:  # binary search on the bound
            low = 0
            high = best_cost
            proven = True
            while low < high:
                mid = (low + high) // 2
                calls += 1
                probe = race(
                    assumptions=[totalizer.bound_literal(mid)],
                    timeout_s=descent_timeout_s,
                    bound=mid,
                )
                if probe.verdict is SolveResult.SAT:
                    best_model = probe.model or []
                    high = model_cost(best_model)
                    best_cost = high
                    trace.event("descent.improved", cost=best_cost)
                    if on_improvement:
                        on_improvement(best_cost)
                elif probe.verdict is SolveResult.UNSAT:
                    low = mid + 1
                else:
                    proven = False
                    break

        return MinimizeResult(
            feasible=True,
            cost=best_cost,
            model=best_model,
            proven_optimal=proven,
            solve_calls=calls,
            strategy=strategy,
            solver_stats=dict(merged),
            portfolio=summary(calls),
        )
    finally:
        if service is not None:
            service.close()
