"""Model-improving minimisation: linear descent and binary search.

Both strategies build one incremental totalizer over the objective literals
and then tighten its bound with unit *assumptions* — the solver keeps all its
learned clauses across iterations, which is what makes the loop cheap.

With ``parallel > 1`` every solve of the descent is instead raced through
the process portfolio (:mod:`repro.sat.portfolio`): each bound probe ships
the current clause set (hard constraints + totalizer) to diversified worker
configurations and takes the first definitive answer.  Each probe is then a
from-scratch solve — incremental clause learning across probes is traded for
racing the bound proofs, which is the profitable trade on multi-core
hardware for the hard UNSAT "prove optimality" steps.
"""

from __future__ import annotations

from typing import Callable

from repro.logic.cnf import CNF
from repro.logic.totalizer import Totalizer
from repro.obs import trace
from repro.opt.result import MinimizeResult
from repro.sat.portfolio import (
    PortfolioMember,
    diversified_members,
    solve_portfolio,
)
from repro.sat.solver import Solver
from repro.sat.types import SolveResult


def minimize_sum(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str = "linear",
    solver: Solver | None = None,
    on_improvement: Callable[[int], None] | None = None,
    parallel: int = 1,
    portfolio_members: list[PortfolioMember] | None = None,
    descent_timeout_s: float | None = None,
) -> MinimizeResult:
    """Minimise the number of true literals among ``objective_lits``.

    The hard constraints are the clauses of ``cnf``.  Returns a
    :class:`MinimizeResult`; when ``feasible`` and ``proven_optimal`` are both
    True the reported cost is the exact minimum.

    ``on_improvement`` (if given) is called with each strictly better cost as
    it is discovered — useful for logging long optimisations.

    ``parallel > 1`` races every solve through a process portfolio of that
    many diversified configurations (``portfolio_members`` overrides them).
    ``descent_timeout_s`` bounds each *bound-probing* call; a probe that
    times out ends the descent gracefully at the best bound known so far
    (``proven_optimal=False``).  ``parallel=1`` is exactly the serial
    incremental path.
    """
    if strategy not in ("linear", "binary"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if parallel > 1:
        return _minimize_sum_portfolio(
            cnf, objective_lits, strategy, on_improvement,
            parallel, portfolio_members, descent_timeout_s,
        )
    solver = cnf.to_solver(solver)
    if trace.enabled():
        solver.on_progress(
            lambda snap: trace.counter("solver.progress", **snap)
        )
    calls = 1
    with trace.span("descent.probe", call=calls, strategy=strategy):
        verdict = solver.solve()
    if verdict is not SolveResult.SAT:
        return MinimizeResult(feasible=False, solve_calls=calls,
                              strategy=strategy,
                              solver_stats=solver.stats.as_dict())

    best_model = solver.model()
    best_cost = _cost_of(solver, objective_lits)
    trace.event("descent.improved", cost=best_cost)
    if on_improvement:
        on_improvement(best_cost)
    if best_cost == 0 or not objective_lits:
        return MinimizeResult(
            feasible=True,
            cost=best_cost,
            model=best_model,
            proven_optimal=True,
            solve_calls=calls,
            strategy=strategy,
            solver_stats=solver.stats.as_dict(),
        )

    # Build the totalizer *into the same solver* so bounds are assumptions.
    marker = len(cnf.clauses)
    totalizer = Totalizer(cnf, objective_lits)
    for clause in cnf.clauses[marker:]:
        solver.add_clause(clause)

    if strategy == "linear":
        proven = False
        while best_cost > 0:
            calls += 1
            with trace.span("descent.probe", call=calls,
                            bound=best_cost - 1) as probe_span:
                verdict = solver.solve(
                    [totalizer.bound_literal(best_cost - 1)]
                )
                probe_span.add(verdict=verdict.name)
            if verdict is SolveResult.SAT:
                best_model = solver.model()
                best_cost = _cost_of(solver, objective_lits)
                trace.event("descent.improved", cost=best_cost)
                if on_improvement:
                    on_improvement(best_cost)
            elif verdict is SolveResult.UNSAT:
                proven = True
                break
            else:  # UNKNOWN under a conflict budget
                break
        if best_cost == 0:
            proven = True
    else:  # binary search on the bound
        low = 0  # costs < low are known infeasible... low-1 infeasible
        high = best_cost  # a model with this cost exists
        proven = True
        while low < high:
            mid = (low + high) // 2
            calls += 1
            with trace.span("descent.probe", call=calls,
                            bound=mid) as probe_span:
                verdict = solver.solve([totalizer.bound_literal(mid)])
                probe_span.add(verdict=verdict.name)
            if verdict is SolveResult.SAT:
                best_model = solver.model()
                high = _cost_of(solver, objective_lits)
                best_cost = high
                trace.event("descent.improved", cost=best_cost)
                if on_improvement:
                    on_improvement(best_cost)
            elif verdict is SolveResult.UNSAT:
                low = mid + 1
            else:
                proven = False
                break

    return MinimizeResult(
        feasible=True,
        cost=best_cost,
        model=best_model,
        proven_optimal=proven,
        solve_calls=calls,
        strategy=strategy,
        solver_stats=solver.stats.as_dict(),
    )


def _cost_of(solver: Solver, objective_lits: list[int]) -> int:
    """Number of objective literals true in the solver's current model."""
    return sum(1 for lit in objective_lits if solver.model_value(lit))


def _model_cost(model: list[int], objective_lits: list[int]) -> int:
    """Number of objective literals true in a model given as literal list."""
    true_lits = set(model)
    return sum(1 for lit in objective_lits if lit in true_lits)


def _minimize_sum_portfolio(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str,
    on_improvement: Callable[[int], None] | None,
    parallel: int,
    members: list[PortfolioMember] | None,
    descent_timeout_s: float | None,
) -> MinimizeResult:
    """Portfolio-routed descent: every solve is a race over diversified
    configurations; the deterministic portfolio keeps the result a pure
    function of the problem (see :mod:`repro.sat.portfolio`)."""
    members = members or diversified_members(parallel)
    winners: dict[str, int] = {}
    wall = 0.0
    merged: dict[str, int | float] = {}

    def race(assumptions=(), timeout_s=None, bound=None):
        nonlocal wall
        with trace.span("descent.race", bound=bound) as race_span:
            result = solve_portfolio(
                cnf.num_vars, cnf.clauses, assumptions=assumptions,
                members=members, processes=parallel, timeout_s=timeout_s,
            )
            race_span.add(verdict=result.verdict.name)
        if result.stats is not None:
            wall += result.stats.wall_time_s
            if result.stats.winner_name:
                winners[result.stats.winner_name] = (
                    winners.get(result.stats.winner_name, 0) + 1
                )
            for key, value in result.stats.merged_counters().items():
                merged[key] = merged.get(key, 0) + value
        return result

    def summary(calls: int) -> dict:
        return {
            "processes": parallel,
            "calls": calls,
            "winners": dict(winners),
            "wall_time_s": wall,
        }

    calls = 1
    first = race()
    if first.verdict is not SolveResult.SAT:
        return MinimizeResult(
            feasible=False, solve_calls=calls, strategy=strategy,
            solver_stats=dict(merged), portfolio=summary(calls),
        )
    best_model = first.model or []
    best_cost = _model_cost(best_model, objective_lits)
    trace.event("descent.improved", cost=best_cost)
    if on_improvement:
        on_improvement(best_cost)
    if best_cost == 0 or not objective_lits:
        return MinimizeResult(
            feasible=True, cost=best_cost, model=best_model,
            proven_optimal=True, solve_calls=calls, strategy=strategy,
            solver_stats=dict(merged), portfolio=summary(calls),
        )

    totalizer = Totalizer(cnf, objective_lits)

    if strategy == "linear":
        proven = False
        while best_cost > 0:
            calls += 1
            probe = race(
                assumptions=[totalizer.bound_literal(best_cost - 1)],
                timeout_s=descent_timeout_s,
                bound=best_cost - 1,
            )
            if probe.verdict is SolveResult.SAT:
                best_model = probe.model or []
                best_cost = _model_cost(best_model, objective_lits)
                trace.event("descent.improved", cost=best_cost)
                if on_improvement:
                    on_improvement(best_cost)
            elif probe.verdict is SolveResult.UNSAT:
                proven = True
                break
            else:  # timeout: keep the best-known bound
                break
        if best_cost == 0:
            proven = True
    else:  # binary search on the bound
        low = 0
        high = best_cost
        proven = True
        while low < high:
            mid = (low + high) // 2
            calls += 1
            probe = race(
                assumptions=[totalizer.bound_literal(mid)],
                timeout_s=descent_timeout_s,
                bound=mid,
            )
            if probe.verdict is SolveResult.SAT:
                best_model = probe.model or []
                high = _model_cost(best_model, objective_lits)
                best_cost = high
                trace.event("descent.improved", cost=best_cost)
                if on_improvement:
                    on_improvement(best_cost)
            elif probe.verdict is SolveResult.UNSAT:
                low = mid + 1
            else:
                proven = False
                break

    return MinimizeResult(
        feasible=True,
        cost=best_cost,
        model=best_model,
        proven_optimal=proven,
        solve_calls=calls,
        strategy=strategy,
        solver_stats=dict(merged),
        portfolio=summary(calls),
    )
