"""Model-improving minimisation: linear descent and binary search.

Both strategies build one incremental totalizer over the objective literals
and then tighten its bound with unit *assumptions* — the solver keeps all its
learned clauses across iterations, which is what makes the loop cheap.
"""

from __future__ import annotations

from typing import Callable

from repro.logic.cnf import CNF
from repro.logic.totalizer import Totalizer
from repro.opt.result import MinimizeResult
from repro.sat.solver import Solver
from repro.sat.types import SolveResult


def minimize_sum(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str = "linear",
    solver: Solver | None = None,
    on_improvement: Callable[[int], None] | None = None,
) -> MinimizeResult:
    """Minimise the number of true literals among ``objective_lits``.

    The hard constraints are the clauses of ``cnf``.  Returns a
    :class:`MinimizeResult`; when ``feasible`` and ``proven_optimal`` are both
    True the reported cost is the exact minimum.

    ``on_improvement`` (if given) is called with each strictly better cost as
    it is discovered — useful for logging long optimisations.
    """
    if strategy not in ("linear", "binary"):
        raise ValueError(f"unknown strategy {strategy!r}")
    solver = cnf.to_solver(solver)
    calls = 1
    verdict = solver.solve()
    if verdict is not SolveResult.SAT:
        return MinimizeResult(feasible=False, solve_calls=calls, strategy=strategy)

    best_model = solver.model()
    best_cost = _cost_of(solver, objective_lits)
    if on_improvement:
        on_improvement(best_cost)
    if best_cost == 0 or not objective_lits:
        return MinimizeResult(
            feasible=True,
            cost=best_cost,
            model=best_model,
            proven_optimal=True,
            solve_calls=calls,
            strategy=strategy,
        )

    # Build the totalizer *into the same solver* so bounds are assumptions.
    marker = len(cnf.clauses)
    totalizer = Totalizer(cnf, objective_lits)
    for clause in cnf.clauses[marker:]:
        solver.add_clause(clause)

    if strategy == "linear":
        proven = False
        while best_cost > 0:
            calls += 1
            verdict = solver.solve([totalizer.bound_literal(best_cost - 1)])
            if verdict is SolveResult.SAT:
                best_model = solver.model()
                best_cost = _cost_of(solver, objective_lits)
                if on_improvement:
                    on_improvement(best_cost)
            elif verdict is SolveResult.UNSAT:
                proven = True
                break
            else:  # UNKNOWN under a conflict budget
                break
        if best_cost == 0:
            proven = True
    else:  # binary search on the bound
        low = 0  # costs < low are known infeasible... low-1 infeasible
        high = best_cost  # a model with this cost exists
        proven = True
        while low < high:
            mid = (low + high) // 2
            calls += 1
            verdict = solver.solve([totalizer.bound_literal(mid)])
            if verdict is SolveResult.SAT:
                best_model = solver.model()
                high = _cost_of(solver, objective_lits)
                best_cost = high
                if on_improvement:
                    on_improvement(best_cost)
            elif verdict is SolveResult.UNSAT:
                low = mid + 1
            else:
                proven = False
                break

    return MinimizeResult(
        feasible=True,
        cost=best_cost,
        model=best_model,
        proven_optimal=proven,
        solve_calls=calls,
        strategy=strategy,
    )


def _cost_of(solver: Solver, objective_lits: list[int]) -> int:
    """Number of objective literals true in the solver's current model."""
    return sum(1 for lit in objective_lits if solver.model_value(lit))
