"""Model-improving minimisation: linear descent and binary search.

Both strategies build one incremental totalizer over the objective literals
and then tighten its bound with unit *assumptions* — the solver keeps all its
learned clauses across iterations, which is what makes the loop cheap.

With ``parallel > 1`` every solve of the descent is raced over diversified
solver configurations.  Two parallel engines exist:

* ``persistent=True`` (the default on the task layer) keeps a resident
  portfolio of *incremental* workers for the whole descent
  (:class:`repro.sat.service.SolverService`): the CNF is shipped once at
  session start, each probe sends only the assumptions plus the clause
  delta, and workers keep learned clauses, activities, and phases across
  probes — racing *and* incrementality.  Low-LBD clauses harvested from
  each probe are shared between members for a warm start.
* ``persistent=False`` forks fresh workers per probe via
  :func:`repro.sat.portfolio.solve_portfolio` — every probe is a
  from-scratch solve.  This path also serves as the graceful fallback
  whenever the service cannot start (no ``fork``) or loses all its
  workers mid-descent.

The descent is *anytime*: ``wall_deadline_s`` bounds the whole descent
(each probe gets the remaining budget, shipped all the way into the
solvers' cooperative wall-deadline checks) and an expired budget ends it
at the best model and bounds proven so far (``status="timeout"``), never
with an exception.  With ``checkpoint_path`` every proven fact is
appended to a JSONL checkpoint (:mod:`repro.opt.checkpoint`), and
``resume=True`` restarts a killed descent from its last proven bound.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.logic.cnf import CNF, clauses_satisfied
from repro.logic.totalizer import Totalizer
from repro.obs import events as obs_events
from repro.obs import trace
from repro.opt.checkpoint import (
    CheckpointState,
    DescentCheckpoint,
    descent_fingerprint,
    load_checkpoint,
    warm_compatible,
)
from repro.opt.result import (
    STATUS_FEASIBLE,
    STATUS_OPTIMAL,
    STATUS_RESUMED,
    STATUS_TIMEOUT,
    DescentResult,
)
from repro.sat.portfolio import (
    PortfolioMember,
    diversified_members,
    solve_portfolio,
)
from repro.sat.service import ProbeOutcome, ServiceError, SolverService
from repro.sat.solver import Solver
from repro.sat.types import SolveResult, SolverConfig


class _DescentBudget:
    """Wall-clock budget of one descent; probes get the remainder."""

    def __init__(self, wall_deadline_s: float | None):
        self.total = wall_deadline_s
        self._deadline = (
            time.perf_counter() + wall_deadline_s
            if wall_deadline_s is not None else None
        )

    def remaining(self) -> float | None:
        """Seconds left, or None when the descent is unbounded."""
        if self._deadline is None:
            return None
        return self._deadline - time.perf_counter()

    def exhausted(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def probe_budget(self, per_probe_s: float | None) -> float | None:
        """min(per-probe timeout, remaining wall budget); None = unbounded."""
        remaining = self.remaining()
        if remaining is None:
            return per_probe_s
        remaining = max(remaining, 0.0)
        if per_probe_s is None:
            return remaining
        return min(per_probe_s, remaining)


def _descent_status(
    proven: bool, timed_out: bool, resumed: bool, improved: bool
) -> str:
    if proven:
        return STATUS_OPTIMAL
    if timed_out:
        return STATUS_TIMEOUT
    if resumed and not improved:
        return STATUS_RESUMED
    return STATUS_FEASIBLE


def _note_improved(cost: int) -> None:
    """Record a bound improvement on the trace and the event stream."""
    trace.event("descent.improved", cost=cost)
    obs_events.emit("descent.improved", cost=cost)


def _note_timeout() -> None:
    """Record a descent that ended on its wall budget."""
    obs_events.emit("deadline.hit", scope="descent")


def _checkpoint_summary(
    ckpt: DescentCheckpoint | None, state: CheckpointState | None
) -> dict | None:
    if ckpt is None:
        return None
    out = ckpt.summary()
    if state is not None:
        out["restored_cost"] = state.best_cost
        out["restored_lower"] = state.lower_bound
    return out


def _replayed_result(
    state: CheckpointState, strategy: str, checkpoint_path: str
) -> DescentResult:
    """A finished checkpoint resumes to its result without any probe."""
    feasible = state.best_cost is not None
    trace.event("checkpoint.replayed", cost=state.best_cost)
    return DescentResult(
        feasible=feasible,
        cost=state.best_cost or 0,
        model=list(state.best_model),
        proven_optimal=feasible,
        solve_calls=0,
        strategy=strategy,
        status=STATUS_OPTIMAL,
        lower_bound=state.lower_bound,
        resumed=True,
        checkpoint={
            "path": checkpoint_path, "writes": 0, "write_failures": 0,
            "restored_cost": state.best_cost,
            "restored_lower": state.lower_bound,
        },
    )


def minimize_sum(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str = "linear",
    solver: Solver | None = None,
    on_improvement: Callable[[int], None] | None = None,
    parallel: int = 1,
    portfolio_members: list[PortfolioMember] | None = None,
    descent_timeout_s: float | None = None,
    persistent: bool = False,
    wall_deadline_s: float | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    refine: Callable[[list[int]], int] | None = None,
    profile: bool = False,
    warm_model: list[int] | None = None,
    warm_fingerprint: dict | None = None,
) -> DescentResult:
    """Minimise the number of true literals among ``objective_lits``.

    The hard constraints are the clauses of ``cnf``.  Returns a
    :class:`DescentResult`; when ``feasible`` and ``proven_optimal`` are both
    True the reported cost is the exact minimum.

    ``on_improvement`` (if given) is called with each strictly better cost as
    it is discovered — useful for logging long optimisations.

    ``parallel > 1`` races every solve over that many diversified
    configurations (``portfolio_members`` overrides them); with
    ``persistent=True`` the race runs on a resident incremental solver
    service that is started once per descent and falls back to the
    one-shot portfolio when unavailable.  ``descent_timeout_s`` bounds
    each *bound-probing* call; ``wall_deadline_s`` bounds the whole
    descent — on expiry the result carries the best model and bounds
    found so far with ``status="timeout"``.  ``parallel=1`` is exactly
    the serial incremental path.

    ``checkpoint_path`` appends every proven fact (improving models,
    lower bounds, learned unit facts) to a JSONL checkpoint;
    ``resume=True`` restores the latest state from that file first —
    raising :class:`repro.opt.checkpoint.CheckpointError` when the file
    belongs to a different formula — and continues the descent from the
    restored bounds (``solve_calls`` counts only the new run's probes).

    ``refine`` hooks a lazy-encoding check into every SAT answer
    (typically :meth:`repro.encoding.lazy.LazyRefiner.refine`): it
    receives the model and returns the number of clauses it appended to
    ``cnf`` (0 = the model is clean).  The descent re-solves after every
    non-zero refinement — incrementally on the serial path, as an
    O(delta) service probe or a re-hoisted one-shot race on the parallel
    paths — so only *clean* models are ever accepted as improvements,
    and relaxation UNSATs remain sound lower bounds.

    ``profile`` turns on the hot-path phase profiler
    (:mod:`repro.obs.profile`) in every solver the descent creates —
    ignored when an explicit ``solver`` or ``portfolio_members`` already
    fixes the configuration.

    ``warm_model`` seeds the descent with a model cached from a
    delta-close instance (the solve gateway's warm-start path,
    :mod:`repro.gateway`): when it still satisfies this formula —
    re-checked literally, clause by clause, plus one ``refine`` round
    for lazily deferred families — the descent skips its initial
    unconstrained probe and descends straight from the replayed cost.
    A model that no longer satisfies is silently discarded (cold
    start).  ``warm_fingerprint`` optionally carries the cached
    descent's :func:`~repro.opt.checkpoint.descent_fingerprint`; a
    mismatch against this formula's fingerprint rejects the model
    before the clause check (variables may have been renumbered).
    Ignored while resuming from a checkpoint.
    """
    if strategy not in ("linear", "binary"):
        raise ValueError(f"unknown strategy {strategy!r}")

    fingerprint = descent_fingerprint(
        cnf.num_vars, cnf.num_clauses, objective_lits, strategy
    )
    state: CheckpointState | None = None
    ckpt: DescentCheckpoint | None = None
    if checkpoint_path:
        if resume:
            state = load_checkpoint(checkpoint_path)
            if state is not None:
                state.check(fingerprint)
                trace.event("checkpoint.resumed", cost=state.best_cost,
                            lower=state.lower_bound,
                            units=len(state.units))
                if state.done_status == STATUS_OPTIMAL:
                    return _replayed_result(state, strategy,
                                            checkpoint_path)
        ckpt = DescentCheckpoint(checkpoint_path)
        ckpt.open(fingerprint, resumed=state is not None)

    warm: CheckpointState | None = None
    if warm_model is not None and state is None:
        warm = _validated_warm_state(
            cnf, objective_lits, warm_model, warm_fingerprint,
            fingerprint, refine,
        )

    budget = _DescentBudget(wall_deadline_s)
    if profile:
        if parallel > 1 and portfolio_members is None:
            portfolio_members = diversified_members(
                parallel, base=SolverConfig(profile=True)
            )
        elif parallel <= 1 and solver is None:
            solver = Solver(SolverConfig(profile=True))
    try:
        if parallel > 1:
            result = _minimize_sum_portfolio(
                cnf, objective_lits, strategy, on_improvement,
                parallel, portfolio_members, descent_timeout_s, persistent,
                budget, ckpt, state, refine, warm,
            )
        else:
            result = _minimize_sum_serial(
                cnf, objective_lits, strategy, solver, on_improvement,
                descent_timeout_s, budget, ckpt, state, refine, warm,
            )
        result.fingerprint = fingerprint
        return result
    finally:
        if ckpt is not None:
            ckpt.close()


def _validated_warm_state(
    cnf: CNF,
    objective_lits: list[int],
    warm_model: list[int],
    warm_fingerprint: dict | None,
    fingerprint: dict,
    refine: Callable[[list[int]], int] | None,
) -> CheckpointState | None:
    """Re-certify a cached model against *this* formula, or reject it.

    The ladder: fingerprint compatibility (cheap, catches renumbered
    variables), then one lazy-refinement round (deferred families are
    not in ``cnf.clauses`` yet — clauses a dirty model provokes stay in
    the CNF, they are valid constraints either way), then the literal
    clause-by-clause check.  Only a model that passes all three seeds
    the descent.
    """
    if not warm_compatible(warm_fingerprint, fingerprint):
        trace.event("descent.warm_rejected", reason="fingerprint mismatch")
        return None
    if refine is not None and refine(warm_model) > 0:
        trace.event("descent.warm_rejected", reason="deferred violations")
        return None
    true_vars = {lit for lit in warm_model if lit > 0}
    if not clauses_satisfied(cnf.clauses, true_vars):
        trace.event("descent.warm_rejected", reason="clause check failed")
        return None
    cost = _cost_counter(objective_lits)(warm_model)
    trace.event("descent.warm_start", cost=cost)
    obs_events.emit("descent.warm_start", cost=cost)
    return CheckpointState.warm(cost, warm_model, warm_fingerprint)


def _minimize_sum_serial(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str,
    solver: Solver | None,
    on_improvement: Callable[[int], None] | None,
    descent_timeout_s: float | None,
    budget: _DescentBudget,
    ckpt: DescentCheckpoint | None,
    state: CheckpointState | None,
    refine: Callable[[list[int]], int] | None = None,
    warm: CheckpointState | None = None,
) -> DescentResult:
    """The serial incremental descent (one solver, bounds as assumptions)."""
    solver = cnf.to_solver(solver)
    progress = obs_events.progress_callback()
    if progress is not None:
        solver.on_progress(progress)
    if obs_events.enabled():
        solver.on_event(obs_events.emit)
    model_cost = _cost_counter(objective_lits)
    configured_deadline = solver.config.wall_deadline_s
    unit_keys: set[tuple[int, ...]] = set()
    shipped = len(cnf.clauses)

    def ship_new() -> None:
        """Feed clauses appended to the CNF (totalizer layers, lazy
        refinements) into the incremental solver."""
        nonlocal shipped
        for clause in cnf.clauses[shipped:]:
            solver.add_clause(clause)
        shipped = len(cnf.clauses)

    def arm(per_probe_s: float | None = None) -> bool:
        """Point the solver deadline at the remaining budget.

        Returns False when the descent budget is already spent (the
        caller then stops without issuing the probe).
        """
        if budget.exhausted():
            return False
        effective = budget.probe_budget(per_probe_s)
        if effective is None:
            solver.config.wall_deadline_s = configured_deadline
        elif configured_deadline is None:
            solver.config.wall_deadline_s = effective
        else:
            solver.config.wall_deadline_s = min(configured_deadline,
                                                effective)
        return True

    def harvest_units() -> None:
        """Persist newly proven level-0 facts (assumption-free units)."""
        if ckpt is None:
            return
        units = solver.export_learned(max_lbd=0, max_len=1, limit=256,
                                      skip_keys=unit_keys)
        ckpt.units([u[0] for u in units if len(u) == 1])

    def probe_timed_out(verdict: SolveResult) -> bool:
        return (
            verdict is SolveResult.UNKNOWN
            and (solver.last_stats.deadline_hits > 0 or budget.exhausted())
        )

    def checked_solve(
        assumptions: list[int] | tuple[int, ...] = (),
        per_probe_s: float | None = None,
    ) -> SolveResult:
        """One probe plus the lazy solve→check→refine loop.

        SAT is only returned for models that satisfy every deferred
        constraint; an exhausted budget mid-refinement yields UNKNOWN —
        a dirty model is never reported as the answer.
        """
        nonlocal calls
        verdict = solver.solve(list(assumptions))
        while (
            verdict is SolveResult.SAT
            and refine is not None
            and refine(solver.model()) > 0
        ):
            ship_new()
            if not arm(per_probe_s):
                return SolveResult.UNKNOWN
            calls += 1
            with trace.span("descent.probe", call=calls, refined=True):
                verdict = solver.solve(list(assumptions))
        return verdict

    calls = 0
    resumed = state is not None
    start_state = state if state is not None else warm
    improved = False
    timed_out = False
    lower = state.lower_bound if state else 0

    def finish(feasible, cost, model, proven):
        if feasible:
            status = _descent_status(proven, timed_out, resumed, improved)
        else:
            # An UNSAT first solve is a *proven* conclusion; only a
            # timed-out one leaves feasibility genuinely open.
            status = STATUS_TIMEOUT if timed_out else STATUS_OPTIMAL
        if status == STATUS_TIMEOUT:
            _note_timeout()
        if ckpt is not None:
            ckpt.done(status, cost if feasible else None)
        return DescentResult(
            feasible=feasible,
            cost=cost,
            model=model or [],
            proven_optimal=proven,
            solve_calls=calls,
            strategy=strategy,
            solver_stats=solver.stats.as_dict(),
            status=status,
            lower_bound=lower,
            resumed=resumed,
            checkpoint=_checkpoint_summary(ckpt, state),
            warm_started=warm is not None,
        )

    try:
        if start_state is not None and start_state.best_cost is not None:
            best_model = list(start_state.best_model)
            best_cost = start_state.best_cost
            trace.event("descent.restored", cost=best_cost, lower=lower)
            if on_improvement:
                on_improvement(best_cost)
        else:
            calls += 1
            if not arm():
                timed_out = True
                return finish(False, 0, [], False)
            with trace.span("descent.probe", call=calls,
                            strategy=strategy):
                verdict = checked_solve()
            if verdict is not SolveResult.SAT:
                timed_out = probe_timed_out(verdict)
                return finish(False, 0, [], False)
            best_model = solver.model()
            best_cost = model_cost(best_model)
            _note_improved(best_cost)
            improved = True
            # Checkpoint before notifying: a callback that dies (or kills
            # the process) never loses the improvement it was told about.
            if ckpt is not None:
                ckpt.improved(best_cost, best_model, calls)
            if on_improvement:
                on_improvement(best_cost)
        if best_cost == 0 or not objective_lits:
            return finish(True, best_cost, best_model, True)

        # Build the totalizer *into the same solver* so bounds are
        # assumptions (the checkpoint fingerprint was taken before this,
        # so resumed runs rebuild byte-identical totalizer literals).
        totalizer = Totalizer(cnf, objective_lits)
        ship_new()
        if state is not None and state.units:
            imported = solver.import_clauses(
                [[lit] for lit in state.units]
            )
            trace.event("checkpoint.units_imported", count=imported)

        if strategy == "linear":
            proven = False
            while best_cost > lower:
                if not arm(descent_timeout_s):
                    timed_out = True
                    break
                calls += 1
                with trace.span("descent.probe", call=calls,
                                bound=best_cost - 1) as probe_span:
                    verdict = checked_solve(
                        [totalizer.bound_literal(best_cost - 1)],
                        descent_timeout_s,
                    )
                    probe_span.add(verdict=verdict.name)
                if verdict is SolveResult.SAT:
                    best_model = solver.model()
                    best_cost = model_cost(best_model)
                    _note_improved(best_cost)
                    improved = True
                    if ckpt is not None:
                        ckpt.improved(best_cost, best_model, calls)
                        harvest_units()
                    if on_improvement:
                        on_improvement(best_cost)
                elif verdict is SolveResult.UNSAT:
                    proven = True
                    lower = best_cost
                    if ckpt is not None:
                        ckpt.lower(lower, calls)
                    break
                else:  # UNKNOWN under a conflict or wall budget
                    timed_out = probe_timed_out(verdict)
                    break
            if best_cost <= lower:
                proven = True
                lower = best_cost
        else:  # binary search on the bound
            low = lower
            high = best_cost
            proven = True
            while low < high:
                if not arm(descent_timeout_s):
                    timed_out = True
                    proven = False
                    break
                mid = (low + high) // 2
                calls += 1
                with trace.span("descent.probe", call=calls,
                                bound=mid) as probe_span:
                    verdict = checked_solve(
                        [totalizer.bound_literal(mid)], descent_timeout_s
                    )
                    probe_span.add(verdict=verdict.name)
                if verdict is SolveResult.SAT:
                    best_model = solver.model()
                    high = model_cost(best_model)
                    best_cost = high
                    _note_improved(best_cost)
                    improved = True
                    if ckpt is not None:
                        ckpt.improved(best_cost, best_model, calls)
                        harvest_units()
                    if on_improvement:
                        on_improvement(best_cost)
                elif verdict is SolveResult.UNSAT:
                    low = mid + 1
                    if ckpt is not None:
                        ckpt.lower(low, calls)
                else:
                    timed_out = probe_timed_out(verdict)
                    proven = False
                    break
            lower = max(lower, low)
            if proven:
                lower = best_cost

        return finish(True, best_cost, best_model, proven)
    finally:
        solver.config.wall_deadline_s = configured_deadline


def _cost_counter(objective_lits: list[int]) -> Callable[[list[int]], int]:
    """Build the model→cost function for one descent.

    Precomputes the objective-literal set once (plus per-literal
    multiplicities for the weighted duplication path, where a literal
    occurs ``weight`` times), so each improvement costs one set
    intersection instead of rebuilding ``set(model)`` and re-scanning
    the objective.
    """
    objective_set = set(objective_lits)
    if len(objective_set) == len(objective_lits):
        return lambda model: len(objective_set.intersection(model))
    counts: dict[int, int] = {}
    for lit in objective_lits:
        counts[lit] = counts.get(lit, 0) + 1
    return lambda model: sum(
        counts[lit] for lit in objective_set.intersection(model)
    )


def _minimize_sum_portfolio(
    cnf: CNF,
    objective_lits: list[int],
    strategy: str,
    on_improvement: Callable[[int], None] | None,
    parallel: int,
    members: list[PortfolioMember] | None,
    descent_timeout_s: float | None,
    persistent: bool,
    budget: _DescentBudget,
    ckpt: DescentCheckpoint | None,
    state: CheckpointState | None,
    refine: Callable[[list[int]], int] | None = None,
    warm: CheckpointState | None = None,
) -> DescentResult:
    """Portfolio-routed descent: every solve is a race over diversified
    configurations; the deterministic portfolio keeps the result a pure
    function of the problem (see :mod:`repro.sat.portfolio`).

    With ``persistent`` the probes run on a resident
    :class:`~repro.sat.service.SolverService`; any :class:`ServiceError`
    (fork unavailable, every worker dead) downgrades the remaining
    probes to the one-shot portfolio and is recorded in the result's
    ``portfolio["service"]`` summary.
    """
    members = members or diversified_members(parallel)
    model_cost = _cost_counter(objective_lits)
    winners: dict[str, int] = {}
    wall = 0.0
    merged: dict[str, int | float] = {}
    service: SolverService | None = None
    service_info: dict = {}
    # Hoisted clause snapshot for the one-shot path: refreshed only when
    # the CNF has grown (totalizer layers, lazy refinement clauses)
    # instead of re-copying the list on every race call.
    clause_snapshot = list(cnf.clauses)

    if persistent:
        try:
            service = SolverService(
                cnf.num_vars, cnf.clauses, members=members,
                processes=parallel,
            ).start()
        except ServiceError as exc:
            service = None
            service_info["fallback"] = str(exc)
            trace.event("service.fallback", error=str(exc))

    def downgrade(exc: ServiceError) -> None:
        """Retire the service and continue one-shot from here on."""
        nonlocal service
        assert service is not None
        service_info.update(service.summary())
        service_info["fallback"] = str(exc)
        trace.event("service.fallback", error=str(exc))
        service.close()
        service = None

    def absorb(stats: dict) -> None:
        for key, value in stats.items():
            merged[key] = merged.get(key, 0) + value

    def race(assumptions=(), timeout_s=None, bound=None):
        nonlocal wall, clause_snapshot
        if service is not None:
            try:
                outcome = service.probe(assumptions, timeout_s=timeout_s)
            except ServiceError as exc:
                downgrade(exc)
            else:
                wall += outcome.wall_time_s
                if outcome.winner_name:
                    winners[outcome.winner_name] = (
                        winners.get(outcome.winner_name, 0) + 1
                    )
                absorb(outcome.stats)
                return outcome
        if len(clause_snapshot) != len(cnf.clauses):
            clause_snapshot = list(cnf.clauses)
        with trace.span("descent.race", bound=bound) as race_span:
            result = solve_portfolio(
                cnf.num_vars, clause_snapshot, assumptions=assumptions,
                members=members, processes=parallel, timeout_s=timeout_s,
            )
            race_span.add(verdict=result.verdict.name)
        if result.stats is not None:
            wall += result.stats.wall_time_s
            if result.stats.winner_name:
                winners[result.stats.winner_name] = (
                    winners.get(result.stats.winner_name, 0) + 1
                )
            absorb(result.stats.merged_counters())
        return result

    def summary(calls: int) -> dict:
        out = {
            "processes": parallel,
            "calls": calls,
            "winners": dict(winners),
            "wall_time_s": wall,
            "persistent": persistent,
        }
        info = dict(service_info)
        if service is not None:
            info.update(service.summary())
        if info:
            out["service"] = info
        return out

    calls = 0
    resumed = state is not None
    start_state = state if state is not None else warm
    improved = False
    timed_out = False
    lower = state.lower_bound if state else 0

    def finish(feasible, cost, model, proven):
        if feasible:
            status = _descent_status(proven, timed_out, resumed, improved)
        else:
            status = STATUS_TIMEOUT if timed_out else STATUS_OPTIMAL
        if status == STATUS_TIMEOUT:
            _note_timeout()
        if ckpt is not None:
            ckpt.done(status, cost if feasible else None)
        return DescentResult(
            feasible=feasible,
            cost=cost,
            model=model or [],
            proven_optimal=proven,
            solve_calls=calls,
            strategy=strategy,
            solver_stats=dict(merged),
            portfolio=summary(calls),
            status=status,
            lower_bound=lower,
            resumed=resumed,
            checkpoint=_checkpoint_summary(ckpt, state),
            warm_started=warm is not None,
        )

    def probe_timed_out(outcome, had_timeout: bool) -> bool:
        return (
            getattr(outcome, "timed_out", False)
            or had_timeout
            or budget.exhausted()
        )

    def checked_race(assumptions=(), per_probe_s=None, bound=None):
        """One race plus the lazy solve→check→refine loop.

        SAT outcomes are re-raced until the model is clean (the service
        ships each refinement as the next probe's delta; the one-shot
        path re-hoists its snapshot); an exhausted budget mid-refinement
        yields a timed-out UNKNOWN, never a dirty model.
        """
        nonlocal calls
        outcome = race(assumptions, budget.probe_budget(per_probe_s),
                       bound)
        while (
            outcome.verdict is SolveResult.SAT
            and refine is not None
            and refine(outcome.model or []) > 0
        ):
            if budget.exhausted():
                return ProbeOutcome(
                    verdict=SolveResult.UNKNOWN, timed_out=True
                )
            calls += 1
            outcome = race(assumptions, budget.probe_budget(per_probe_s),
                           bound)
        return outcome

    try:
        if start_state is not None and start_state.best_cost is not None:
            best_model = list(start_state.best_model)
            best_cost = start_state.best_cost
            trace.event("descent.restored", cost=best_cost, lower=lower)
            if on_improvement:
                on_improvement(best_cost)
        else:
            calls += 1
            if budget.exhausted():
                timed_out = True
                return finish(False, 0, [], False)
            first_budget = budget.probe_budget(None)
            first = checked_race()
            if first.verdict is not SolveResult.SAT:
                if first.verdict is SolveResult.UNKNOWN:
                    timed_out = probe_timed_out(
                        first, first_budget is not None
                    )
                return finish(False, 0, [], False)
            best_model = first.model or []
            best_cost = model_cost(best_model)
            _note_improved(best_cost)
            improved = True
            if ckpt is not None:
                ckpt.improved(best_cost, best_model, calls)
            if on_improvement:
                on_improvement(best_cost)
        if best_cost == 0 or not objective_lits:
            return finish(True, best_cost, best_model, True)

        totalizer = Totalizer(cnf, objective_lits)
        if state is not None and state.units:
            # Assumption-free consequences from the killed run: adding
            # them to the CNF warm-starts every member (the service
            # ships them as part of the next probe's delta).
            for lit in state.units:
                cnf.add([lit])
            trace.event("checkpoint.units_imported",
                        count=len(state.units))
        # The service ships the totalizer layers as the next probe's
        # delta automatically (it holds ``cnf.clauses`` by reference);
        # the one-shot race re-hoists its snapshot when it sees the CNF
        # has grown.

        if strategy == "linear":
            proven = False
            while best_cost > lower:
                if budget.exhausted():
                    timed_out = True
                    break
                calls += 1
                probe_budget = budget.probe_budget(descent_timeout_s)
                probe = checked_race(
                    assumptions=[totalizer.bound_literal(best_cost - 1)],
                    per_probe_s=descent_timeout_s,
                    bound=best_cost - 1,
                )
                if probe.verdict is SolveResult.SAT:
                    best_model = probe.model or []
                    best_cost = model_cost(best_model)
                    _note_improved(best_cost)
                    improved = True
                    if ckpt is not None:
                        ckpt.improved(best_cost, best_model, calls)
                    if on_improvement:
                        on_improvement(best_cost)
                elif probe.verdict is SolveResult.UNSAT:
                    proven = True
                    lower = best_cost
                    if ckpt is not None:
                        ckpt.lower(lower, calls)
                    break
                else:  # timeout: keep the best-known bound
                    timed_out = probe_timed_out(
                        probe, probe_budget is not None
                    )
                    break
            if best_cost <= lower:
                proven = True
                lower = best_cost
        else:  # binary search on the bound
            low = lower
            high = best_cost
            proven = True
            while low < high:
                if budget.exhausted():
                    timed_out = True
                    proven = False
                    break
                mid = (low + high) // 2
                calls += 1
                probe_budget = budget.probe_budget(descent_timeout_s)
                probe = checked_race(
                    assumptions=[totalizer.bound_literal(mid)],
                    per_probe_s=descent_timeout_s,
                    bound=mid,
                )
                if probe.verdict is SolveResult.SAT:
                    best_model = probe.model or []
                    high = model_cost(best_model)
                    best_cost = high
                    _note_improved(best_cost)
                    improved = True
                    if ckpt is not None:
                        ckpt.improved(best_cost, best_model, calls)
                    if on_improvement:
                        on_improvement(best_cost)
                elif probe.verdict is SolveResult.UNSAT:
                    low = mid + 1
                    if ckpt is not None:
                        ckpt.lower(low, calls)
                else:
                    timed_out = probe_timed_out(
                        probe, probe_budget is not None
                    )
                    proven = False
                    break
            lower = max(lower, low)
            if proven:
                lower = best_cost

        return finish(True, best_cost, best_model, proven)
    finally:
        if service is not None:
            service.close()
