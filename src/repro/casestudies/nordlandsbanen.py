"""Nordlandsbanen: the Norwegian line from Trondheim to Bodø.

A real-life-inspired reconstruction of the paper's largest case study: 58
stations over 822 km of single track.  Twelve stations (every fifth) are
*crossing stations* with a passing loop — on the real Nordlandsbanen, long
single-track sections between crossing loops are exactly where ETCS Level 3
promises the biggest capacity gains, because a following train today has to
wait for the leader to clear a block section that can be tens of kilometres
long.

Model (west to east)::

    [Trondheim] =gap= [halt] =gap= [loop station] =gap= ... [Bodø] - stub

* station tracks are 5 km (one segment at ``r_s = 5 km``),
* gaps between stations cycle 10/9/9 km (two segments each), so the 58
  station tracks plus 57 gaps total the real 822 km,
* crossing stations have a parallel 5 km loop track between two switches,
* TTD sections: one per loop track, one per loop through-track, and the
  mainline runs between crossing stations split roughly in half — ~50
  sections in total (paper: 51).

The schedule is a morning triple on the southern section: two expresses
Trondheim <-> Steinkjer that cross at a loop, and a follower out of
Trondheim whose deadline cannot survive full-TTD headways over the long
sections — UNSAT on pure TTDs, repaired by VSS borders.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy, PaperRow
from repro.network.builder import NetworkBuilder
from repro.network.topology import RailwayNetwork
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train

#: The 58 stations, Trondheim to Bodø (a representative selection of the
#: real line's stations and halts, in geographic order).
STATIONS: tuple[str, ...] = (
    "Trondheim", "Vikhammer", "Hommelvik", "Hell", "Stjørdal", "Skatval",
    "Langstein", "Åsen", "Ronglan", "Skogn", "Levanger", "Rinnan", "Verdal",
    "Røra", "Sparbu", "Mære", "Vist", "Steinkjer", "Sunnan", "Starrmyra",
    "Snåsa", "Jørstad", "Agle", "Lurudal", "Formofoss", "Grong", "Harran",
    "Lassemoen", "Namsskogan", "Bjørnstad", "Brekkvasselv", "Majavatn",
    "Sefrivatn", "Svenningdal", "Trofors", "Laksfors", "Eiterstraum",
    "Mosjøen", "Drevvatn", "Elsfjord", "Bjerka", "Finneidfjord", "Mo i Rana",
    "Skonseng", "Storforshei", "Dunderland", "Bolna", "Lønsdal", "Røkland",
    "Rognan", "Setså", "Fauske", "Valnesfjord", "Festvåg", "Tverlandet",
    "Mørkved", "Grønnåsen", "Bodø",
)

#: Station track length (one segment at r_s = 5 km).
STATION_KM = 5.0

#: Gap lengths (km) cycle 10/9/9 so that 57 gaps sum to 532 km; with the
#: 58 station tracks of 5 km the line totals the real 822 km.
_GAP_CYCLE = (10.0, 9.0, 9.0)

#: Every fifth station (starting at index 2) has a crossing loop.
_LOOP_PERIOD = 5
_LOOP_OFFSET = 2

#: Mainline runs between crossing stations are split into a fresh TTD
#: whenever the current one exceeds this length.
_MAX_TTD_KM = 47.0


def is_crossing_station(index: int) -> bool:
    """Does station ``index`` have a passing loop?"""
    return index % _LOOP_PERIOD == _LOOP_OFFSET


def _gap_km(gap_index: int) -> float:
    return _GAP_CYCLE[gap_index % len(_GAP_CYCLE)]


def nordlandsbanen_network() -> RailwayNetwork:
    """Build the 822 km Trondheim–Bodø line (58 stations, 12 loops)."""
    builder = NetworkBuilder()
    builder.boundary("Trondheim-W")
    previous = "Trondheim-W"

    run_index = 0
    run_km = 0.0

    def current_run() -> str:
        return f"RUN{run_index}"

    def add_run_track(node_a: str, node_b: str, km: float, name: str) -> None:
        """Append a track to the current mainline-run TTD, splitting
        long runs."""
        nonlocal run_index, run_km
        if run_km + km > _MAX_TTD_KM and run_km > 0:
            run_index += 1
            run_km = 0.0
        builder.track(node_a, node_b, length_km=km, ttd=current_run(),
                      name=name)
        run_km += km

    def close_run() -> None:
        nonlocal run_index, run_km
        if run_km > 0:
            run_index += 1
            run_km = 0.0

    for index, name in enumerate(STATIONS):
        if is_crossing_station(index):
            sw_in, sw_out = f"{name}-W", f"{name}-E"
            builder.switch(sw_in).switch(sw_out)
            add_run_track(previous, sw_in, _gap_km(index - 1),
                          f"gap{index - 1}")
            close_run()
            builder.track(
                sw_in, sw_out, length_km=STATION_KM,
                ttd=f"{name}-main", name=f"sta-{name}",
            )
            builder.track(
                sw_in, sw_out, length_km=STATION_KM,
                ttd=f"{name}-loop", name=f"loop-{name}",
            )
            builder.station(name, [f"sta-{name}", f"loop-{name}"])
            previous = sw_out
        else:
            east = f"{name}-E"
            builder.link(east)
            if index == 0:
                # Trondheim: the platform track starts at the west boundary.
                add_run_track(previous, east, STATION_KM, f"sta-{name}")
            else:
                west = f"{name}-W"
                builder.link(west)
                add_run_track(previous, west, _gap_km(index - 1),
                              f"gap{index - 1}")
                add_run_track(west, east, STATION_KM, f"sta-{name}")
            builder.station(name, [f"sta-{name}"])
            previous = east

    # Eastern stub out of Bodø to the network boundary.
    builder.boundary("Bodø-E-end")
    builder.track(previous, "Bodø-E-end", length_km=STATION_KM, ttd="STUB",
                  name="bodo-stub")
    return builder.build()


def nordlandsbanen_schedule() -> Schedule:
    """Three trains over 200 minutes (r_t = 5 min -> 40 steps)."""
    runs = [
        TrainRun(
            Train("1", length_m=400, max_speed_kmh=150),
            start="Trondheim",
            goal="Steinkjer",
            departure_min=0.0,
            arrival_min=150.0,  # step 30
        ),
        TrainRun(
            Train("2", length_m=400, max_speed_kmh=150),
            start="Steinkjer",
            goal="Trondheim",
            departure_min=0.0,
            arrival_min=160.0,  # step 32
        ),
        TrainRun(
            Train("3", length_m=300, max_speed_kmh=150),
            start="Trondheim",
            goal="Steinkjer",
            departure_min=15.0,  # step 3
            arrival_min=155.0,  # step 31
        ),
    ]
    return Schedule(runs, duration_min=200.0)


def nordlandsbanen() -> CaseStudy:
    """The complete Nordlandsbanen case study with the paper's Table I rows."""
    return CaseStudy(
        name="Nordlandsbanen",
        network=nordlandsbanen_network(),
        schedule=nordlandsbanen_schedule(),
        r_s_km=5.0,
        r_t_min=5.0,
        paper_rows=[
            PaperRow("verification", 21156, False, 51, None, 62.39),
            PaperRow("generation", 21156, True, 53, 48, 82.65),
            PaperRow("optimization", 21156, True, 57, 44, 79.60),
        ],
    )
