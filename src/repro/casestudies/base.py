"""Common shape of a case study."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.discretize import DiscreteNetwork
from repro.network.topology import RailwayNetwork
from repro.trains.schedule import Schedule


@dataclass
class PaperRow:
    """One row of the paper's Table I, for comparison in EXPERIMENTS.md."""

    task: str
    variables: int
    satisfiable: bool
    sections: int
    time_steps: int | None
    runtime_s: float


@dataclass
class CaseStudy:
    """A network + schedule + resolutions, as evaluated in the paper."""

    name: str
    network: RailwayNetwork
    schedule: Schedule
    r_s_km: float
    r_t_min: float
    paper_rows: list[PaperRow] = field(default_factory=list)

    def discretize(self) -> DiscreteNetwork:
        """The segment graph at this case study's spatial resolution."""
        return DiscreteNetwork(self.network, self.r_s_km)


def all_case_studies() -> list[CaseStudy]:
    """All four §IV case studies, in the paper's order."""
    from repro.casestudies.complex_layout import complex_layout
    from repro.casestudies.nordlandsbanen import nordlandsbanen
    from repro.casestudies.running_example import running_example
    from repro.casestudies.simple_layout import simple_layout

    return [
        running_example(),
        simple_layout(),
        complex_layout(),
        nordlandsbanen(),
    ]
