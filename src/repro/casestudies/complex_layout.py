"""The "Complex Layout" of Fig. 4b: six stations, connected differently.

Reconstruction: two single-track corridors — A—B—C and D—E—F — joined by a
connector line between the interior stations B and E:

.. code-block:: text

    A == lineAB == B == lineBC == C        (corridor 1)
                   ||
                connector
                   ||
    D == lineDE == E == lineEF == F        (corridor 2)

Every station has two platform tracks; terminals (A, C, D, F) end in
boundary nodes.  Lines are 30 km (two 15 km TTD sections each), the
connector 25 km (two TTD sections).  Total: 22 TTD sections and 157 segments
at ``r_s = 1 km`` — the paper-equivalent variable count is 156 vertices +
5 trains x 157 segments x 18 steps = 14286 ≈ the paper's 14025.

The schedule crosses two expresses at station B (feasible on pure TTDs) and
runs a three-train sequence on corridor 2 whose local follower (train 5,
D -> E behind train 3) cannot meet its deadline with full-TTD headways — the
pure TTD layout is infeasible and VSS borders on lineDE repair it, which in
turn un-blocks the opposing train 4.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy, PaperRow
from repro.network.builder import NetworkBuilder
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


def complex_layout_network():
    """The Fig. 4b track layout (6 stations, 22 TTDs, 157 km)."""
    builder = NetworkBuilder()
    # Terminal stations: two boundary stubs meeting in one switch.
    for terminal, switch in (("A", "a1"), ("C", "c1"), ("D", "d1"),
                             ("F", "f1")):
        builder.boundary(f"{terminal}B1").boundary(f"{terminal}B2")
        builder.switch(switch)
        builder.track(
            f"{terminal}B1", switch, length_km=1.0,
            ttd=f"{terminal}1", name=f"sta{terminal}1",
        )
        builder.track(
            f"{terminal}B2", switch, length_km=1.0,
            ttd=f"{terminal}2", name=f"sta{terminal}2",
        )
    # Interior stations: two platforms between a pair of switches.
    for interior, (sw_in, sw_out) in (("B", ("b1", "b2")),
                                      ("E", ("e1", "e2"))):
        builder.switch(sw_in).switch(sw_out)
        builder.track(
            sw_in, sw_out, length_km=1.0,
            ttd=f"{interior}1", name=f"sta{interior}1",
        )
        builder.track(
            sw_in, sw_out, length_km=1.0,
            ttd=f"{interior}2", name=f"sta{interior}2",
        )
    # Lines (each 30 km, two 15 km TTD halves split at a link node).
    for name, (left, right) in (
        ("AB", ("a1", "b1")),
        ("BC", ("b2", "c1")),
        ("DE", ("d1", "e1")),
        ("EF", ("e2", "f1")),
    ):
        mid = f"l{name}"
        builder.link(mid)
        builder.track(left, mid, length_km=15.0, ttd=f"{name}a",
                      name=f"line{name}a")
        builder.track(mid, right, length_km=15.0, ttd=f"{name}b",
                      name=f"line{name}b")
    # The connector between the corridors (25 km, two TTD sections).
    builder.link("lBE")
    builder.track("b2", "lBE", length_km=13.0, ttd="BEa", name="connectorA")
    builder.track("lBE", "e1", length_km=12.0, ttd="BEb", name="connectorB")

    for station, switchish in (("A", "A"), ("C", "C"), ("D", "D"), ("F", "F"),
                               ("B", "B"), ("E", "E")):
        builder.station(station, [f"sta{switchish}1", f"sta{switchish}2"])
    return builder.build()


def complex_layout_schedule() -> Schedule:
    """Five trains over 54 minutes (r_t = 3 min -> 18 steps)."""
    runs = [
        TrainRun(
            Train("1", length_m=400, max_speed_kmh=120),
            start="A",
            goal="C",
            departure_min=0.0,
            arrival_min=39.0,  # step 13
        ),
        TrainRun(
            Train("2", length_m=400, max_speed_kmh=120),
            start="C",
            goal="A",
            departure_min=0.0,
            arrival_min=39.0,  # step 13
        ),
        TrainRun(
            Train("3", length_m=600, max_speed_kmh=100),
            start="D",
            goal="F",
            departure_min=0.0,
            arrival_min=45.0,  # step 15
        ),
        TrainRun(
            Train("4", length_m=600, max_speed_kmh=100),
            start="F",
            goal="D",
            departure_min=3.0,  # step 1
            arrival_min=51.0,  # step 17
        ),
        TrainRun(
            Train("5", length_m=300, max_speed_kmh=80),
            start="D",
            goal="E",
            departure_min=3.0,  # step 1
            arrival_min=30.0,  # step 10
        ),
    ]
    return Schedule(runs, duration_min=54.0)


def complex_layout() -> CaseStudy:
    """The complete Complex Layout case study with the paper's Table I rows."""
    return CaseStudy(
        name="Complex Layout",
        network=complex_layout_network(),
        schedule=complex_layout_schedule(),
        r_s_km=1.0,
        r_t_min=3.0,
        paper_rows=[
            PaperRow("verification", 14025, False, 22, None, 63.33),
            PaperRow("generation", 14025, True, 23, 17, 151.80),
            PaperRow("optimization", 14025, True, 25, 14, 210.70),
        ],
    )
