"""The four case studies of the paper's evaluation (§IV).

Each module exposes a :class:`CaseStudy` with the network, the schedule, and
the paper's resolutions:

* :mod:`repro.casestudies.running_example` — Fig. 1 (r_t=0.5 min, r_s=0.5 km),
* :mod:`repro.casestudies.simple_layout` — Fig. 4a, 3 stations
  (r_t=1 min, r_s=0.5 km),
* :mod:`repro.casestudies.complex_layout` — Fig. 4b, 6 stations
  (r_t=3 min, r_s=1 km),
* :mod:`repro.casestudies.nordlandsbanen` — the Trondheim–Bodø line, 58
  stations over 822 km (r_t=5 min, r_s=5 km).

The networks are reconstructions from the paper's textual description (see
DESIGN.md §2); schedules for the latter three are synthesised to exercise the
same phenomenon the paper reports: the pure TTD layout deadlocks, a few VSS
borders repair it, and more VSS buys a shorter makespan.
"""

from repro.casestudies.base import CaseStudy, all_case_studies

__all__ = ["CaseStudy", "all_case_studies"]
