"""The paper's running example (Fig. 1, Fig. 2, Fig. 3).

Reconstruction: a single-track line from boundary station A to boundary
station B with a two-track passing area in the middle whose lower track is
platform "Station C":

.. code-block:: text

    A ===staA=== a1 ===appA=== p1 ===through=== p2 ===appB=== b1 ===staB=== B
       (TTD1)        (TTD1)       \\==platform==/    (TTD4)        (TTD4)
                                      (TTD3, station C; through is TTD2)

At ``r_s = 0.5 km`` this discretises into 16 segments — matching the paper's
640 occupies-variables (4 trains x 16 segments x 10 steps) plus border
variables (Fig. 3 / Table I: 654).

The schedule is Fig. 1b verbatim: trains 1/3 start at A, trains 2/4 at B,
with opposing traffic that deadlocks on the pure TTD layout (Example 2) —
trains 2 and 4 must share TTD4 around 0:01, which no pure-TTD operation
allows.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy, PaperRow
from repro.network.builder import NetworkBuilder
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


def running_example_network():
    """The Fig. 1 track layout (4 TTDs, 8 km)."""
    return (
        NetworkBuilder()
        .boundary("A")
        .link("a1")
        .switch("p1")
        .switch("p2")
        .link("b1")
        .boundary("B")
        .track("A", "a1", length_km=1.0, ttd="TTD1", name="staA")
        .track("a1", "p1", length_km=1.5, ttd="TTD1", name="appA")
        .track("p1", "p2", length_km=1.5, ttd="TTD2", name="through")
        .track("p1", "p2", length_km=1.5, ttd="TTD3", name="platform")
        .track("p2", "b1", length_km=1.5, ttd="TTD4", name="appB")
        .track("b1", "B", length_km=1.0, ttd="TTD4", name="staB")
        .station("A", ["staA"])
        .station("B", ["staB"])
        .station("C", ["platform"])
        .build()
    )


def running_example_schedule() -> Schedule:
    """The Fig. 1b schedule (4 trains over 5 minutes)."""
    runs = [
        TrainRun(
            Train("1", length_m=400, max_speed_kmh=180),
            start="A",
            goal="B",
            departure_min=0.0,
            arrival_min=4.5,
        ),
        TrainRun(
            Train("2", length_m=700, max_speed_kmh=120),
            start="B",
            goal="A",
            departure_min=0.0,
            arrival_min=4.0,
        ),
        TrainRun(
            Train("3", length_m=100, max_speed_kmh=120),
            start="A",
            goal="C",
            departure_min=1.0,
            arrival_min=3.0,
        ),
        TrainRun(
            Train("4", length_m=250, max_speed_kmh=180),
            start="B",
            goal="A",
            departure_min=1.0,
            arrival_min=5.0,
        ),
    ]
    return Schedule(runs, duration_min=5.0)


def running_example() -> CaseStudy:
    """The complete running-example case study (paper's Table I rows)."""
    return CaseStudy(
        name="Running Example",
        network=running_example_network(),
        schedule=running_example_schedule(),
        r_s_km=0.5,
        r_t_min=0.5,
        paper_rows=[
            PaperRow("verification", 654, False, 4, None, 0.10),
            PaperRow("generation", 654, True, 5, 10, 0.14),
            PaperRow("optimization", 654, True, 7, 7, 0.25),
        ],
    )
