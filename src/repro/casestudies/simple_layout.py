"""The "Simple Layout" of Fig. 4a: three stations on a vertical line.

Reconstruction: stations North, Mid, and South, each with two platform
tracks, joined by two 9 km single-track lines (each split into two TTD
sections at its midpoint):

.. code-block:: text

      NA1 \\           / NA2        (North: 2 platforms, boundaries on top)
           n1 == line1 (L1a | L1b) == m1
                                       staM1 / staM2   (Mid: 2 platforms)
           m2 == line2 (L2a | L2b) == s1
      SB1 /           \\ SB2        (South: 2 platforms)

10 TTD sections; at ``r_s = 0.5 km`` the network has 48 segments, so the
paper-equivalent variable count is 48 vertices + 4 trains x 48 segments x
20 steps = 3888 ≈ the paper's 3910.

The synthesised schedule sends two expresses against each other (they must
cross at Mid), a regional that terminates on a Mid platform, and a delayed
follower out of South whose deadline cannot be met with full-TTD headways —
the pure TTD layout is infeasible, a few VSS borders repair it.
"""

from __future__ import annotations

from repro.casestudies.base import CaseStudy, PaperRow
from repro.network.builder import NetworkBuilder
from repro.trains.schedule import Schedule, TrainRun
from repro.trains.train import Train


def simple_layout_network():
    """The Fig. 4a track layout (3 stations, 10 TTDs, 24 km)."""
    builder = (
        NetworkBuilder()
        .boundary("NA1")
        .boundary("NA2")
        .switch("n1")
        .link("l1")
        .switch("m1")
        .switch("m2")
        .link("l2")
        .switch("s1")
        .boundary("SB1")
        .boundary("SB2")
        .track("NA1", "n1", length_km=1.0, ttd="N1", name="staN1")
        .track("NA2", "n1", length_km=1.0, ttd="N2", name="staN2")
        .track("n1", "l1", length_km=4.5, ttd="L1a", name="line1a")
        .track("l1", "m1", length_km=4.5, ttd="L1b", name="line1b")
        .track("m1", "m2", length_km=1.0, ttd="M1", name="staM1")
        .track("m1", "m2", length_km=1.0, ttd="M2", name="staM2")
        .track("m2", "l2", length_km=4.5, ttd="L2a", name="line2a")
        .track("l2", "s1", length_km=4.5, ttd="L2b", name="line2b")
        .track("s1", "SB1", length_km=1.0, ttd="S1", name="staS1")
        .track("s1", "SB2", length_km=1.0, ttd="S2", name="staS2")
        .station("North", ["staN1", "staN2"])
        .station("Mid", ["staM1", "staM2"])
        .station("South", ["staS1", "staS2"])
    )
    return builder.build()


def simple_layout_schedule() -> Schedule:
    """Four trains over 20 minutes (r_t = 1 min -> 20 steps)."""
    runs = [
        TrainRun(
            Train("1", length_m=400, max_speed_kmh=120),
            start="North",
            goal="South",
            departure_min=0.0,
            arrival_min=13.0,
        ),
        TrainRun(
            Train("2", length_m=400, max_speed_kmh=120),
            start="South",
            goal="North",
            departure_min=0.0,
            arrival_min=13.0,
        ),
        TrainRun(
            Train("3", length_m=200, max_speed_kmh=90),
            start="North",
            goal="Mid",
            departure_min=1.0,
            arrival_min=10.0,
        ),
        TrainRun(
            Train("4", length_m=600, max_speed_kmh=90),
            start="South",
            goal="Mid",
            departure_min=1.0,
            arrival_min=10.0,
        ),
    ]
    return Schedule(runs, duration_min=20.0)


def simple_layout() -> CaseStudy:
    """The complete Simple Layout case study with the paper's Table I rows."""
    return CaseStudy(
        name="Simple Layout",
        network=simple_layout_network(),
        schedule=simple_layout_schedule(),
        r_s_km=0.5,
        r_t_min=1.0,
        paper_rows=[
            PaperRow("verification", 3910, False, 10, None, 3.26),
            PaperRow("generation", 3910, True, 14, 19, 7.21),
            PaperRow("optimization", 3910, True, 14, 15, 28.40),
        ],
    )
