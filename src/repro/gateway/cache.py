"""Bounded LRU result cache keyed by instance fingerprints.

The gateway stores every successful response under its
:func:`repro.gateway.fingerprint.exact_key`, and indexes the same
entries by :func:`~repro.gateway.fingerprint.family_key` so a request
that misses exactly can still pick up the most recent *delta-close*
result as a warm-start hint.  Exact hits are served verbatim
(``cached=True``); family hits only ever contribute a model + descent
fingerprint — the solve path re-certifies the model before using it, so
the cache can be wrong about relevance but never about correctness.

Eviction is LRU over exact entries (lookups refresh recency); the
family index drops keys as their entries leave.  All counters land in
the gateway's metrics registry under ``gateway.cache.*``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry


@dataclass
class CacheEntry:
    """One cached response plus the warm-start payload derived from it."""

    response: dict
    model: list[int] = field(default_factory=list)
    fingerprint: dict | None = None
    task: str = ""
    hits: int = 0


class ResultCache:
    """LRU cache with an exact index and a family (delta-close) index."""

    def __init__(self, max_entries: int = 256,
                 registry: MetricsRegistry | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.registry = registry if registry is not None else (
            MetricsRegistry()
        )
        self._exact: OrderedDict[str, CacheEntry] = OrderedDict()
        self._family: dict[str, list[str]] = {}
        self._family_of: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._exact)

    def lookup_exact(self, key: str) -> CacheEntry | None:
        """The entry stored under ``key``, refreshing its recency."""
        entry = self._exact.get(key)
        if entry is None:
            self.registry.inc("gateway.cache.misses")
            return None
        self._exact.move_to_end(key)
        entry.hits += 1
        self.registry.inc("gateway.cache.hits")
        return entry

    def lookup_family(
        self, family: str, exclude: str | None = None
    ) -> CacheEntry | None:
        """Most recent delta-close entry carrying a model, if any.

        ``exclude`` skips the requester's own exact key (an exact miss
        should not warm-start from itself).  A hit counts as
        ``gateway.cache.warm_hits``; a family miss is silent — the
        exact miss was already counted.
        """
        for key in reversed(self._family.get(family, [])):
            if key == exclude:
                continue
            entry = self._exact.get(key)
            if entry is not None and entry.model:
                self.registry.inc("gateway.cache.warm_hits")
                return entry
        return None

    def put(self, key: str, family: str, entry: CacheEntry) -> None:
        """Store ``entry``, evicting the least recently used if full."""
        if key in self._exact:
            self._exact.pop(key)
            self._unindex(key)
        self._exact[key] = entry
        self._family.setdefault(family, []).append(key)
        self._family_of[key] = family
        while len(self._exact) > self.max_entries:
            evicted, _ = self._exact.popitem(last=False)
            self._unindex(evicted)
            self.registry.inc("gateway.cache.evictions")

    def stats(self) -> dict:
        """Counter snapshot for status responses."""
        payload = self.registry.as_dict()
        return {
            "entries": len(self._exact),
            "max_entries": self.max_entries,
            "hits": payload.get("gateway.cache.hits", 0),
            "misses": payload.get("gateway.cache.misses", 0),
            "warm_hits": payload.get("gateway.cache.warm_hits", 0),
            "evictions": payload.get("gateway.cache.evictions", 0),
        }

    def _unindex(self, key: str) -> None:
        family = self._family_of.pop(key, None)
        if family is None:
            return
        keys = self._family.get(family)
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:
                pass
            if not keys:
                del self._family[family]
