"""Synchronous client for the solve gateway.

Speaks the unix-socket NDJSON transport by default; pass ``host`` and
``port`` to use the HTTP transport instead (``POST /solve``).  One
client holds no connection state — each request opens, exchanges, and
closes, so a client object can be shared across threads.
"""

from __future__ import annotations

import json
import socket


class GatewayError(RuntimeError):
    """Transport-level failure talking to the gateway."""


class GatewayClient:
    """Blocking request/response client (unix socket or HTTP)."""

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout_s: float = 300.0,
    ):
        if socket_path is None and (host is None or port is None):
            raise ValueError("need socket_path, or host + port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def request(self, payload: dict) -> dict:
        """Send one request payload; return the decoded response."""
        if self.socket_path is not None:
            return self._request_unix(payload)
        return self._request_http(payload)

    def status(self) -> dict:
        return self.request({"op": "status"})

    def shutdown_server(self) -> dict:
        return self.request({"op": "shutdown"})

    def _request_unix(self, payload: dict) -> dict:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout_s)
                sock.connect(self.socket_path)
                sock.sendall(json.dumps(payload).encode() + b"\n")
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
        except OSError as exc:
            raise GatewayError(
                f"gateway at {self.socket_path!r} unreachable: {exc}"
            ) from exc
        line = b"".join(chunks)
        if not line:
            raise GatewayError("gateway closed the connection mid-request")
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise GatewayError(f"bad response: {exc}") from exc

    def _request_http(self, payload: dict) -> dict:
        from http.client import HTTPConnection

        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            body = json.dumps(payload)
            conn.request(
                "POST", "/solve", body=body,
                headers={"Content-Type": "application/json"},
            )
            raw = conn.getresponse().read()
        except OSError as exc:
            raise GatewayError(
                f"gateway at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise GatewayError(f"bad response: {exc}") from exc
