"""Request canonicalisation and cache keys for the solve gateway.

A gateway request names a task plus a scenario (a case-study name, or an
inline network/schedule pair) plus solver parameters.  Two keys are
derived from it:

``exact_key``
    hash of the *semantic* content — task, canonical scenario, and every
    parameter that can change the answer.  Volatile parameters
    (deadlines, parallelism, profiling) are excluded: they change how
    fast the answer arrives, never what it is, so a cached verdict is
    valid across them.

``family_key``
    like the exact key, but with the *negotiable* schedule content
    removed — arrival deadlines and station dwell windows.  Instances
    sharing a family key share network geometry, resolutions, duration
    and train identities, which (deterministic variable allocation)
    means they share a variable numbering: a model cached for one is a
    meaningful — though unverified — hint for another.  The warm-start
    paths re-certify every hinted model clause-by-clause, so a family
    collision can cost time but never correctness.

Canonicalisation sorts nodes, tracks and trains by name and serialises
with sorted keys, so semantically identical payloads with different
JSON ordering hash identically.
"""

from __future__ import annotations

import hashlib
import json

#: Parameters that affect latency/observability but never the verdict.
VOLATILE_PARAMS = frozenset({
    "deadline_s",
    "no_cache",
    "parallel",
    "persistent",
    "profile",
    "timeout_s",
})

#: Per-train schedule fields dropped from the family key (the
#: "negotiable" content delta-close instances differ in).
_FAMILY_DROPPED_TRAIN_FIELDS = ("arrival_min",)
_FAMILY_DROPPED_STOP_FIELDS = ("earliest_min", "latest_min")


def canonical_scenario(payload: dict, family: bool = False) -> dict:
    """Order-independent view of the request's scenario.

    With ``family=True`` the negotiable schedule fields are removed as
    well (see module docstring).  Case-study scenarios reduce to their
    name — their content is fixed by the code, so exact and family keys
    coincide for them.
    """
    case = payload.get("case")
    if case:
        return {"case": str(case)}
    network = payload.get("network") or {}
    schedule = payload.get("schedule") or {}
    nodes = sorted(
        (dict(node) for node in network.get("nodes", [])),
        key=lambda node: str(node.get("name")),
    )
    tracks = sorted(
        (dict(track) for track in network.get("tracks", [])),
        key=lambda track: str(track.get("name")),
    )
    trains = []
    for train in sorted(
        (dict(train) for train in schedule.get("trains", [])),
        key=lambda train: str(train.get("name")),
    ):
        if family:
            for field in _FAMILY_DROPPED_TRAIN_FIELDS:
                train.pop(field, None)
            train["stops"] = [
                {
                    key: value for key, value in stop.items()
                    if key not in _FAMILY_DROPPED_STOP_FIELDS
                }
                for stop in train.get("stops", [])
            ]
        trains.append(train)
    return {
        "nodes": nodes,
        "tracks": tracks,
        "stations": network.get("stations", {}),
        "duration_min": schedule.get("duration_min"),
        "trains": trains,
        "r_s": payload.get("r_s"),
        "r_t": payload.get("r_t"),
    }


def _semantic_params(payload: dict) -> dict:
    params = payload.get("params") or {}
    return {
        key: params[key]
        for key in sorted(params)
        if key not in VOLATILE_PARAMS
    }


def _digest(view: dict) -> str:
    blob = json.dumps(view, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode()).hexdigest()


def exact_key(payload: dict) -> str:
    """Cache key for serving a stored verdict verbatim."""
    return _digest({
        "task": payload.get("task"),
        "scenario": canonical_scenario(payload, family=False),
        "params": _semantic_params(payload),
    })


def family_key(payload: dict) -> str:
    """Cache key for finding warm-start candidates (delta-close match)."""
    return _digest({
        "task": payload.get("task"),
        "scenario": canonical_scenario(payload, family=True),
        "params": _semantic_params(payload),
    })
