"""Always-on asyncio solve gateway.

The gateway keeps one import-warm process pool and one result cache
alive across requests, so interactive and CI callers skip both the
interpreter start-up and — for repeated or delta-close instances — the
solve itself.  Request lifecycle::

    client ── unix socket (NDJSON) or HTTP POST ──► admission control
        │ exact cache hit?          ──► cached response (no worker)
        │ delta-close cache hit?    ──► attach warm-start hint
        ▼
    worker pool (persistent fork workers) ──► solve, re-certifying any
        │                                     warm hint before use
        │ worker crashed?           ──► in-process one-shot fallback
        ▼
    response cached under its exact key, served, and indexed for
    future warm-starts under its family key

Admission control: requests beyond ``max_inflight + max_queue`` are
rejected as overloaded rather than queued without bound, and every
request carries an optional ``deadline_s`` that is enforced at
admission (reject when already expired), after queueing (reject when
the wait consumed it) and during the solve (the optimisation wall
budget — :class:`repro.opt.minimize._DescentBudget` — gets the
remainder).  Shutdown drains: accept sockets close first, inflight
requests get ``drain_s`` to finish, then the pool is torn down and the
socket unlinked.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.gateway.cache import CacheEntry, ResultCache
from repro.gateway.fingerprint import exact_key, family_key
from repro.gateway.pool import (
    DeadlineExceeded,
    TaskWorkerPool,
    WorkerCrashed,
)
from repro.gateway.requests import TASKS, RequestError, execute
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.opt.minimize import _DescentBudget


@dataclass
class GatewayConfig:
    """Tunables of one gateway instance."""

    socket_path: str = "repro-gateway.sock"
    http_port: int | None = None
    workers: int = 2
    cache_entries: int = 256
    max_inflight: int = 2
    max_queue: int = 8
    drain_s: float = 10.0
    fallback: bool = True


class Gateway:
    """One gateway: servers + worker pool + result cache + metrics."""

    def __init__(self, config: GatewayConfig | None = None):
        self.config = config if config is not None else GatewayConfig()
        self.registry = MetricsRegistry()
        self.cache = ResultCache(
            self.config.cache_entries, registry=self.registry
        )
        self.pool: TaskWorkerPool | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._sem: asyncio.Semaphore | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closed = asyncio.Event()
        self._closing = False
        self._pending = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Spawn the pool and open the accept sockets."""
        loop = asyncio.get_running_loop()
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight + 1,
            thread_name_prefix="gateway",
        )
        self.pool = await loop.run_in_executor(
            None, TaskWorkerPool, self.config.workers
        )
        path = self.config.socket_path
        with contextlib.suppress(FileNotFoundError):
            os.unlink(path)
        self._servers.append(
            await asyncio.start_unix_server(self._handle_ndjson, path=path)
        )
        if self.config.http_port is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_http, host="127.0.0.1",
                port=self.config.http_port,
            ))
        obs_events.emit(
            "gateway.started", socket=path,
            http_port=self.config.http_port or 0,
            workers=self.config.workers,
        )

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self, reason: str = "") -> None:
        """Stop accepting, drain inflight work, tear the pool down."""
        if self._closing:
            return
        self._closing = True
        obs_events.emit("gateway.drain", reason=reason,
                        pending=self._pending)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_s
        while self._pending > 0 and loop.time() < deadline:
            await asyncio.sleep(0.05)
        if self.pool is not None:
            await loop.run_in_executor(None, self.pool.close)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.config.socket_path)
        obs_events.emit("gateway.stopped", reason=reason)
        self._closed.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig,
                lambda s=sig: asyncio.ensure_future(
                    self.shutdown(f"signal {s}")
                ),
            )

    # -- transports ---------------------------------------------------

    async def _handle_ndjson(self, reader, writer) -> None:
        """Unix-socket transport: one JSON object per line, both ways."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"bad json: {exc}"}
                else:
                    response = await self.process(payload)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_http(self, reader, writer) -> None:
        """Minimal HTTP/1.1: POST /solve with a JSON body, GET /status."""
        status, response = 200, {"ok": False, "error": "bad request"}
        try:
            request_line = (await reader.readline()).decode(
                "latin-1", "replace"
            )
            parts = request_line.split()
            method = parts[0] if parts else ""
            target = parts[1] if len(parts) > 1 else "/"
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode(
                    "latin-1", "replace"
                ).partition(":")
                if name.strip().lower() == "content-length":
                    with contextlib.suppress(ValueError):
                        length = int(value.strip())
            if method == "GET" and target.startswith("/status"):
                response = self._status()
            elif method == "POST":
                body = await reader.readexactly(length) if length else b""
                try:
                    payload = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    status = 400
                    response = {"ok": False, "error": f"bad json: {exc}"}
                else:
                    response = await self.process(payload)
                    status = 200 if response.get("ok") else 400
            else:
                status, response = 404, {"ok": False, "error": "not found"}
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return
        body_bytes = json.dumps(response).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}
        writer.write(
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body_bytes)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body_bytes
        )
        with contextlib.suppress(Exception):
            await writer.drain()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()

    # -- request processing -------------------------------------------

    async def process(self, payload: dict) -> dict:
        """Admission control + cache + dispatch for one request."""
        op = payload.get("op")
        if op == "status":
            return self._status()
        if op == "shutdown":
            asyncio.get_running_loop().create_task(
                self.shutdown("client request")
            )
            return {"ok": True, "op": "shutdown"}
        if op:
            return {"ok": False, "error": f"unknown op {op!r}"}
        if self._closing:
            return {"ok": False, "error": "draining", "kind": "draining"}
        task = payload.get("task")
        if task not in TASKS:
            return {
                "ok": False,
                "error": f"unknown task {task!r}; known: {list(TASKS)}",
            }
        self.registry.inc("gateway.requests")
        budget = _DescentBudget(payload.get("deadline_s"))
        use_cache = bool(not payload.get("no_cache") and task != "fuzz")
        ekey = exact_key(payload) if use_cache else None
        fkey = family_key(payload) if use_cache else None
        warm = None
        if use_cache:
            entry = self.cache.lookup_exact(ekey)
            if entry is not None:
                obs_events.emit("gateway.cache_hit", task=task,
                                key=ekey[:12], hits=entry.hits)
                return {**entry.response, "cached": True}
            family_entry = self.cache.lookup_family(fkey, exclude=ekey)
            if family_entry is not None:
                warm = {
                    "model": family_entry.model,
                    "fingerprint": family_entry.fingerprint,
                }
                obs_events.emit("gateway.warm_candidate", task=task,
                                key=fkey[:12])
        limit = self.config.max_inflight + self.config.max_queue
        if self._pending >= limit:
            self.registry.inc("gateway.rejected.overload")
            obs_events.emit("gateway.rejected", reason="overload")
            return {"ok": False, "error": "overloaded", "kind": "overload"}
        if budget.exhausted():
            self.registry.inc("gateway.rejected.deadline")
            obs_events.emit("gateway.rejected", reason="deadline")
            return {
                "ok": False,
                "error": "deadline expired before admission",
                "kind": "deadline",
            }
        self._pending += 1
        try:
            async with self._sem:
                if budget.exhausted():
                    self.registry.inc("gateway.rejected.deadline")
                    obs_events.emit("gateway.rejected", reason="queue-wait")
                    return {
                        "ok": False,
                        "error": "deadline expired while queued",
                        "kind": "deadline",
                    }
                response = await self._solve(payload, warm, budget)
        finally:
            self._pending -= 1
        response.setdefault("cached", False)
        response.setdefault("fallback", False)
        if response.get("ok") and use_cache:
            if response.get("warm_started"):
                self.registry.inc("gateway.warm_starts")
            self.cache.put(ekey, fkey, CacheEntry(
                response=dict(response),
                model=list(response.get("model") or []),
                fingerprint=response.get("fingerprint"),
                task=task,
            ))
        return response

    async def _solve(self, payload, warm, budget) -> dict:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, self.pool.run,
                payload, warm, budget.remaining(),
            )
        except DeadlineExceeded as exc:
            self.registry.inc("gateway.rejected.deadline")
            obs_events.emit("gateway.rejected", reason="solve-deadline")
            return {"ok": False, "error": str(exc), "kind": "deadline"}
        except WorkerCrashed as exc:
            self.registry.inc("gateway.worker_crashes")
            obs_events.emit("gateway.worker_crash", error=str(exc))
            if not self.config.fallback:
                return {"ok": False, "error": str(exc), "kind": "crash"}
            self.registry.inc("gateway.fallbacks")
            obs_events.emit("gateway.fallback")
            fallback = dict(payload)
            params = dict(fallback.get("params") or {})
            params["parallel"] = 1
            params.pop("persistent", None)
            fallback["params"] = params
            fallback.pop("inject", None)
            try:
                response = await loop.run_in_executor(
                    self._executor, execute,
                    fallback, warm, budget.remaining(),
                )
            except RequestError as inner:
                return {"ok": False, "error": str(inner), "kind": "request"}
            response["fallback"] = True
            return response

    def _status(self) -> dict:
        pool = self.pool
        return {
            "ok": True,
            "op": "status",
            "pid": os.getpid(),
            "draining": self._closing,
            "pending": self._pending,
            "workers": {
                "processes": pool.processes if pool else 0,
                "alive": pool.alive_count() if pool else 0,
                "pids": pool.worker_pids() if pool else [],
                "crashes": pool.crashes if pool else 0,
            },
            "cache": self.cache.stats(),
            "metrics": self.registry.as_dict(),
        }


def serve(config: GatewayConfig | None = None) -> int:
    """Run a gateway until SIGTERM/SIGINT or a client shutdown op."""

    async def main() -> None:
        gateway = Gateway(config)
        await gateway.start()
        gateway.install_signal_handlers()
        await gateway.wait_closed()

    asyncio.run(main())
    return 0


class GatewayThread:
    """A gateway on a background event-loop thread (tests, benchmarks)."""

    def __init__(self, config: GatewayConfig | None = None):
        import threading

        self.gateway = Gateway(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "GatewayThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("gateway failed to start within 30s")
        if self._failure is not None:
            raise RuntimeError(
                f"gateway failed to start: {self._failure}"
            ) from self._failure

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self.gateway.shutdown("thread stop"), loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=30)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.gateway.start()
            except BaseException as exc:  # noqa: BLE001 — surface in start()
                self._failure = exc
                self._started.set()
                raise
            self._started.set()
            await self.gateway.wait_closed()

        with contextlib.suppress(BaseException):
            asyncio.run(main())
