"""Persistent worker pool the gateway multiplexes requests onto.

Each worker is a forked process running a recv → execute → send loop
over a pipe; forking keeps the import-warm interpreter (no re-import of
the encoder/solver stack per request), which is most of the gateway's
cold-request advantage over ``python -m repro ...``.

Crash semantics: a worker that dies mid-request (OOM kill, fault
injection, segfault) is detected by the broken pipe, respawned
immediately, and the request raises :class:`WorkerCrashed` — the server
then degrades to a one-shot in-process solve rather than failing the
client.  A request that outlives its deadline by more than the grace
period gets its worker killed (solver loops are not interruptible from
outside) and raises :class:`DeadlineExceeded`; the replacement worker
is ready before the next request needs it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

from repro.gateway.requests import RequestError, execute
from repro.obs import trace

#: Extra seconds past the deadline before a busy worker is killed.
KILL_GRACE_S = 5.0


class WorkerCrashed(RuntimeError):
    """The worker died mid-request; a fallback solve may still answer."""


class DeadlineExceeded(RuntimeError):
    """The request outlived its deadline; its worker was recycled."""


def _pool_worker(conn) -> None:
    """Child entry point: serve requests until the pipe closes."""
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        try:
            response = execute(
                job.get("payload") or {},
                warm=job.get("warm"),
                budget_s=job.get("budget_s"),
            )
        except RequestError as exc:
            response = {"ok": False, "error": str(exc), "kind": "request"}
        except Exception as exc:  # noqa: BLE001 — report, keep serving
            response = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "kind": "internal",
            }
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            return


class TaskWorkerPool:
    """Fixed-size pool of persistent solve workers."""

    def __init__(self, processes: int = 2):
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.crashes = 0
        self._ctx = multiprocessing.get_context("fork")
        self._lock = threading.Condition()
        self._workers: list[tuple] = [
            self._spawn() for _ in range(processes)
        ]
        self._free = list(range(processes))
        self._closed = False

    def _spawn(self):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_pool_worker, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def worker_pids(self) -> list[int]:
        return [proc.pid for proc, _ in self._workers if proc.is_alive()]

    def alive_count(self) -> int:
        return sum(proc.is_alive() for proc, _ in self._workers)

    def run(
        self,
        payload: dict,
        warm: dict | None = None,
        budget_s: float | None = None,
    ) -> dict:
        """Run one request on a free worker (blocks until one frees up)."""
        with self._lock:
            while not self._free and not self._closed:
                self._lock.wait(timeout=1.0)
            if self._closed:
                raise WorkerCrashed("pool is closed")
            slot = self._free.pop()
        try:
            return self._run_on(slot, payload, warm, budget_s)
        finally:
            with self._lock:
                self._free.append(slot)
                self._lock.notify()

    def _run_on(self, slot, payload, warm, budget_s) -> dict:
        proc, conn = self._workers[slot]
        if not proc.is_alive():
            self._respawn(slot)
            proc, conn = self._workers[slot]
        try:
            conn.send({
                "payload": payload, "warm": warm, "budget_s": budget_s,
            })
            if budget_s is None:
                return conn.recv()
            if conn.poll(budget_s + KILL_GRACE_S):
                return conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._note_crash(slot, proc, f"{type(exc).__name__}: {exc}")
            raise WorkerCrashed(str(exc)) from exc
        # Past deadline + grace: the solver cannot be interrupted from
        # here, so recycle the whole worker.
        self._kill(proc)
        self._respawn(slot)
        raise DeadlineExceeded(
            f"request exceeded deadline of {budget_s:.1f}s"
        )

    def _note_crash(self, slot: int, proc, error: str) -> None:
        self.crashes += 1
        trace.event("gateway.worker_crash", pid=proc.pid, error=error)
        self._kill(proc)
        self._respawn(slot)

    def _respawn(self, slot: int) -> None:
        _, old_conn = self._workers[slot]
        try:
            old_conn.close()
        except OSError:
            pass
        self._workers[slot] = self._spawn()

    @staticmethod
    def _kill(proc) -> None:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive() and proc.pid:
                os.kill(proc.pid, 9)
                proc.join(timeout=2.0)

    def close(self) -> None:
        """Quit every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        for proc, conn in self._workers:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in self._workers:
            proc.join(timeout=2.0)
            self._kill(proc)
            try:
                conn.close()
            except OSError:
                pass
