"""Request parsing and execution for the solve gateway.

This module is the part of the gateway that runs *inside* a pool worker
(and in-process, when the server falls back after a worker crash).  It
turns a JSON request payload into a task call and the task's result
back into a JSON-safe response dict.

Payload shape::

    {"task": "verify" | "generate" | "optimize" | "fuzz",
     "case": "running-example",            # or an inline scenario:
     "network": {...}, "schedule": {...}, "r_s": 1.0, "r_t": 1.0,
     "params": {"strategy": "linear", ...},
     "deadline_s": 30.0,                   # admission + solve budget
     "no_cache": false}

Unknown parameters are rejected (typos must not silently change the
cache key semantics).  Fault-injection fields (``inject``) are honoured
only when ``REPRO_GATEWAY_FAULTS=1`` — the CI chaos job uses them to
kill a worker mid-request or stall past a deadline.
"""

from __future__ import annotations

import os
import time

from repro.casestudies import CaseStudy, all_case_studies
from repro.network.discretize import DiscreteNetwork
from repro.network.io import network_from_json
from repro.tasks import generate_layout, optimize_schedule, verify_schedule
from repro.tasks.result import TaskResult
from repro.trains.io import schedule_from_json
from repro.trains.schedule import Schedule, ScheduleError

TASKS = ("verify", "generate", "optimize", "fuzz")

#: Parameters each task accepts from ``payload["params"]``.
_TASK_PARAMS = {
    "verify": frozenset({
        "parallel", "lazy", "lazy_strategy", "with_proof", "presimplify",
        "profile", "guarded_arrivals",
    }),
    "generate": frozenset({
        "strategy", "parallel", "persistent", "timeout_s", "lazy",
        "lazy_strategy", "profile", "guarded_arrivals",
    }),
    "optimize": frozenset({
        "strategy", "objective", "refine_arrivals",
        "minimize_borders_secondary", "parallel", "persistent",
        "timeout_s", "lazy", "lazy_strategy", "profile",
        "guarded_arrivals",
    }),
    "fuzz": frozenset({
        "count", "seed", "max_trains", "max_loops", "check_optimum",
    }),
}


class RequestError(ValueError):
    """The payload is malformed; the connection stays up."""


def _find_case(name: str) -> CaseStudy:
    for study in all_case_studies():
        if study.name.lower().replace(" ", "-") == name:
            return study
    raise RequestError(f"unknown case study {name!r}")


def parse_scenario(payload: dict) -> tuple[DiscreteNetwork, Schedule, float]:
    """Resolve (discrete network, schedule, r_t) from a request payload."""
    case = payload.get("case")
    if case:
        study = _find_case(str(case))
        return study.discretize(), study.schedule, study.r_t_min
    network = payload.get("network")
    schedule = payload.get("schedule")
    if not network or not schedule:
        raise RequestError(
            "request needs either 'case' or 'network' + 'schedule'"
        )
    r_s = payload.get("r_s")
    r_t = payload.get("r_t")
    if r_s is None or r_t is None:
        raise RequestError("inline scenarios need 'r_s' and 'r_t'")
    import json as _json

    try:
        net = DiscreteNetwork(
            network_from_json(_json.dumps(network)), float(r_s)
        )
        sched = schedule_from_json(_json.dumps(schedule))
    except (KeyError, TypeError, ValueError, ScheduleError) as exc:
        raise RequestError(f"bad inline scenario: {exc}") from exc
    return net, sched, float(r_t)


def _checked_params(payload: dict, task: str) -> dict:
    params = dict(payload.get("params") or {})
    unknown = sorted(set(params) - _TASK_PARAMS[task])
    if unknown:
        raise RequestError(
            f"unknown parameter(s) for {task}: {', '.join(unknown)}"
        )
    return params


def _maybe_inject(payload: dict) -> None:
    """CI chaos hooks, dead unless ``REPRO_GATEWAY_FAULTS=1``."""
    inject = payload.get("inject")
    if not inject or os.environ.get("REPRO_GATEWAY_FAULTS") != "1":
        return
    sleep_s = inject.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))
    if inject.get("crash"):
        os._exit(13)


def _result_response(task: str, result: TaskResult) -> dict:
    return {
        "ok": True,
        "task": task,
        "satisfiable": result.satisfiable,
        "num_sections": result.num_sections,
        "time_steps": result.time_steps,
        "objective_value": result.objective_value,
        "status": result.status,
        "solve_calls": result.solve_calls,
        "runtime_s": result.runtime_s,
        "warm_started": result.warm_started,
        "model": list(result.model),
        "fingerprint": result.fingerprint,
    }


def execute(
    payload: dict,
    warm: dict | None = None,
    budget_s: float | None = None,
) -> dict:
    """Run one request and return its JSON-safe response.

    ``warm`` is an optional ``{"model": [...], "fingerprint": {...}}``
    hint from the cache (a delta-close result).  ``budget_s`` caps the
    optimisation wall clock; verification runs are not preemptible —
    the server enforces their deadline at admission and around the
    worker instead.
    """
    task = payload.get("task")
    if task not in TASKS:
        raise RequestError(f"unknown task {task!r}; known: {TASKS}")
    _maybe_inject(payload)
    params = _checked_params(payload, task)
    warm_model = list(warm.get("model") or []) if warm else None
    warm_fp = warm.get("fingerprint") if warm else None

    if task == "fuzz":
        from repro.scenarios.fuzz import run_fuzz

        report = run_fuzz(
            count=int(params.get("count", 3)),
            seed=int(params.get("seed", 0)),
            jobs=1,
            check_optimum=bool(params.get("check_optimum", False)),
            max_trains=int(params.get("max_trains", 2)),
            max_loops=int(params.get("max_loops", 1)),
        )
        summary = report.as_dict()
        summary.pop("records", None)  # bulky; verdict + metrics suffice
        return {
            "ok": True,
            "task": task,
            "agree": report.ok,
            "disagreements": len(report.disagreements),
            "report": summary,
        }

    net, schedule, r_t = parse_scenario(payload)
    if params.pop("guarded_arrivals", False):
        # Deadline-independent variable space: cone pruning ignores the
        # arrival deadlines, so every delta-close instance numbers its
        # variables identically and cached models replay across them.
        from repro.encoding.encoder import EncodingOptions

        params["options"] = EncodingOptions(guarded_arrivals=True)
    timeout_s = params.pop("timeout_s", None)
    if budget_s is not None:
        timeout_s = (
            budget_s if timeout_s is None else min(timeout_s, budget_s)
        )
    if task == "verify":
        result = verify_schedule(
            net, schedule, r_t, **params,
            warm_hints=warm_model, warm_fingerprint=warm_fp,
        )
    elif task == "generate":
        result = generate_layout(
            net, schedule, r_t, **params, timeout_s=timeout_s,
            warm_model=warm_model, warm_fingerprint=warm_fp,
        )
    else:
        result = optimize_schedule(
            net, schedule, r_t, **params, timeout_s=timeout_s,
            warm_model=warm_model, warm_fingerprint=warm_fp,
        )
    return _result_response(task, result)
