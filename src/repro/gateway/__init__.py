"""Always-on solve gateway: persistent workers + fingerprint cache.

``repro serve`` runs a :class:`Gateway` — an asyncio front door on a
unix socket (and optionally HTTP) that multiplexes verify / generate /
optimize / fuzz requests onto a pool of import-warm fork workers, and
caches results keyed by the instance fingerprint.  An exact repeat is
served from the cache without touching a worker; a *delta-close*
repeat (same network/trains, different arrival deadlines) warm-starts
from the cached model after clause-level re-certification.  See
``doc/architecture.md`` §9.
"""

from repro.gateway.cache import CacheEntry, ResultCache
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.fingerprint import exact_key, family_key
from repro.gateway.pool import (
    DeadlineExceeded,
    TaskWorkerPool,
    WorkerCrashed,
)
from repro.gateway.requests import RequestError, execute
from repro.gateway.server import (
    Gateway,
    GatewayConfig,
    GatewayThread,
    serve,
)

__all__ = [
    "CacheEntry",
    "DeadlineExceeded",
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayThread",
    "RequestError",
    "ResultCache",
    "TaskWorkerPool",
    "WorkerCrashed",
    "exact_key",
    "execute",
    "family_key",
    "serve",
]
