"""Breadth-first explicit-state checking of schedule feasibility.

The state of the system at a time step is, per train:

* ``None`` — not yet entered (before its departure step),
* a frozenset of occupied segments (a connected chain of ``l*``), plus a
  flag "has visited its goal",
* ``GONE`` — left the network (only after visiting the goal from a
  boundary-adjacent position).

The transition relation mirrors the CNF encoder's constraints one for one
(placement, movement, VSS separation, path interiors, swap blocking,
departure, arrival deadlines, boundary exit) — but is written as plain
set-manipulating Python with no SAT involved.  ``explicit_verify`` returns
exactly what ``verify_schedule`` answers, for scenarios small enough to
enumerate.
"""

from __future__ import annotations

from repro.network.discretize import DiscreteNetwork
from repro.network.paths import (
    chains as enumerate_chains,
    interior_segments_of_paths,
    reachable,
)
from repro.network.sections import VSSLayout
from repro.trains.discretize import discretize_schedule
from repro.trains.schedule import Schedule

#: Sentinel for "the train has left the network".
GONE = "gone"


class ExplicitLimitExceeded(RuntimeError):
    """The scenario's state space exceeded the configured limit."""


def _chain_candidates(
    net: DiscreteNetwork, length: int
) -> list[frozenset[int]]:
    return [frozenset(chain) for chain in enumerate_chains(net, length)]


def explicit_verify(
    net: DiscreteNetwork,
    schedule: Schedule,
    r_t_min: float,
    layout: VSSLayout | None = None,
    max_states_per_layer: int = 200_000,
    return_witness: bool = False,
) -> bool | tuple[bool, list[list[frozenset[int]]] | None]:
    """Does any execution realise ``schedule`` on ``layout``?

    Raises :class:`ExplicitLimitExceeded` when a BFS layer outgrows
    ``max_states_per_layer`` (the scenario is too big for explicit search).
    Intermediate stops are not supported here (the cross-validation suite
    does not generate them).

    With ``return_witness`` the result is ``(verdict, trajectories)`` where
    trajectories (feasible case only) list, per train and step, the occupied
    segment set — directly checkable by the independent trajectory
    validator.
    """
    if layout is None:
        layout = VSSLayout.pure_ttd(net)
    runs, t_max = discretize_schedule(net, schedule, r_t_min)
    for run in runs:
        if run.stops:
            raise NotImplementedError(
                "explicit_verify does not support intermediate stops"
            )
    section_of = layout.section_of()
    boundary = net.boundary_segments()

    chains_by_length = {
        length: _chain_candidates(net, length)
        for length in {run.length_segments for run in runs}
    }
    reach = {
        speed: [
            frozenset(reachable(net, e, speed))
            for e in range(net.num_segments)
        ]
        for speed in {run.speed_segments for run in runs}
    }

    def interiors(e: int, f: int, speed: int) -> frozenset[int]:
        return frozenset(
            interior_segments_of_paths(net, e, f, speed + 1)
        )

    def successors_for_train(i, position, visited, t):
        """Candidate (new_position, new_visited) pairs for one train."""
        run = runs[i]
        goal = frozenset(run.goal_segments)
        if position is None:
            if t == run.departure_step:
                station = frozenset(run.start_segments)
                return [
                    (chain, bool(chain & goal))
                    for chain in chains_by_length[run.length_segments]
                    if chain <= station
                ]
            return [(None, False)]
        if position == GONE:
            return [(GONE, True)]
        speed_reach = reach[run.speed_segments]
        options: list[tuple[object, bool]] = []
        for chain in chains_by_length[run.length_segments]:
            # Movement: every currently occupied segment must see some
            # occupied segment of the next position within its reach.
            if all(speed_reach[e] & chain for e in position):
                options.append((chain, visited or bool(chain & goal)))
        if visited and position & boundary:
            options.append((GONE, True))
        return options

    def pairwise_ok(old_i, new_i, old_j, new_j, speed_i, speed_j) -> bool:
        """Mirror of separation + interior + swap constraints for one
        ordered pair at one step transition (positions may be None/GONE)."""
        new_i_set = new_i if isinstance(new_i, frozenset) else frozenset()
        new_j_set = new_j if isinstance(new_j, frozenset) else frozenset()
        old_i_set = old_i if isinstance(old_i, frozenset) else frozenset()
        old_j_set = old_j if isinstance(old_j, frozenset) else frozenset()
        # VSS separation at the *new* instant.
        if new_i_set and new_j_set:
            sections_i = {section_of[e] for e in new_i_set}
            if any(section_of[e] in sections_i for e in new_j_set):
                return False
        # Path interiors of i's move vs j at both instants.
        if old_i_set and new_i_set:
            occupied_j = old_j_set | new_j_set
            if occupied_j:
                for e in old_i_set:
                    for f in new_i_set:
                        if e == f:
                            continue
                        if interiors(e, f, speed_i) & occupied_j:
                            return False
        # Swap blocking — mirrors the encoder's quaternary clauses, which
        # only cover pairs within the slower train's reach (an exchange over
        # a longer distance may legitimately happen via parallel tracks,
        # e.g. two long trains crossing at a loop).
        swap_reach = reach[min(speed_i, speed_j)]
        for e in old_i_set & new_j_set:
            for f in new_i_set & old_j_set:
                if e != f and f in swap_reach[e]:
                    return False
        return True

    # BFS layers: state = tuple of (position, visited) per train; parents
    # recorded for witness reconstruction.
    pre_state = tuple((None, False) for _ in runs)
    layer: dict[tuple, tuple | None] = {pre_state: None}
    history: list[dict[tuple, tuple | None]] = []
    for t in range(t_max):
        next_layer: dict[tuple, tuple] = {}
        for state in layer:
            per_train = [
                successors_for_train(i, state[i][0], state[i][1], t)
                for i in range(len(runs))
            ]
            if any(not options for options in per_train):
                continue
            stack = [((), 0)]
            while stack:
                chosen, idx = stack.pop()
                if idx == len(runs):
                    if chosen not in next_layer:
                        next_layer[chosen] = state
                    if len(next_layer) > max_states_per_layer:
                        raise ExplicitLimitExceeded(
                            f"layer {t} exceeded {max_states_per_layer} states"
                        )
                    continue
                for new_pos, new_visited in per_train[idx]:
                    ok = True
                    for j in range(idx):
                        if not pairwise_ok(
                            state[idx][0], new_pos,
                            state[j][0], chosen[j][0],
                            runs[idx].speed_segments,
                            runs[j].speed_segments,
                        ) or not pairwise_ok(
                            state[j][0], chosen[j][0],
                            state[idx][0], new_pos,
                            runs[j].speed_segments,
                            runs[idx].speed_segments,
                        ):
                            ok = False
                            break
                    if ok:
                        stack.append(
                            (chosen + ((new_pos, new_visited),), idx + 1)
                        )
        # Deadline pruning: a train must have visited its goal by its
        # arrival step.
        pruned: dict[tuple, tuple] = {}
        for state, parent in next_layer.items():
            keep = True
            for i, run in enumerate(runs):
                if run.arrival_step is not None and t >= run.arrival_step:
                    if not state[i][1]:
                        keep = False
                        break
            if keep:
                pruned[state] = parent
        history.append(pruned)
        layer = pruned
        if not layer:
            return (False, None) if return_witness else False
    # Survived all steps with every deadline met along the way; trains with
    # open deadlines must still have visited their goals within the horizon.
    accepting = next(
        (state for state in layer if all(v for __, v in state)), None
    )
    if accepting is None:
        return (False, None) if return_witness else False
    if not return_witness:
        return True
    # Walk the parent chain back through the layers.
    states = [accepting]
    for t in range(t_max - 1, 0, -1):
        states.append(history[t][states[-1]])
    states.reverse()
    trajectories: list[list[frozenset[int]]] = [[] for _ in runs]
    for state in states:
        for i, (position, __) in enumerate(state):
            trajectories[i].append(
                position if isinstance(position, frozenset) else frozenset()
            )
    return True, trajectories
