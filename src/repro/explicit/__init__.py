"""Explicit-state model checking of the verification task.

A third, fully independent implementation of the operational semantics (the
first is the CNF encoder, the second the trajectory validator): a breadth-
first search over global system states, one layer per time step.  It is
exponential in the number of trains and only usable on small scenarios —
which is exactly its job: cross-validating the SAT encoder's verdicts (and,
transitively, the soundness of the cone-of-influence reduction) on the
thousands of small random instances the property tests generate.
"""

from repro.explicit.model_checker import explicit_verify

__all__ = ["explicit_verify"]
