"""ASCII rendering of VSS layouts.

Each TTD is drawn as a run of segment cells; ``|`` marks VSS borders within
the TTD (added virtual borders are the interesting part)::

    TTD1  [ 9 10 |  0  1  2 ]     <- one added border
    TTD2  [13 14 15 ]
"""

from __future__ import annotations

from repro.network.paths import TTDPathIndex
from repro.network.sections import VSSLayout


def render_layout(layout: VSSLayout) -> str:
    """Render a layout, one line per TTD, borders marked with ``|``."""
    net = layout.net
    index = TTDPathIndex(net)
    lines: list[str] = []
    width = max(len(ttd) for ttd in net.ttd_segments)
    for ttd in sorted(net.ttd_segments):
        ordered = index.ordered_segments(ttd)
        cells: list[str] = []
        for position, seg in enumerate(ordered):
            if position > 0:
                joint = _joint_vertex(net, ordered[position - 1], seg)
                cells.append("|" if layout.is_border(joint) else " ")
            cells.append(f"{seg:3d}")
        lines.append(f"{ttd:<{width}}  [{' '.join(cells)} ]")
    added = sorted(layout.added_borders)
    lines.append(
        f"{layout.num_sections} sections "
        f"({net.num_ttds} TTDs + {len(added)} VSS borders at vertices {added})"
    )
    return "\n".join(lines)


def _joint_vertex(net, seg_a: int, seg_b: int) -> int:
    a = net.segments[seg_a]
    b = net.segments[seg_b]
    shared = {a.u, a.v} & {b.u, b.v}
    return shared.pop()


def render_network_summary(net) -> str:
    """One-paragraph summary of a discrete network."""
    lines = [
        f"{net.num_vertices} vertices, {net.num_segments} segments "
        f"(r_s = {net.r_s_km} km), {net.num_ttds} TTD sections",
        f"forced borders at vertices {sorted(net.forced_borders)}",
    ]
    for ttd in sorted(net.ttd_segments):
        segs = net.ttd_segments[ttd]
        lines.append(f"  {ttd}: {len(segs)} segments {segs}")
    stations = net.network.stations
    if stations:
        parts = [
            f"{name} -> segments {net.station_segments(name)}"
            for name in sorted(stations)
        ]
        lines.append("stations: " + "; ".join(parts))
    return "\n".join(lines)
