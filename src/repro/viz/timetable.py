"""Timetable rendering: per-train station events from a solution.

Turns decoded trajectories back into the operational artefact dispatchers
actually read — which train is at which station when::

    train 1  (A -> B)
      dep A      0:00
      pass C     0:02:30
      arr B      0:03:30  (left network at 0:04)
"""

from __future__ import annotations

from repro.encoding.decode import Solution, TrainTrajectory
from repro.network.discretize import DiscreteNetwork


def _format_time(step: int, r_t_min: float) -> str:
    total_seconds = int(round(step * r_t_min * 60))
    hours, remainder = divmod(total_seconds, 3600)
    minutes, seconds = divmod(remainder, 60)
    if seconds:
        return f"{hours}:{minutes:02d}:{seconds:02d}"
    return f"{hours}:{minutes:02d}"


def station_events(
    net: DiscreteNetwork, trajectory: TrainTrajectory
) -> list[tuple[int, str]]:
    """(step, station) pairs: the first step of each station visit."""
    station_of: dict[int, str] = {}
    for name, tracks in net.network.stations.items():
        for track in tracks:
            for segment in net.track_segments(track):
                station_of[segment] = name
    events: list[tuple[int, str]] = []
    previous: set[str] = set()
    for step, occupied in enumerate(trajectory.steps):
        current = {station_of[e] for e in occupied if e in station_of}
        for station in sorted(current - previous):
            events.append((step, station))
        previous = current
    return events


def render_timetable(
    net: DiscreteNetwork, solution: Solution, r_t_min: float
) -> str:
    """Render all trains' station events as a text timetable."""
    lines: list[str] = []
    for trajectory in solution.trajectories:
        present = trajectory.present_steps
        if not present:
            lines.append(f"train {trajectory.name}: never entered the network")
            continue
        events = station_events(net, trajectory)
        first_step = present[0]
        lines.append(f"train {trajectory.name}")
        for step, station in events:
            if step == first_step:
                kind = "dep"
            elif step == trajectory.arrival_step:
                kind = "arr"
            else:
                kind = "pass"
            lines.append(
                f"  {kind:<5} {station:<12} {_format_time(step, r_t_min)}"
            )
        if trajectory.gone_from is not None:
            lines.append(
                "  left network at "
                f"{_format_time(trajectory.gone_from, r_t_min)}"
            )
    return "\n".join(lines)
