"""Space–time diagrams: where is each train at each step?

Columns are segments grouped by physical track, rows are time steps; each
train is drawn with one character of its name::

    t     appA      appB      platform  staA  staB  through
    0     . . .     . . .     . . .     1 .   2 2   . . .
    1     . 1 .     . 2 2     . . .     . .   . .   . . .
"""

from __future__ import annotations

from repro.encoding.decode import Solution
from repro.network.discretize import DiscreteNetwork


def render_spacetime(net: DiscreteNetwork, solution: Solution) -> str:
    """Render the per-step occupancy of all trains."""
    track_names = sorted(net.network.tracks)
    groups = [(name, net.track_segments(name)) for name in track_names]

    occupant: list[dict[int, str]] = [dict() for _ in range(solution.t_max)]
    for trajectory in solution.trajectories:
        symbol = trajectory.name[-1]
        for t, occupied in enumerate(trajectory.steps):
            for e in occupied:
                occupant[t][e] = symbol

    header_cells = ["t".ljust(4)]
    for name, segs in groups:
        width = 2 * len(segs) - 1
        header_cells.append(name[:width].ljust(width))
    lines = ["  ".join(header_cells)]
    for t in range(solution.t_max):
        cells = [str(t).ljust(4)]
        for _, segs in groups:
            marks = [occupant[t].get(e, ".") for e in segs]
            cells.append(" ".join(marks))
        lines.append("  ".join(cells))
    return "\n".join(lines)
