"""Table-I-style formatting of task results."""

from __future__ import annotations

from repro.tasks.result import TaskResult

_HEADER = (
    f"{'Task':<14}{'Var.':>8}{'Sat.':>6}{'TTD/VSS':>9}"
    f"{'Time Steps':>12}{'Runtime [s]':>13}"
)


def format_task_result(result: TaskResult) -> str:
    """One Table I row."""
    steps = str(result.time_steps) if result.time_steps is not None else "-"
    return (
        f"{result.task:<14}{result.variables:>8}"
        f"{'Yes' if result.satisfiable else 'No':>6}"
        f"{result.num_sections:>9}{steps:>12}{result.runtime_s:>13.2f}"
    )


def format_table1(
    groups: list[tuple[str, list[TaskResult]]],
) -> str:
    """The full Table I: named groups of task-result rows.

    ``groups`` is a list of ``(caption, results)`` pairs, one per network.
    """
    lines = [_HEADER, "-" * len(_HEADER)]
    for caption, results in groups:
        lines.append(caption)
        for result in results:
            lines.append(format_task_result(result))
    return "\n".join(lines)
