"""ASCII visualisation of networks, layouts, and solutions.

* :func:`render_layout` — TTD/VSS section diagram of a layout,
* :func:`render_spacetime` — train positions over time (one row per step),
* :func:`format_table1` — Table-I-style result table.
"""

from repro.viz.layout import render_layout, render_network_summary
from repro.viz.report import format_table1, format_task_result
from repro.viz.spacetime import render_spacetime
from repro.viz.timetable import render_timetable, station_events

__all__ = [
    "render_layout",
    "render_network_summary",
    "render_spacetime",
    "render_timetable",
    "station_events",
    "format_table1",
    "format_task_result",
]
