"""Fluent construction API for railway networks.

Example — a tiny single-track line with a two-track passing station::

    net = (
        NetworkBuilder()
        .boundary("A")
        .switch("p1")
        .switch("p2")
        .boundary("B")
        .track("A", "p1", length_km=3.0, ttd="TTD1")
        .track("p1", "p2", length_km=1.0, ttd="TTD2", name="through")
        .track("p1", "p2", length_km=1.0, ttd="TTD3", name="platform")
        .track("p2", "B", length_km=3.0, ttd="TTD4")
        .station("A", ["A-p1"])
        .station("C", ["platform"])
        .station("B", ["p2-B"])
        .build()
    )
"""

from __future__ import annotations

from repro.network.topology import (
    NetworkError,
    Node,
    NodeKind,
    RailwayNetwork,
    Track,
)


class NetworkBuilder:
    """Incrementally assembles a :class:`RailwayNetwork`."""

    def __init__(self) -> None:
        self._nodes: list[Node] = []
        self._node_names: set[str] = set()
        self._tracks: list[Track] = []
        self._track_names: set[str] = set()
        self._stations: dict[str, list[str]] = {}

    # -- nodes -----------------------------------------------------------

    def node(self, name: str,
             kind: NodeKind = NodeKind.LINK) -> NetworkBuilder:
        """Add a node of the given kind."""
        if name in self._node_names:
            raise NetworkError(f"duplicate node {name!r}")
        self._nodes.append(Node(name, kind))
        self._node_names.add(name)
        return self

    def boundary(self, name: str) -> NetworkBuilder:
        """Add a network-boundary node (trains enter/leave here)."""
        return self.node(name, NodeKind.BOUNDARY)

    def switch(self, name: str) -> NetworkBuilder:
        """Add a switch (point) node."""
        return self.node(name, NodeKind.SWITCH)

    def link(self, name: str) -> NetworkBuilder:
        """Add a plain link node (e.g. an axle-counter location)."""
        return self.node(name, NodeKind.LINK)

    # -- tracks ----------------------------------------------------------

    def track(
        self,
        node_a: str,
        node_b: str,
        length_km: float,
        ttd: str,
        name: str | None = None,
    ) -> NetworkBuilder:
        """Add a track between two existing nodes.

        ``name`` defaults to ``"{node_a}-{node_b}"``.
        """
        for endpoint in (node_a, node_b):
            if endpoint not in self._node_names:
                raise NetworkError(
                    f"track references unknown node {endpoint!r}; "
                    "declare nodes before tracks"
                )
        track_name = name if name is not None else f"{node_a}-{node_b}"
        if track_name in self._track_names:
            raise NetworkError(f"duplicate track {track_name!r}")
        self._tracks.append(Track(track_name, node_a, node_b, length_km, ttd))
        self._track_names.add(track_name)
        return self

    def line(
        self,
        node_names: list[str],
        length_km: float,
        ttd: str,
        name_prefix: str | None = None,
    ) -> NetworkBuilder:
        """Add a run of equal-length tracks through the listed nodes.

        All tracks share the TTD ``ttd``; each has length ``length_km``.
        Intermediate nodes must already exist.
        """
        if len(node_names) < 2:
            raise NetworkError("a line needs at least two nodes")
        for i in range(len(node_names) - 1):
            name = None
            if name_prefix is not None:
                name = f"{name_prefix}.{i}"
            self.track(node_names[i], node_names[i + 1], length_km, ttd, name)
        return self

    # -- stations ---------------------------------------------------------

    def station(self, name: str, track_names: list[str]) -> NetworkBuilder:
        """Declare a station with the given platform tracks."""
        if name in self._stations:
            raise NetworkError(f"duplicate station {name!r}")
        self._stations[name] = list(track_names)
        return self

    # -- finish ------------------------------------------------------------

    def build(self) -> RailwayNetwork:
        """Validate and return the network."""
        return RailwayNetwork(self._nodes, self._tracks, self._stations)
