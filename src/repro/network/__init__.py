"""Railway infrastructure modelling.

This package provides the track-network substrate of the paper (§III-A):

* :mod:`repro.network.topology` — stations, switches, tracks, and TTD
  (trackside train detection) sections at the physical level,
* :mod:`repro.network.builder` — a fluent construction API,
* :mod:`repro.network.discretize` — partitioning tracks into segments of
  length ``r_s`` yielding the graph ``G=(V,E)`` of the symbolic formulation,
* :mod:`repro.network.paths` — the graph queries the encoding needs
  (``chains``, ``reachable``, ``between``, ``paths``),
* :mod:`repro.network.sections` — VSS layouts (sets of border nodes) and
  their validation/section counting,
* :mod:`repro.network.io` — JSON serialisation.
"""

from repro.network.builder import NetworkBuilder
from repro.network.discretize import DiscreteNetwork, Segment
from repro.network.io import network_from_json, network_to_json
from repro.network.sections import VSSLayout
from repro.network.topology import Node, NodeKind, RailwayNetwork, Track

__all__ = [
    "Node",
    "NodeKind",
    "Track",
    "RailwayNetwork",
    "NetworkBuilder",
    "DiscreteNetwork",
    "Segment",
    "VSSLayout",
    "network_to_json",
    "network_from_json",
]
