"""Spatial discretisation: tracks -> segment graph ``G=(V,E)``.

Following §III-A of the paper, every track is partitioned into segments of
(approximately) the spatial resolution ``r_s``; segment boundaries — together
with the original nodes — become the vertices of the graph ``G``, i.e. the
*potential VSS borders*.  TTD boundaries, switches, and network boundaries
are *forced* borders: they always separate sections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import NetworkError, NodeKind, RailwayNetwork


@dataclass(frozen=True)
class Segment:
    """One edge of the discretised graph: a slice of a physical track.

    Attributes:
        id: dense integer id (index into ``DiscreteNetwork.segments``).
        track: name of the owning physical track.
        index: position of this slice within the track (0-based, from
            ``track.node_a`` towards ``track.node_b``).
        u / v: vertex ids of the two endpoints.
        length_km: slice length.
        ttd: TTD section this slice belongs to (inherited from the track).
    """

    id: int
    track: str
    index: int
    u: int
    v: int
    length_km: float
    ttd: str


class DiscreteNetwork:
    """The graph ``G=(V,E)`` of the symbolic formulation.

    Vertices are integers; ``0 .. len(node_names)-1`` are the original
    topology nodes (see ``node_names``), the rest are interior segment
    boundaries created by the discretisation.
    """

    def __init__(self, network: RailwayNetwork, r_s_km: float):
        if r_s_km <= 0:
            raise NetworkError(f"spatial resolution must be > 0, got {r_s_km}")
        self.network = network
        self.r_s_km = r_s_km

        self.node_names: list[str] = sorted(network.nodes)
        self._node_id: dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)
        }
        next_vertex = len(self.node_names)

        self.segments: list[Segment] = []
        self._track_segments: dict[str, list[int]] = {}
        for track_name in sorted(network.tracks):
            track = network.tracks[track_name]
            count = max(1, round(track.length_km / r_s_km))
            slice_length = track.length_km / count
            ids: list[int] = []
            u = self._node_id[track.node_a]
            for index in range(count):
                if index == count - 1:
                    v = self._node_id[track.node_b]
                else:
                    v = next_vertex
                    next_vertex += 1
                segment = Segment(
                    id=len(self.segments),
                    track=track_name,
                    index=index,
                    u=u,
                    v=v,
                    length_km=slice_length,
                    ttd=track.ttd,
                )
                self.segments.append(segment)
                ids.append(segment.id)
                u = v
            self._track_segments[track_name] = ids
        self.num_vertices = next_vertex

        # Incidence: vertex -> segment ids.
        self.segments_at: list[list[int]] = [
            [] for _ in range(self.num_vertices)
        ]
        for segment in self.segments:
            self.segments_at[segment.u].append(segment.id)
            self.segments_at[segment.v].append(segment.id)

        # Segment adjacency (two segments sharing a vertex).
        self.seg_neighbours: list[list[int]] = [[] for _ in self.segments]
        for incident in self.segments_at:
            for a in incident:
                for b in incident:
                    if a != b:
                        self.seg_neighbours[a].append(b)

        # TTD bookkeeping.
        self.ttd_of: list[str] = [segment.ttd for segment in self.segments]
        self.ttd_segments: dict[str, list[int]] = {}
        for segment in self.segments:
            self.ttd_segments.setdefault(segment.ttd, []).append(segment.id)

        self.forced_borders: frozenset[int] = self._compute_forced_borders()

    # -- derived info ------------------------------------------------------

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def num_ttds(self) -> int:
        return len(self.ttd_segments)

    def vertex_of_node(self, node_name: str) -> int:
        """Vertex id of an original topology node."""
        try:
            return self._node_id[node_name]
        except KeyError:
            raise NetworkError(f"unknown node {node_name!r}") from None

    def track_segments(self, track_name: str) -> list[int]:
        """Segment ids of a physical track, in order from node_a to node_b."""
        try:
            return list(self._track_segments[track_name])
        except KeyError:
            raise NetworkError(f"unknown track {track_name!r}") from None

    def station_segments(self, station: str) -> list[int]:
        """All segment ids belonging to a station's platform tracks."""
        result: list[int] = []
        for track in self.network.station_tracks(station):
            result.extend(self._track_segments[track.name])
        return result

    def boundary_segments(self) -> frozenset[int]:
        """Segments touching a network-boundary node (where trains can
        physically enter or leave the modelled network)."""
        from repro.network.topology import NodeKind

        result: set[int] = set()
        for name, node in self.network.nodes.items():
            if node.kind is NodeKind.BOUNDARY:
                result.update(self.segments_at[self._node_id[name]])
        return frozenset(result)

    def border_candidates(self) -> list[int]:
        """Vertices that may carry a ``border_v`` variable: all of them.

        Forced borders (see ``forced_borders``) are pinned to true by the
        encoder; the genuinely free choices are the interior vertices.
        """
        return list(range(self.num_vertices))

    def free_border_candidates(self) -> list[int]:
        """Vertices whose border status is a genuine design choice."""
        return [
            vertex
            for vertex in range(self.num_vertices)
            if vertex not in self.forced_borders
        ]

    def _compute_forced_borders(self) -> frozenset[int]:
        forced: set[int] = set()
        for name, node in self.network.nodes.items():
            vertex = self._node_id[name]
            if node.kind in (NodeKind.SWITCH, NodeKind.BOUNDARY):
                forced.add(vertex)
        # Any vertex joining segments of different TTDs is a TTD border, and
        # dead ends (degree 1) are trivially borders as well.
        for vertex in range(self.num_vertices):
            ttds = {self.segments[s].ttd for s in self.segments_at[vertex]}
            if len(ttds) > 1 or len(self.segments_at[vertex]) == 1:
                forced.add(vertex)
        return frozenset(forced)

    def __repr__(self) -> str:
        return (
            f"DiscreteNetwork({self.num_vertices} vertices, "
            f"{self.num_segments} segments, r_s={self.r_s_km} km)"
        )
