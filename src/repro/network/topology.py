"""Physical railway topology: nodes, tracks, stations, TTD sections.

The model follows the paper's abstraction level:

* A *node* is a logical connection point — a switch (point), an axle-counter
  location, or a network boundary (where trains enter/leave, typically a
  station end).
* A *track* is a stretch of rail between two nodes with a length in km.
* A *TTD section* groups one or more consecutive tracks; its boundaries carry
  the physical train-detection hardware.  Within a TTD, ETCS Level 3 may
  later introduce virtual subsections (VSS) — that is what the whole paper
  is about.
* A *station* names one or more tracks as platform tracks where trains may
  start, stop, or end their journey.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NetworkError(Exception):
    """Raised for structurally invalid railway networks."""


class NodeKind(enum.Enum):
    """Role of a connection point in the physical layout."""

    BOUNDARY = "boundary"  # network edge: trains appear/disappear here
    SWITCH = "switch"  # a point connecting three (or more) tracks
    LINK = "link"  # plain connector / axle-counter location


@dataclass(frozen=True)
class Node:
    """A logical connection point between tracks."""

    name: str
    kind: NodeKind = NodeKind.LINK

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("node name must be non-empty")


@dataclass(frozen=True)
class Track:
    """A stretch of rail between two nodes.

    Attributes:
        name: unique track identifier.
        node_a / node_b: endpoint node names.
        length_km: physical length (> 0).
        ttd: name of the TTD section this track belongs to.  Consecutive
            tracks may share a TTD; switches must sit on TTD boundaries.
    """

    name: str
    node_a: str
    node_b: str
    length_km: float
    ttd: str

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("track name must be non-empty")
        if self.node_a == self.node_b:
            raise NetworkError(f"track {self.name!r} is a self-loop")
        if self.length_km <= 0:
            raise NetworkError(
                f"track {self.name!r} has non-positive length {self.length_km}"
            )

    def other_end(self, node: str) -> str:
        """The endpoint opposite to ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise NetworkError(
            f"node {node!r} is not an endpoint of {self.name!r}"
        )


class RailwayNetwork:
    """An immutable-after-validation railway network.

    Build instances through :class:`repro.network.builder.NetworkBuilder`
    (direct construction is possible but the builder is friendlier).
    """

    def __init__(
        self,
        nodes: list[Node],
        tracks: list[Track],
        stations: dict[str, list[str]] | None = None,
    ):
        self.nodes: dict[str, Node] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise NetworkError(f"duplicate node {node.name!r}")
            self.nodes[node.name] = node
        self.tracks: dict[str, Track] = {}
        for track in tracks:
            if track.name in self.tracks:
                raise NetworkError(f"duplicate track {track.name!r}")
            self.tracks[track.name] = track
        # station name -> list of platform track names
        self.stations: dict[str, list[str]] = dict(stations or {})
        self._adjacency: dict[str, list[str]] = {n: [] for n in self.nodes}
        for track in tracks:
            for endpoint in (track.node_a, track.node_b):
                if endpoint not in self.nodes:
                    raise NetworkError(
                        f"track {track.name!r} references unknown node "
                        f"{endpoint!r}"
                    )
            self._adjacency[track.node_a].append(track.name)
            self._adjacency[track.node_b].append(track.name)
        self.validate()

    # -- queries ---------------------------------------------------------

    def tracks_at(self, node_name: str) -> list[Track]:
        """All tracks incident to a node."""
        return [self.tracks[t] for t in self._adjacency[node_name]]

    def degree(self, node_name: str) -> int:
        """Number of tracks incident to a node."""
        return len(self._adjacency[node_name])

    def ttd_sections(self) -> dict[str, list[Track]]:
        """Map each TTD name to its member tracks."""
        sections: dict[str, list[Track]] = {}
        for track in self.tracks.values():
            sections.setdefault(track.ttd, []).append(track)
        return sections

    @property
    def num_ttds(self) -> int:
        """Number of TTD sections in the network."""
        return len({track.ttd for track in self.tracks.values()})

    @property
    def total_length_km(self) -> float:
        """Sum of all track lengths."""
        return sum(track.length_km for track in self.tracks.values())

    def station_tracks(self, station: str) -> list[Track]:
        """Platform tracks of a station."""
        try:
            names = self.stations[station]
        except KeyError:
            raise NetworkError(f"unknown station {station!r}") from None
        return [self.tracks[name] for name in names]

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetworkError` if broken.

        Invariants: boundary nodes have degree 1, switches degree >= 3, link
        nodes degree 2; every TTD is a connected path of tracks with no
        switch in its interior; stations reference existing tracks; the
        network is connected.
        """
        if not self.tracks:
            raise NetworkError("network has no tracks")
        for name, node in self.nodes.items():
            degree = self.degree(name)
            if node.kind is NodeKind.BOUNDARY and degree != 1:
                raise NetworkError(
                    f"boundary node {name!r} has degree {degree}, expected 1"
                )
            if node.kind is NodeKind.SWITCH and degree < 3:
                raise NetworkError(
                    f"switch {name!r} has degree {degree}, expected >= 3"
                )
            if node.kind is NodeKind.LINK and degree != 2:
                raise NetworkError(
                    f"link node {name!r} has degree {degree}, expected 2"
                )
        for station, track_names in self.stations.items():
            if not track_names:
                raise NetworkError(f"station {station!r} has no tracks")
            for track_name in track_names:
                if track_name not in self.tracks:
                    raise NetworkError(
                        f"station {station!r} references unknown track "
                        f"{track_name!r}"
                    )
        self._validate_ttds()
        self._validate_connected()

    def _validate_ttds(self) -> None:
        for ttd, tracks in self.ttd_sections().items():
            if len(tracks) == 1:
                continue
            # Interior nodes of a multi-track TTD must be links shared by
            # exactly two member tracks (the TTD forms a path).
            incidence: dict[str, int] = {}
            for track in tracks:
                incidence[track.node_a] = incidence.get(track.node_a, 0) + 1
                incidence[track.node_b] = incidence.get(track.node_b, 0) + 1
            ends = [n for n, count in incidence.items() if count == 1]
            interior = [n for n, count in incidence.items() if count == 2]
            if len(ends) != 2 or len(ends) + len(interior) != len(incidence):
                raise NetworkError(f"TTD {ttd!r} does not form a simple path")
            for name in interior:
                if self.nodes[name].kind is NodeKind.SWITCH:
                    raise NetworkError(
                        f"TTD {ttd!r} contains switch {name!r} in its "
                        "interior; switches must be TTD borders"
                    )

    def _validate_connected(self) -> None:
        start = next(iter(self.nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for track in self.tracks_at(node):
                neighbour = track.other_end(node)
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if len(seen) != len(self.nodes):
            missing = sorted(set(self.nodes) - seen)
            raise NetworkError(
                f"network is disconnected; unreachable: {missing}"
            )

    def __repr__(self) -> str:
        return (
            f"RailwayNetwork({len(self.nodes)} nodes, {len(self.tracks)} "
            f"tracks, {self.num_ttds} TTDs, {self.total_length_km:.1f} km)"
        )
