"""Graph queries used by the symbolic formulation.

The paper's constraints (§III-B) are phrased with four graph notions over
``G=(V,E)``:

* ``chains(l)`` — all chains of ``l`` connected segments (train footprints),
* ``reachable(e, d)`` — segments reachable from ``e`` within ``d`` steps,
* ``between(e, f)`` — vertices on the chain connecting two segments of the
  same TTD (candidate VSS borders separating two trains),
* ``paths(e, f, max)`` — segments lying strictly between ``e`` and ``f`` on
  any bounded path (used by the no-passing-through constraint).

All functions operate on a :class:`repro.network.discretize.DiscreteNetwork`.
"""

from __future__ import annotations

from collections import deque

from repro.network.discretize import DiscreteNetwork
from repro.network.topology import NetworkError


def chains(net: DiscreteNetwork, length: int) -> list[tuple[int, ...]]:
    """All chains of ``length`` connected segments, as ordered tuples.

    A chain is a simple path in the "segment graph": consecutive segments
    share a vertex and no vertex is visited twice.  Each chain is returned
    once, in canonical orientation (the lexicographically smaller of the two
    directions).
    """
    if length < 1:
        raise NetworkError(f"chain length must be >= 1, got {length}")
    if length == 1:
        return [(segment.id,) for segment in net.segments]
    result: set[tuple[int, ...]] = set()
    for start in range(net.num_segments):
        seg = net.segments[start]
        # Grow in both directions; fix the "entry vertex" to avoid U-turns.
        for entry in (seg.u, seg.v):
            _extend_chain(net, [start], {seg.u, seg.v}, entry, length, result)
    return sorted(result)


def _extend_chain(
    net: DiscreteNetwork,
    path: list[int],
    used_vertices: set[int],
    head: int,
    target_len: int,
    result: set[tuple[int, ...]],
) -> None:
    """DFS helper: extend ``path`` across vertex ``head``."""
    if len(path) == target_len:
        candidate = tuple(path)
        reverse = tuple(reversed(path))
        result.add(min(candidate, reverse))
        return
    for nxt in net.segments_at[head]:
        if nxt in path:
            continue
        segment = net.segments[nxt]
        new_head = segment.v if segment.u == head else segment.u
        if new_head in used_vertices:
            continue
        used_vertices.add(new_head)
        path.append(nxt)
        _extend_chain(net, path, used_vertices, new_head, target_len, result)
        path.pop()
        used_vertices.discard(new_head)


def segment_distances(net: DiscreteNetwork, source: int) -> list[int]:
    """BFS hop distances from ``source`` to every segment (-1 unreachable)."""
    dist = [-1] * net.num_segments
    dist[source] = 0
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbour in net.seg_neighbours[current]:
            if dist[neighbour] == -1:
                dist[neighbour] = dist[current] + 1
                queue.append(neighbour)
    return dist


def reachable(net: DiscreteNetwork, source: int, max_steps: int) -> list[int]:
    """Segments reachable from ``source`` within ``max_steps`` hops.

    Includes ``source`` itself (a train may stand still), per the paper's
    ``reachable(e, tr)`` definition.
    """
    if max_steps < 0:
        raise NetworkError(f"max_steps must be >= 0, got {max_steps}")
    dist = [-1] * net.num_segments
    dist[source] = 0
    queue = deque([source])
    result = [source]
    while queue:
        current = queue.popleft()
        if dist[current] >= max_steps:
            continue
        for neighbour in net.seg_neighbours[current]:
            if dist[neighbour] == -1:
                dist[neighbour] = dist[current] + 1
                result.append(neighbour)
                queue.append(neighbour)
    return result


class TTDPathIndex:
    """Pre-computed positions of segments along each (path-shaped) TTD.

    Supports the ``between(e, f)`` query: the vertices strictly between two
    segments of the same TTD, which are exactly the candidate VSS borders
    that can separate two trains sharing that TTD.
    """

    def __init__(self, net: DiscreteNetwork):
        self._net = net
        # ttd -> ordered list of segment ids along the path
        self._order: dict[str, list[int]] = {}
        # segment id -> position within its TTD path
        self._position: dict[int, int] = {}
        # ttd -> "joint" vertices: joint[i] connects order[i], order[i+1]
        self._joints: dict[str, list[int]] = {}
        for ttd, members in net.ttd_segments.items():
            order = self._order_path(members)
            self._order[ttd] = order
            for position, seg in enumerate(order):
                self._position[seg] = position
            joints: list[int] = []
            for i in range(len(order) - 1):
                a = net.segments[order[i]]
                b = net.segments[order[i + 1]]
                shared = {a.u, a.v} & {b.u, b.v}
                if len(shared) != 1:
                    raise NetworkError(
                        f"TTD {ttd!r} is not a simple path at segments "
                        f"{order[i]}/{order[i + 1]}"
                    )
                joints.append(shared.pop())
            self._joints[ttd] = joints

    def _order_path(self, members: list[int]) -> list[int]:
        """Order a TTD's segments along their path."""
        net = self._net
        if len(members) == 1:
            return list(members)
        member_set = set(members)
        # Vertex incidence restricted to the TTD.
        incidence: dict[int, list[int]] = {}
        for seg_id in members:
            seg = net.segments[seg_id]
            incidence.setdefault(seg.u, []).append(seg_id)
            incidence.setdefault(seg.v, []).append(seg_id)
        endpoints = [v for v, segs in incidence.items() if len(segs) == 1]
        if len(endpoints) != 2:
            raise NetworkError("TTD does not form a simple path")
        # Walk from one endpoint.
        order: list[int] = []
        vertex = endpoints[0]
        previous = -1
        while len(order) < len(members):
            candidates = [
                s for s in incidence[vertex]
                if s != previous and s in member_set
            ]
            if len(candidates) != 1:
                raise NetworkError("TTD does not form a simple path")
            seg_id = candidates[0]
            order.append(seg_id)
            seg = net.segments[seg_id]
            vertex = seg.v if seg.u == vertex else seg.u
            previous = seg_id
        return order

    def between(self, e: int, f: int) -> list[int]:
        """Vertices strictly between segments ``e`` and ``f`` (same TTD)."""
        ttd_e = self._net.ttd_of[e]
        ttd_f = self._net.ttd_of[f]
        if ttd_e != ttd_f:
            raise NetworkError(
                f"segments {e} and {f} are in different TTDs "
                f"({ttd_e!r} vs {ttd_f!r})"
            )
        pos_e = self._position[e]
        pos_f = self._position[f]
        if pos_e > pos_f:
            pos_e, pos_f = pos_f, pos_e
        return self._joints[ttd_e][pos_e:pos_f]

    def ordered_segments(self, ttd: str) -> list[int]:
        """Segments of a TTD in path order."""
        return list(self._order[ttd])


def interior_segments_of_paths(
    net: DiscreteNetwork, e: int, f: int, max_edges: int
) -> set[int]:
    """Union of *interior* segments over all simple paths ``e -> f``.

    A path is a chain of at most ``max_edges`` segments starting at ``e`` and
    ending at ``f``; its interior excludes both endpoints.  This implements
    the paper's ``paths(e, f, tr)`` (used to forbid trains passing through
    one another).
    """
    if e == f:
        return set()
    interiors: set[int] = set()
    seg_e = net.segments[e]

    def dfs(current: int, head: int, visited: list[int],
            used: set[int]) -> None:
        if len(visited) > max_edges:
            return
        for nxt in net.seg_neighbours[current]:
            if nxt in visited:
                continue
            segment = net.segments[nxt]
            if segment.u == head:
                new_head = segment.v
            elif segment.v == head:
                new_head = segment.u
            else:
                continue  # neighbour via the other endpoint of `current`
            if nxt == f:
                interiors.update(visited[1:])
                continue
            if new_head in used:
                continue
            if len(visited) + 1 >= max_edges:
                continue
            used.add(new_head)
            visited.append(nxt)
            dfs(nxt, new_head, visited, used)
            visited.pop()
            used.discard(new_head)

    for entry in (seg_e.u, seg_e.v):
        dfs(e, entry, [e], {seg_e.u, seg_e.v})
    return interiors
