"""VSS layouts: which vertices of ``G`` separate virtual subsections.

A layout is a set of *border vertices*.  Forced borders (TTD boundaries,
switches, network boundaries) are always included; the free interior vertices
are the design choice the paper's generation/optimization tasks make.
"""

from __future__ import annotations

from repro.network.discretize import DiscreteNetwork
from repro.network.topology import NetworkError


class VSSLayout:
    """An assignment of the ``border_v`` variables for a discrete network."""

    def __init__(self, net: DiscreteNetwork,
                 borders: set[int] | frozenset[int]):
        missing = net.forced_borders - set(borders)
        if missing:
            raise NetworkError(
                "layout is missing forced borders at vertices "
                f"{sorted(missing)}"
            )
        out_of_range = [v for v in borders if not 0 <= v < net.num_vertices]
        if out_of_range:
            raise NetworkError(f"unknown vertices in layout: {out_of_range}")
        self.net = net
        self.borders = frozenset(borders)

    @classmethod
    def pure_ttd(cls, net: DiscreteNetwork) -> "VSSLayout":
        """The layout with no virtual subsections (TTD borders only)."""
        return cls(net, set(net.forced_borders))

    @classmethod
    def finest(cls, net: DiscreteNetwork) -> "VSSLayout":
        """Every vertex a border: each segment is its own VSS."""
        return cls(net, set(range(net.num_vertices)))

    @property
    def added_borders(self) -> frozenset[int]:
        """Borders beyond the forced (TTD) ones — the actual VSS additions."""
        return self.borders - self.net.forced_borders

    def is_border(self, vertex: int) -> bool:
        """Is ``vertex`` a section border under this layout?"""
        return vertex in self.borders

    def sections(self) -> list[list[int]]:
        """Partition the segments into VSS sections.

        Two segments belong to the same section iff they are connected via
        non-border vertices.  The result is sorted for determinism.
        """
        net = self.net
        parent = list(range(net.num_segments))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for vertex in range(net.num_vertices):
            if vertex in self.borders:
                continue
            incident = net.segments_at[vertex]
            for other in incident[1:]:
                union(incident[0], other)

        groups: dict[int, list[int]] = {}
        for seg in range(net.num_segments):
            groups.setdefault(find(seg), []).append(seg)
        return sorted(groups.values())

    @property
    def num_sections(self) -> int:
        """Number of TTD/VSS sections (the paper's Table I column)."""
        return len(self.sections())

    def section_of(self) -> list[int]:
        """Map each segment id to a dense section index."""
        mapping = [0] * self.net.num_segments
        for index, section in enumerate(self.sections()):
            for seg in section:
                mapping[seg] = index
        return mapping

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VSSLayout):
            return NotImplemented
        return self.net is other.net and self.borders == other.borders

    def __hash__(self) -> int:
        return hash((id(self.net), self.borders))

    def __repr__(self) -> str:
        return (
            f"VSSLayout({self.num_sections} sections, "
            f"{len(self.added_borders)} added borders)"
        )
