"""JSON serialisation for railway networks (and schedules, see trains.io).

The format is deliberately plain so networks can be hand-edited::

    {
      "nodes": [{"name": "A", "kind": "boundary"}, ...],
      "tracks": [{"name": "A-p1", "a": "A", "b": "p1",
                  "length_km": 3.0, "ttd": "TTD1"}, ...],
      "stations": {"A": ["A-p1"], ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.network.topology import (
    NetworkError,
    Node,
    NodeKind,
    RailwayNetwork,
    Track,
)


def network_to_json(network: RailwayNetwork) -> str:
    """Serialise a network to a JSON string."""
    payload = {
        "nodes": [
            {"name": node.name, "kind": node.kind.value}
            for node in network.nodes.values()
        ],
        "tracks": [
            {
                "name": track.name,
                "a": track.node_a,
                "b": track.node_b,
                "length_km": track.length_km,
                "ttd": track.ttd,
            }
            for track in network.tracks.values()
        ],
        "stations": network.stations,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def network_from_json(text: str) -> RailwayNetwork:
    """Deserialise a network from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetworkError(f"invalid JSON: {exc}") from exc
    try:
        nodes = [
            Node(entry["name"], NodeKind(entry.get("kind", "link")))
            for entry in payload["nodes"]
        ]
        tracks = [
            Track(
                entry["name"],
                entry["a"],
                entry["b"],
                float(entry["length_km"]),
                entry["ttd"],
            )
            for entry in payload["tracks"]
        ]
        stations = {
            name: list(track_names)
            for name, track_names in payload.get("stations", {}).items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise NetworkError(f"malformed network JSON: {exc}") from exc
    return RailwayNetwork(nodes, tracks, stations)


def save_network(network: RailwayNetwork, path: str | Path) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(network_to_json(network))


def load_network(path: str | Path) -> RailwayNetwork:
    """Read a network from a JSON file."""
    return network_from_json(Path(path).read_text())
