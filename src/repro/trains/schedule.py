"""Train schedules: runs with departures, arrivals, and stops.

A :class:`Schedule` corresponds to one table like Fig. 1b of the paper: per
train a start station, a goal station, a departure time and an arrival time.
Arrival times are interpreted as *deadlines* ("arrive at the goal no later
than"); for the optimization task they are ignored and replaced by the
makespan objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trains.train import Train


class ScheduleError(Exception):
    """Raised for ill-formed schedules."""


@dataclass(frozen=True)
class Stop:
    """An intermediate stop: visit ``station`` within the given window.

    ``earliest_min`` / ``latest_min`` bound the visit time in minutes from
    scenario start (None = unbounded on that side).
    """

    station: str
    earliest_min: float | None = None
    latest_min: float | None = None


@dataclass(frozen=True)
class TrainRun:
    """One scheduled journey of a train.

    Attributes:
        train: the rolling stock.
        start: station name where the run begins.
        goal: station name where the run ends.
        departure_min: departure time in minutes from scenario start.
        arrival_min: arrival deadline in minutes (None = no deadline; the
            optimization task uses this).
        stops: intermediate stops, in visiting order.
    """

    train: Train
    start: str
    goal: str
    departure_min: float
    arrival_min: float | None = None
    stops: tuple[Stop, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.departure_min < 0:
            raise ScheduleError(
                f"train {self.train.name!r}: negative departure time"
            )
        if (self.arrival_min is not None
                and self.arrival_min <= self.departure_min):
            raise ScheduleError(
                f"train {self.train.name!r}: arrival deadline "
                f"{self.arrival_min} not after departure {self.departure_min}"
            )
        if self.start == self.goal:
            raise ScheduleError(
                f"train {self.train.name!r}: start equals goal "
                f"({self.start!r})"
            )


class Schedule:
    """A set of train runs over a common scenario duration."""

    def __init__(self, runs: list[TrainRun], duration_min: float):
        if not runs:
            raise ScheduleError("schedule has no train runs")
        if duration_min <= 0:
            raise ScheduleError(f"non-positive duration {duration_min}")
        names = [run.train.name for run in runs]
        if len(set(names)) != len(names):
            raise ScheduleError(f"duplicate train names in schedule: {names}")
        for run in runs:
            if run.departure_min >= duration_min:
                raise ScheduleError(
                    f"train {run.train.name!r} departs at {run.departure_min} "
                    f"after the scenario ends ({duration_min})"
                )
            if run.arrival_min is not None and run.arrival_min > duration_min:
                raise ScheduleError(
                    f"train {run.train.name!r} arrival deadline "
                    f"{run.arrival_min} exceeds scenario duration "
                    f"{duration_min}"
                )
        self.runs = list(runs)
        self.duration_min = duration_min

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def run_of(self, train_name: str) -> TrainRun:
        """The run of the train with the given name."""
        for run in self.runs:
            if run.train.name == train_name:
                return run
        raise ScheduleError(f"no run for train {train_name!r}")

    def without_deadlines(self) -> "Schedule":
        """Copy of this schedule with all arrival deadlines removed.

        This is the input shape of the optimization task (§III-C): only
        departures and stops are kept; the solver picks the arrivals.
        """
        runs = [
            TrainRun(
                train=run.train,
                start=run.start,
                goal=run.goal,
                departure_min=run.departure_min,
                arrival_min=None,
                stops=run.stops,
            )
            for run in self.runs
        ]
        return Schedule(runs, self.duration_min)

    def __repr__(self) -> str:
        return f"Schedule({len(self.runs)} trains, {self.duration_min} min)"
