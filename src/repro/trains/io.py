"""JSON serialisation for schedules (counterpart of repro.network.io).

Format::

    {
      "duration_min": 5.0,
      "trains": [
        {"name": "1", "length_m": 400, "max_speed_kmh": 180,
         "start": "A", "goal": "B",
         "departure_min": 0.0, "arrival_min": 4.5,
         "stops": [{"station": "C", "earliest_min": 1.0,
                    "latest_min": 3.0}]},
        ...
      ]
    }

``arrival_min`` may be null (open arrival, the optimization task's input);
``stops`` is optional.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trains.schedule import Schedule, ScheduleError, Stop, TrainRun
from repro.trains.train import Train


def schedule_to_json(schedule: Schedule) -> str:
    """Serialise a schedule to a JSON string."""
    payload = {
        "duration_min": schedule.duration_min,
        "trains": [
            {
                "name": run.train.name,
                "length_m": run.train.length_m,
                "max_speed_kmh": run.train.max_speed_kmh,
                "start": run.start,
                "goal": run.goal,
                "departure_min": run.departure_min,
                "arrival_min": run.arrival_min,
                "stops": [
                    {
                        "station": stop.station,
                        "earliest_min": stop.earliest_min,
                        "latest_min": stop.latest_min,
                    }
                    for stop in run.stops
                ],
            }
            for run in schedule.runs
        ],
    }
    return json.dumps(payload, indent=2)


def schedule_from_json(text: str) -> Schedule:
    """Deserialise a schedule from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid JSON: {exc}") from exc
    try:
        runs = []
        for entry in payload["trains"]:
            stops = tuple(
                Stop(
                    station=stop["station"],
                    earliest_min=stop.get("earliest_min"),
                    latest_min=stop.get("latest_min"),
                )
                for stop in entry.get("stops", [])
            )
            runs.append(
                TrainRun(
                    Train(
                        entry["name"],
                        length_m=float(entry["length_m"]),
                        max_speed_kmh=float(entry["max_speed_kmh"]),
                    ),
                    start=entry["start"],
                    goal=entry["goal"],
                    departure_min=float(entry["departure_min"]),
                    arrival_min=(
                        None
                        if entry.get("arrival_min") is None
                        else float(entry["arrival_min"])
                    ),
                    stops=stops,
                )
            )
        duration = float(payload["duration_min"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule JSON: {exc}") from exc
    return Schedule(runs, duration)


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_json(Path(path).read_text())
