"""Trains, schedules, and temporal discretisation.

* :mod:`repro.trains.train` — rolling stock: a train's length and top speed.
* :mod:`repro.trains.schedule` — a schedule is a set of train *runs* (start
  station, goal station, departure time, arrival deadline, optional
  intermediate stops), matching Fig. 1b / Fig. 2b of the paper.
* :mod:`repro.trains.discretize` — conversion of lengths, speeds and times
  into the discrete units of the symbolic formulation (``r_s``, ``r_t``).
"""

from repro.trains.discretize import DiscreteTrainRun, discretize_schedule
from repro.trains.io import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.trains.schedule import Schedule, ScheduleError, Stop, TrainRun
from repro.trains.train import Train

__all__ = [
    "Train",
    "TrainRun",
    "Stop",
    "Schedule",
    "ScheduleError",
    "DiscreteTrainRun",
    "discretize_schedule",
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
]
