"""Temporal/physical discretisation of train runs.

Converts a :class:`repro.trains.schedule.Schedule` into the discrete
quantities the symbolic formulation works with (§III-A):

* train length  -> ``l* = ceil(l_tr / r_s)`` segments,
* train speed   -> segments per time step,
* times         -> time-step indices against the temporal resolution ``r_t``,
* station names -> segment-id sets of the discrete network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.discretize import DiscreteNetwork
from repro.trains.schedule import Schedule, ScheduleError, TrainRun


@dataclass(frozen=True)
class DiscreteStop:
    """A discretised intermediate stop."""

    segments: tuple[int, ...]
    earliest_step: int
    latest_step: int


@dataclass(frozen=True)
class DiscreteTrainRun:
    """A train run in formulation units.

    Attributes:
        run: the original (physical) run.
        index: dense train index used by the encoder.
        length_segments: ``l*`` — footprint size in segments.
        speed_segments: maximum segments travelled per time step (>= 1).
        start_segments / goal_segments: candidate segment ids of the start /
            goal stations.
        departure_step: time step at which the train appears.
        arrival_step: deadline step (inclusive) or None.
        stops: discretised intermediate stops.
    """

    run: TrainRun
    index: int
    length_segments: int
    speed_segments: int
    start_segments: tuple[int, ...]
    goal_segments: tuple[int, ...]
    departure_step: int
    arrival_step: int | None
    stops: tuple[DiscreteStop, ...]

    @property
    def name(self) -> str:
        return self.run.train.name


def discretize_run(
    net: DiscreteNetwork,
    run: TrainRun,
    index: int,
    r_t_min: float,
    t_max: int,
) -> DiscreteTrainRun:
    """Discretise one run against the network and temporal resolution."""
    train = run.train
    length_segments = max(1, math.ceil(train.length_km / net.r_s_km))
    km_per_step = train.max_speed_kmh / 60.0 * r_t_min
    speed_segments = max(1, math.floor(km_per_step / net.r_s_km + 1e-9))

    start_segments = tuple(net.station_segments(run.start))
    goal_segments = tuple(net.station_segments(run.goal))
    if not start_segments:
        raise ScheduleError(f"station {run.start!r} has no segments")
    if not goal_segments:
        raise ScheduleError(f"station {run.goal!r} has no segments")
    if len(start_segments) < length_segments:
        raise ScheduleError(
            f"train {train.name!r} ({length_segments} segments) does not fit "
            f"in start station {run.start!r} ({len(start_segments)} segments)"
        )

    departure_step = int(round(run.departure_min / r_t_min))
    arrival_step = None
    if run.arrival_min is not None:
        arrival_step = int(round(run.arrival_min / r_t_min))
        if arrival_step >= t_max:
            arrival_step = t_max - 1
    if departure_step >= t_max:
        raise ScheduleError(
            f"train {train.name!r} departs at step {departure_step} but the "
            f"scenario only has {t_max} steps"
        )

    stops = []
    for stop in run.stops:
        segments = tuple(net.station_segments(stop.station))
        earliest = (
            0
            if stop.earliest_min is None
            else int(round(stop.earliest_min / r_t_min))
        )
        latest = (
            t_max - 1
            if stop.latest_min is None
            else min(t_max - 1, int(round(stop.latest_min / r_t_min)))
        )
        if earliest > latest:
            raise ScheduleError(
                f"train {train.name!r}: empty stop window at {stop.station!r}"
            )
        stops.append(DiscreteStop(segments, earliest, latest))

    return DiscreteTrainRun(
        run=run,
        index=index,
        length_segments=length_segments,
        speed_segments=speed_segments,
        start_segments=start_segments,
        goal_segments=goal_segments,
        departure_step=departure_step,
        arrival_step=arrival_step,
        stops=tuple(stops),
    )


def discretize_schedule(
    net: DiscreteNetwork, schedule: Schedule, r_t_min: float
) -> tuple[list[DiscreteTrainRun], int]:
    """Discretise a whole schedule; returns ``(runs, t_max)``.

    ``t_max`` is the number of time steps, i.e. the scenario duration divided
    by ``r_t`` (Example 5 of the paper).
    """
    if r_t_min <= 0:
        raise ScheduleError(f"temporal resolution must be > 0, got {r_t_min}")
    t_max = max(1, int(round(schedule.duration_min / r_t_min)))
    runs = [
        discretize_run(net, run, index, r_t_min, t_max)
        for index, run in enumerate(schedule.runs)
    ]
    return runs, t_max
