"""Rolling stock: the physical parameters of a train.

The paper's formulation (§III-A) uses exactly two per-train parameters: the
length ``l_tr`` and the maximum speed ``s_tr``; both are discretised against
the spatial/temporal resolutions in :mod:`repro.trains.discretize`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Train:
    """A train with its physical parameters.

    Attributes:
        name: unique identifier (e.g. "1" or "RE 4711").
        length_m: physical length in metres.
        max_speed_kmh: maximum speed in km/h.
    """

    name: str
    length_m: float
    max_speed_kmh: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("train name must be non-empty")
        if self.length_m <= 0:
            raise ValueError(
                f"train {self.name!r}: length must be > 0, got {self.length_m}"
            )
        if self.max_speed_kmh <= 0:
            raise ValueError(
                f"train {self.name!r}: speed must be > 0, "
                f"got {self.max_speed_kmh}"
            )

    @property
    def length_km(self) -> float:
        """Length in kilometres."""
        return self.length_m / 1000.0
