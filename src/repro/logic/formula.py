"""A small Boolean formula AST with operator overloading.

Formulas are immutable trees.  Python operators build them::

    a, b, c = Var(1), Var(2), Var(3)
    f = (a & b) | ~c
    g = a >> b          # implication
    h = Iff(a, b)       # equivalence

``Var`` wraps a DIMACS variable number (or, negated, a literal).  Conversion
to CNF lives in :mod:`repro.logic.tseitin`.
"""

from __future__ import annotations


class Formula:
    """Base class of all formula nodes."""

    __slots__ = ()

    def __and__(self, other: Formula) -> Formula:
        return And(self, other)

    def __or__(self, other: Formula) -> Formula:
        return Or(self, other)

    def __invert__(self) -> Formula:
        return Not(self)

    def __rshift__(self, other: Formula) -> Formula:
        return Implies(self, other)

    def atoms(self) -> set[int]:
        """The set of variable numbers occurring in the formula."""
        result: set[int] = set()
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                result.add(abs(node.lit))
            elif isinstance(node, Not):
                stack.append(node.child)
            elif isinstance(node, (And, Or)):
                stack.extend(node.children)
            elif isinstance(node, (Implies, Iff)):
                stack.append(node.left)
                stack.append(node.right)
        return result

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a total assignment ``{var: bool}``."""
        raise NotImplementedError


class _Const(Formula):
    """The constants true and false (singletons TRUE / FALSE)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return self.value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Const(True)
FALSE = _Const(False)


class Var(Formula):
    """A literal: a DIMACS variable number, possibly negated."""

    __slots__ = ("lit",)

    def __init__(self, lit: int):
        if not isinstance(lit, int) or lit == 0:
            raise ValueError(f"invalid literal {lit!r}")
        self.lit = lit

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        value = assignment[abs(self.lit)]
        return value if self.lit > 0 else not value

    def __repr__(self) -> str:
        return f"Var({self.lit})"


class Not(Formula):
    """Negation."""

    __slots__ = ("child",)

    def __init__(self, child: Formula):
        self.child = child

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return not self.child.evaluate(assignment)

    def __repr__(self) -> str:
        return f"Not({self.child!r})"


class And(Formula):
    """N-ary conjunction (nested Ands are flattened)."""

    __slots__ = ("children",)

    def __init__(self, *children: Formula):
        flat: list[Formula] = []
        for child in children:
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = tuple(flat)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return all(child.evaluate(assignment) for child in self.children)

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.children))})"


class Or(Formula):
    """N-ary disjunction (nested Ors are flattened)."""

    __slots__ = ("children",)

    def __init__(self, *children: Formula):
        flat: list[Formula] = []
        for child in children:
            if isinstance(child, Or):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = tuple(flat)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return any(child.evaluate(assignment) for child in self.children)

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.children))})"


class Implies(Formula):
    """Implication ``left -> right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        self.left = left
        self.right = right

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return (not self.left.evaluate(assignment)) or self.right.evaluate(
            assignment
        )

    def __repr__(self) -> str:
        return f"Implies({self.left!r}, {self.right!r})"


class Iff(Formula):
    """Equivalence ``left <-> right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        self.left = left
        self.right = right

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return (self.left.evaluate(assignment)
                == self.right.evaluate(assignment))

    def __repr__(self) -> str:
        return f"Iff({self.left!r}, {self.right!r})"
