"""Named variable pools and CNF clause containers.

The encoder in :mod:`repro.encoding` creates thousands of variables such as
``occupies[tr=2][e=14][t=7]``; :class:`VarPool` maps such structured names to
DIMACS variable numbers and back, and :class:`CNF` accumulates clauses before
they are handed to a :class:`repro.sat.Solver`.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.sat.solver import Solver


class VarPool:
    """Allocates DIMACS variable numbers for hashable names.

    Names are arbitrary hashable keys (tuples like ``("occupies", 2, 14, 7)``
    by convention).  Anonymous auxiliary variables can be allocated with
    :meth:`new_aux` and are counted separately, so results can report
    "primary" variable counts the way the paper's Table I does.
    """

    def __init__(self) -> None:
        self._by_name: dict[Hashable, int] = {}
        self._by_index: dict[int, Hashable] = {}
        self._next = 1
        self._aux_count = 0

    @property
    def num_vars(self) -> int:
        """Total number of variables allocated (named + auxiliary)."""
        return self._next - 1

    @property
    def num_named(self) -> int:
        """Number of named (primary) variables."""
        return len(self._by_name)

    @property
    def num_aux(self) -> int:
        """Number of anonymous auxiliary variables."""
        return self._aux_count

    def var(self, name: Hashable) -> int:
        """Return the variable number for ``name``, allocating if new."""
        index = self._by_name.get(name)
        if index is None:
            index = self._next
            self._next += 1
            self._by_name[name] = index
            self._by_index[index] = name
        return index

    def lookup(self, name: Hashable) -> int | None:
        """Variable number for ``name`` if it exists, else None."""
        return self._by_name.get(name)

    def name_of(self, index: int) -> Hashable | None:
        """Name of a variable number (None for auxiliary variables)."""
        return self._by_index.get(index)

    def new_aux(self) -> int:
        """Allocate an anonymous auxiliary variable."""
        index = self._next
        self._next += 1
        self._aux_count += 1
        return index

    def __contains__(self, name: Hashable) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return self.num_vars


class CNF:
    """A growing conjunction of clauses tied to a :class:`VarPool`."""

    def __init__(self, pool: VarPool | None = None):
        self.pool = pool if pool is not None else VarPool()
        self.clauses: list[list[int]] = []

    @property
    def num_vars(self) -> int:
        return self.pool.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def add(self, clause: Iterable[int]) -> None:
        """Add one clause (an iterable of non-zero literals)."""
        lits = list(clause)
        if any(lit == 0 for lit in lits):
            raise ValueError(f"clause contains literal 0: {lits}")
        self.clauses.append(lits)

    def add_all(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add many clauses."""
        for clause in clauses:
            self.add(clause)

    def add_unit(self, lit: int) -> None:
        """Add a unit clause fixing ``lit`` to true."""
        self.add([lit])

    def add_implication(
        self, antecedent: int, consequent: Iterable[int]
    ) -> None:
        """Add ``antecedent -> (c1 v c2 v ...)`` as one clause."""
        self.add([-antecedent, *consequent])

    def to_solver(self, solver: Solver | None = None) -> Solver:
        """Load all clauses into a solver (a fresh one by default)."""
        solver = solver if solver is not None else Solver()
        solver.ensure_var(max(self.num_vars, 1))
        for clause in self.clauses:
            solver.add_clause(clause)
        return solver

    def literals_size(self) -> int:
        """Total number of literal occurrences (encoding size measure)."""
        return sum(len(clause) for clause in self.clauses)


def clauses_satisfied(
    clauses: Iterable[Iterable[int]], true_vars: set[int]
) -> bool:
    """Whether an assignment satisfies every clause.

    ``true_vars`` is the set of variables assigned true; every other
    variable counts as false (the closed-world reading of a true-literal
    model).  This is the O(formula) certificate check behind warm
    starts: a cached model is only ever *reused* after it has been
    re-evaluated against the current clause set, so replaying a witness
    from a delta-close instance can never smuggle in a stale verdict.
    """
    for clause in clauses:
        for lit in clause:
            if (lit > 0) == (abs(lit) in true_vars):
                break
        else:
            return False
    return True
