"""Cardinality constraint encodings.

The ETCS encoding needs "exactly one chain per train per time step"
(§III-B of the paper) and the optimization engines need "at most k of these
soft literals" bounds; this module provides the standard CNF encodings:

* at-most-one: pairwise (quadratic, no auxiliaries), ladder/sequential
  (linear, n-1 auxiliaries), commander (recursive grouping),
* at-most-k / at-least-k / exactly-k via Sinz's sequential counter,
* (the incremental totalizer lives in :mod:`repro.logic.totalizer`).

All functions take literals (non-zero ints) and append clauses to a
:class:`repro.logic.cnf.CNF`.
"""

from __future__ import annotations

from repro.logic.cnf import CNF


def at_least_one(cnf: CNF, lits: list[int]) -> None:
    """At least one of ``lits`` is true (a single clause)."""
    if not lits:
        raise ValueError("at_least_one of an empty set is unsatisfiable")
    cnf.add(lits)


def at_most_one_pairwise(cnf: CNF, lits: list[int]) -> None:
    """Pairwise AMO: O(n^2) binary clauses, no auxiliary variables."""
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            cnf.add([-lits[i], -lits[j]])


def at_most_one_ladder(cnf: CNF, lits: list[int]) -> None:
    """Ladder (sequential) AMO: O(n) clauses with n-1 auxiliaries.

    Auxiliary ``s_i`` means "one of lits[0..i] is true"; the ladder forbids a
    second true literal after the prefix is already committed.
    """
    n = len(lits)
    if n <= 4:
        at_most_one_pairwise(cnf, lits)
        return
    prev = None
    for i in range(n - 1):
        s = cnf.pool.new_aux()
        cnf.add([-lits[i], s])  # lit_i -> s_i
        if prev is not None:
            cnf.add([-prev, s])  # s_{i-1} -> s_i
            cnf.add([-prev, -lits[i]])  # prefix true -> lit_i false
        prev = s
    cnf.add([-prev, -lits[n - 1]])


def at_most_one_commander(
    cnf: CNF, lits: list[int], group_size: int = 3
) -> None:
    """Commander AMO: recursively group literals under commander variables."""
    if group_size < 2:
        raise ValueError(f"group size must be >= 2, got {group_size}")
    current = list(lits)
    while len(current) > group_size:
        commanders: list[int] = []
        for start in range(0, len(current), group_size):
            group = current[start : start + group_size]
            if len(group) == 1:
                commanders.append(group[0])
                continue
            commander = cnf.pool.new_aux()
            at_most_one_pairwise(cnf, group)
            for lit in group:
                cnf.add([-lit, commander])  # member -> commander
            commanders.append(commander)
        current = commanders
    at_most_one_pairwise(cnf, current)


def at_most_k_sequential(cnf: CNF, lits: list[int], k: int) -> None:
    """Sinz's sequential counter encoding of ``sum(lits) <= k``."""
    n = len(lits)
    if k < 0:
        raise ValueError(f"bound must be non-negative, got {k}")
    if k == 0:
        for lit in lits:
            cnf.add([-lit])
        return
    if k >= n:
        return
    # registers[i][j] == "at least j+1 of lits[0..i] are true"
    registers = [[cnf.pool.new_aux() for _ in range(k)] for _ in range(n - 1)]
    cnf.add([-lits[0], registers[0][0]])
    for j in range(1, k):
        cnf.add([-registers[0][j]])
    for i in range(1, n - 1):
        cnf.add([-lits[i], registers[i][0]])
        cnf.add([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            cnf.add([-lits[i], -registers[i - 1][j - 1], registers[i][j]])
            cnf.add([-registers[i - 1][j], registers[i][j]])
        cnf.add([-lits[i], -registers[i - 1][k - 1]])
    cnf.add([-lits[n - 1], -registers[n - 2][k - 1]])


def at_least_k(cnf: CNF, lits: list[int], k: int) -> None:
    """``sum(lits) >= k`` (as at-most on the negations)."""
    if k <= 0:
        return
    if k > len(lits):
        # Unsatisfiable: more trues required than literals available.
        fresh = cnf.pool.new_aux()
        cnf.add([fresh])
        cnf.add([-fresh])
        return
    at_most_k_sequential(cnf, [-lit for lit in lits], len(lits) - k)


def exactly_one(cnf: CNF, lits: list[int], amo: str = "ladder") -> None:
    """Exactly one of ``lits`` is true.

    ``amo`` picks the at-most-one flavour: "pairwise", "ladder", or
    "commander" (the ablation bench compares them).
    """
    at_least_one(cnf, lits)
    encoders = {
        "pairwise": at_most_one_pairwise,
        "ladder": at_most_one_ladder,
        "commander": at_most_one_commander,
    }
    try:
        encoders[amo](cnf, lits)
    except KeyError:
        raise ValueError(f"unknown at-most-one encoding {amo!r}") from None


def exactly_k(cnf: CNF, lits: list[int], k: int) -> None:
    """``sum(lits) == k`` via sequential counters in both directions."""
    at_most_k_sequential(cnf, lits, k)
    at_least_k(cnf, lits, k)
