"""Tseitin / Plaisted–Greenbaum transformation of formulas to CNF.

The Tseitin transformation introduces one auxiliary variable per internal
formula node and emits clauses making the auxiliary equivalent to the node,
yielding an equisatisfiable CNF of linear size.  The Plaisted–Greenbaum
variant only emits the implication in the polarity the node actually occurs
in, roughly halving the clause count.
"""

from __future__ import annotations

from repro.logic.cnf import CNF
from repro.logic.formula import (
    And,
    FALSE,
    Formula,
    Iff,
    Implies,
    Not,
    TRUE,
    Or,
    Var,
    _Const,
)


def to_cnf(formula: Formula, cnf: CNF, polarity_aware: bool = True) -> None:
    """Assert ``formula`` in ``cnf`` (auxiliaries from ``cnf.pool``).

    With ``polarity_aware`` (default) the Plaisted–Greenbaum optimization is
    applied; otherwise the full Tseitin equivalences are emitted.
    """
    root = _simplify(formula)
    if root is TRUE:
        return
    if root is FALSE:
        # An unsatisfiable assertion: emit the canonical contradiction.
        fresh = cnf.pool.new_aux()
        cnf.add([fresh])
        cnf.add([-fresh])
        return
    transformer = _Transformer(cnf, polarity_aware)
    lit = transformer.encode(root, positive=True, negative=not polarity_aware)
    cnf.add([lit])


def _simplify(
    formula: Formula,
    memo: dict[int, tuple[Formula, Formula]] | None = None,
) -> Formula:
    """Push negations down and fold constants (one bottom-up pass).

    Identity-memoised so that shared subtrees stay shared (which lets the
    transformer's cache emit one auxiliary per shared node).  The memo keeps
    a strong reference to each key object — otherwise CPython could recycle
    the id of a collected temporary and serve a stale entry.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(formula))
    if cached is not None:
        return cached[1]
    result = _simplify_uncached(formula, memo)
    memo[id(formula)] = (formula, result)
    return result


def _simplify_uncached(formula: Formula, memo: dict[int, Formula]) -> Formula:
    if isinstance(formula, (Var, _Const)):
        return formula
    if isinstance(formula, Not):
        child = _simplify(formula.child, memo)
        if child is TRUE:
            return FALSE
        if child is FALSE:
            return TRUE
        if isinstance(child, Var):
            return Var(-child.lit)
        if isinstance(child, Not):
            return child.child
        # De Morgan: push the negation through so the result is in NNF —
        # the transformer's node cache is only sound when every internal
        # node occurs in a single polarity.
        if isinstance(child, And):
            return _simplify(Or(*[Not(c) for c in child.children]), memo)
        if isinstance(child, Or):
            return _simplify(And(*[Not(c) for c in child.children]), memo)
        return Not(child)
    if isinstance(formula, Implies):
        return _simplify(Or(Not(formula.left), formula.right), memo)
    if isinstance(formula, Iff):
        left = formula.left
        right = formula.right
        return _simplify(And(Or(Not(left), right), Or(left, Not(right))), memo)
    if isinstance(formula, And):
        children = []
        for child in formula.children:
            simple = _simplify(child, memo)
            if simple is FALSE:
                return FALSE
            if simple is not TRUE:
                children.append(simple)
        if not children:
            return TRUE
        if len(children) == 1:
            return children[0]
        return And(*children)
    if isinstance(formula, Or):
        children = []
        for child in formula.children:
            simple = _simplify(child, memo)
            if simple is TRUE:
                return TRUE
            if simple is not FALSE:
                children.append(simple)
        if not children:
            return FALSE
        if len(children) == 1:
            return children[0]
        return Or(*children)
    raise TypeError(f"unknown formula node {formula!r}")


class _Transformer:
    """Performs the clause emission; one instance per `to_cnf` call."""

    def __init__(self, cnf: CNF, polarity_aware: bool):
        self._cnf = cnf
        self._polarity_aware = polarity_aware
        # Cache: id(node) -> auxiliary literal, to share repeated subtrees
        # (identity-based: formula trees are immutable in practice).
        self._cache: dict[int, int] = {}

    def encode(self, node: Formula, positive: bool, negative: bool) -> int:
        """Return a literal equi-something to ``node``.

        ``positive``/``negative`` say in which polarities the defining
        implications are required.  After simplification only Var, Not(atom
        impossible — pushed), And and Or remain.
        """
        if isinstance(node, Var):
            return node.lit
        if isinstance(node, Not):
            # Negations above non-atoms survive only if _simplify left them:
            # it never does, but be safe.
            return -self.encode(node.child, negative, positive)
        if not isinstance(node, (And, Or)):
            raise TypeError(f"unexpected node after simplification: {node!r}")

        cached = self._cache.get(id(node))
        if cached is not None:
            return cached

        is_and = isinstance(node, And)
        child_lits = [
            self.encode(child, positive, negative) for child in node.children
        ]
        aux = self._cnf.pool.new_aux()
        if not self._polarity_aware:
            positive = negative = True
        if is_and:
            if positive:
                # aux -> child, for each child
                for lit in child_lits:
                    self._cnf.add([-aux, lit])
            if negative:
                # (all children) -> aux
                self._cnf.add([aux] + [-lit for lit in child_lits])
        else:
            if positive:
                # aux -> (c1 v c2 v ...)
                self._cnf.add([-aux] + child_lits)
            if negative:
                # child -> aux, for each child
                for lit in child_lits:
                    self._cnf.add([-lit, aux])
        self._cache[id(node)] = aux
        return aux
