"""Propositional-logic layer on top of the raw SAT solver.

This package provides everything needed to build the paper's symbolic
formulation conveniently and compactly:

* :class:`VarPool` / :class:`CNF` — named variable allocation and clause
  collection (``repro.logic.cnf``),
* a Boolean formula AST with operator overloading and a Tseitin /
  Plaisted–Greenbaum CNF transformation (``repro.logic.formula`` /
  ``repro.logic.tseitin``),
* cardinality constraint encodings — at-most-one in three flavours and
  at-most-k via sequential counters and totalizers
  (``repro.logic.cardinality`` / ``repro.logic.totalizer``).
"""

from repro.logic.cardinality import (
    at_least_k,
    at_least_one,
    at_most_k_sequential,
    at_most_one_commander,
    at_most_one_ladder,
    at_most_one_pairwise,
    exactly_k,
    exactly_one,
)
from repro.logic.cnf import CNF, VarPool
from repro.logic.formula import (
    And,
    FALSE,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
)
from repro.logic.totalizer import Totalizer
from repro.logic.tseitin import to_cnf

__all__ = [
    "CNF",
    "VarPool",
    "Formula",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "TRUE",
    "FALSE",
    "to_cnf",
    "at_least_one",
    "at_least_k",
    "at_most_one_pairwise",
    "at_most_one_ladder",
    "at_most_one_commander",
    "at_most_k_sequential",
    "exactly_one",
    "exactly_k",
    "Totalizer",
]
