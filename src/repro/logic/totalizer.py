"""The totalizer cardinality encoding (Bailleux & Boutaouche 2003).

A totalizer is a balanced binary tree that "sorts" its input literals: it
exposes output literals ``out[0..n-1]`` where ``out[i]`` is true iff at least
``i+1`` inputs are true.  Bounding the sum then reduces to asserting single
output literals, which makes the encoding ideal for the *incremental*
optimization loops in :mod:`repro.opt`: the tree is built once and tightening
the bound is a unit assumption per step.
"""

from __future__ import annotations

from repro.logic.cnf import CNF


class Totalizer:
    """Totalizer tree over ``lits``; clauses are emitted into ``cnf``.

    After construction, ``outputs[i]`` is a literal that is forced true when
    more than ``i`` inputs are true (counting from zero).  Use
    :meth:`bound_literal` to obtain the assumption literal enforcing
    ``sum <= k``.
    """

    def __init__(self, cnf: CNF, lits: list[int]):
        if not lits:
            raise ValueError("totalizer over an empty set of literals")
        self._cnf = cnf
        self.inputs = list(lits)
        self.outputs = self._build(self.inputs)

    def _build(self, lits: list[int]) -> list[int]:
        if len(lits) == 1:
            return [lits[0]]
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: list[int], right: list[int]) -> list[int]:
        """Emit merge clauses; return output literals of the merged node."""
        cnf = self._cnf
        total = len(left) + len(right)
        outputs = [cnf.pool.new_aux() for _ in range(total)]
        # Direction 1: "alpha + beta true inputs below -> out[alpha+beta-1]".
        for alpha in range(len(left) + 1):
            for beta in range(len(right) + 1):
                sigma = alpha + beta
                if sigma == 0:
                    continue
                clause: list[int] = []
                if alpha > 0:
                    clause.append(-left[alpha - 1])
                if beta > 0:
                    clause.append(-right[beta - 1])
                clause.append(outputs[sigma - 1])
                cnf.add(clause)
        # Direction 2: "out[sigma] -> at least sigma+1 true inputs below",
        # needed so that *lower* bounds (assert_at_least) actually propagate.
        for alpha in range(len(left) + 1):
            for beta in range(len(right) + 1):
                sigma = alpha + beta
                if sigma >= total:
                    continue
                clause = [-outputs[sigma]]
                if alpha < len(left):
                    clause.append(left[alpha])
                if beta < len(right):
                    clause.append(right[beta])
                cnf.add(clause)
        # Monotonicity of outputs: out[i+1] -> out[i].  (Implied by the merge
        # clauses for complete assignments but helps propagation.)
        for i in range(total - 1):
            cnf.add([-outputs[i + 1], outputs[i]])
        return outputs

    def bound_literal(self, k: int) -> int:
        """Literal that, when assumed, enforces ``sum(inputs) <= k``.

        ``k`` must be in ``[0, len(inputs) - 1]``; for ``k >= len(inputs)``
        the constraint is vacuous (no assumption needed).
        """
        if not 0 <= k < len(self.outputs):
            raise ValueError(
                f"bound {k} out of range for {len(self.outputs)} inputs"
            )
        return -self.outputs[k]

    def assert_at_most(self, k: int) -> None:
        """Permanently add ``sum(inputs) <= k`` as unit clauses."""
        for i in range(k, len(self.outputs)):
            self._cnf.add([-self.outputs[i]])

    def assert_at_least(self, k: int) -> None:
        """Permanently add ``sum(inputs) >= k`` as unit clauses."""
        if k > len(self.outputs):
            raise ValueError(
                f"cannot force {k} of {len(self.outputs)} literals true"
            )
        for i in range(k):
            self._cnf.add([self.outputs[i]])
