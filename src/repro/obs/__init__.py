"""Observability: span tracing, a metrics registry, and run reports.

Three cooperating pieces, all dependency-free and off by default:

* :mod:`repro.obs.trace` — hierarchical span tracing (``trace.span("solve")``,
  nestable, ~zero overhead when disabled) with JSONL and Chrome-trace/
  Perfetto export; worker-process spans survive ``fork`` and merge back
  into the parent trace.
* :mod:`repro.obs.metrics` — counters/gauges/histograms under stable dotted
  names, absorbing solver statistics, encoder constraint-family sizes,
  preprocessing effects, and portfolio race telemetry.
* :mod:`repro.obs.report` — :class:`RunReport`, a human-readable
  timing/metrics breakdown (the ``repro report`` subcommand).

The CLI exposes the layer as ``--trace FILE`` / ``--metrics FILE`` on the
task subcommands; library users install a tracer with
``trace.install(trace.Tracer())`` and read ``TaskResult.metrics``.
"""

from repro.obs import trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_json,
)
from repro.obs.report import RunReport
from repro.obs.trace import Tracer

__all__ = [
    "trace",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "read_json",
    "RunReport",
]
