"""Observability: spans, metrics, events, the phase profiler, reports.

Cooperating pieces, all dependency-free and off by default:

* :mod:`repro.obs.trace` — hierarchical span tracing (``trace.span("solve")``,
  nestable, ~zero overhead when disabled) with JSONL and Chrome-trace/
  Perfetto export; worker-process spans survive ``fork`` and merge back
  into the parent trace.
* :mod:`repro.obs.metrics` — counters/gauges/histograms under stable dotted
  names, absorbing solver statistics, encoder constraint-family sizes,
  preprocessing effects, and portfolio race telemetry.
* :mod:`repro.obs.profile` — the hot-path phase profiler: attributes CDCL
  search time to propagate/analyze/backtrack/decide/restart via sampled
  conflict intervals; exported as ``profile.*`` keys and rendered by
  ``repro top``.
* :mod:`repro.obs.events` — a bounded, monotonically-sequenced structured
  event stream (restarts, clause exchange, refinement rounds, descent
  improvements, checkpoints, deadline hits, worker crashes) with JSONL
  export (``--events``) and the ``--live`` single-line renderer.
* :mod:`repro.obs.keys` — the metric-key namespace catalog guarded by a
  lint-style test.
* :mod:`repro.obs.report` — :class:`RunReport`, a human-readable
  timing/metrics breakdown (the ``repro report`` subcommand).

The CLI exposes the layer as ``--trace``/``--metrics``/``--events``/
``--profile``/``--live`` on the task subcommands; library users install a
tracer with ``trace.install(trace.Tracer())``, an event log with
``events.install(events.EventLog())``, and read ``TaskResult.metrics``.
"""

from repro.obs import events, keys, profile, trace
from repro.obs.events import EventLog, LiveLine
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_json,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.report import RunReport
from repro.obs.trace import Tracer

__all__ = [
    "trace",
    "events",
    "keys",
    "profile",
    "Tracer",
    "EventLog",
    "LiveLine",
    "PhaseProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "read_json",
    "RunReport",
]
