"""Hierarchical span tracing with JSONL and Chrome-trace export.

The pipeline (discretize → encode → simplify → solve → decode → validate)
is instrumented with *spans*: named, nestable timing intervals.  Tracing is
off by default and the instrumentation points are written so that the
disabled path costs one module-global read and a no-op context manager —
measured under 2% of tier-1 wall time.

Usage::

    from repro.obs import trace

    tracer = trace.Tracer()
    trace.install(tracer)
    with trace.span("encode", trains=3):
        ...
    trace.write_jsonl(tracer.export(), "run.jsonl")
    trace.write_chrome_trace(tracer.export(), "run.trace.json")

The Chrome-trace JSON opens directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.

Timestamps are ``time.perf_counter()`` values.  On platforms with ``fork``
(the only platforms where the portfolio and batch runner parallelise) the
monotonic clock is shared between parent and children, so spans recorded in
worker processes and merged back via :func:`merge` line up with the parent's
spans on one common timeline; exports normalise all timestamps against the
earliest span.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

#: Span kinds: "span" = duration, "event" = instant marker, "counter" =
#: sampled values (rendered as counter tracks by Perfetto).
KINDS = ("span", "event", "counter")


@dataclass
class Span:
    """One recorded interval (or instant/counter event)."""

    name: str
    t0: float
    t1: float
    pid: int
    tid: str
    depth: int
    path: str
    args: dict = field(default_factory=dict)
    kind: str = "span"

    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "path": self.path,
            "args": self.args,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            name=record["name"],
            t0=record["t0"],
            t1=record["t1"],
            pid=record.get("pid", 0),
            tid=str(record.get("tid", "main")),
            depth=record.get("depth", 0),
            path=record.get("path", record["name"]),
            args=record.get("args", {}),
            kind=record.get("kind", "span"),
        )


class _SpanHandle:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_name", "_args", "_t0", "_path")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack
        self._path = (
            f"{stack[-1]}/{self._name}" if stack else self._name
        )
        stack.append(self._path)
        self._t0 = time.perf_counter()
        return self

    def add(self, **args) -> None:
        """Attach attributes to the span while it is open."""
        self._args.update(args)

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        tracer._stack.pop()
        if exc_type is not None:
            self._args.setdefault("error", exc_type.__name__)
        tracer.spans.append(
            Span(
                name=self._name,
                t0=self._t0,
                t1=t1,
                pid=tracer.pid,
                tid=tracer.tid,
                depth=len(tracer._stack),
                path=self._path,
                args=self._args,
            )
        )
        return False


class _NoopSpan:
    """Shared do-nothing span, returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, **args) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans for one process (one ``tid`` track)."""

    def __init__(self, tid: str = "main"):
        self.tid = tid
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self._stack: list[str] = []
        self.wall_epoch = time.time()
        self.origin = time.perf_counter()

    def span(self, name: str, **args) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        return _SpanHandle(self, name, args)

    def event(self, name: str, **args) -> None:
        """Record an instant marker (e.g. "descent improved to 3")."""
        now = time.perf_counter()
        parent = self._stack[-1] if self._stack else ""
        self.spans.append(
            Span(
                name=name,
                t0=now,
                t1=now,
                pid=self.pid,
                tid=self.tid,
                depth=len(self._stack),
                path=f"{parent}/{name}" if parent else name,
                args=args,
                kind="event",
            )
        )

    def counter(self, name: str, **values) -> None:
        """Record sampled numeric values (a Perfetto counter track)."""
        now = time.perf_counter()
        self.spans.append(
            Span(
                name=name,
                t0=now,
                t1=now,
                pid=self.pid,
                tid=self.tid,
                depth=0,
                path=name,
                args=values,
                kind="counter",
            )
        )

    def export(self) -> list[dict]:
        """The recorded spans as plain (picklable, JSON-able) dicts."""
        return [span.as_dict() for span in self.spans]

    def merge(self, records: list[dict]) -> None:
        """Absorb spans exported by another tracer (e.g. a fork child)."""
        self.spans.extend(Span.from_dict(record) for record in records)


# ----------------------------------------------------------------------
# Module-global tracer (what the instrumentation points talk to)
# ----------------------------------------------------------------------

_TRACER: Tracer | None = None


def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns it."""
    global _TRACER
    _TRACER = tracer
    return tracer


def reset() -> None:
    """Disable tracing (the default state)."""
    global _TRACER
    _TRACER = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def enabled() -> bool:
    """Whether tracing is currently on."""
    return _TRACER is not None


def span(name: str, **args):
    """Open a span on the global tracer (no-op when tracing is off)."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **args)


def event(name: str, **args) -> None:
    """Record an instant event on the global tracer (no-op when off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **args)


def counter(name: str, **values) -> None:
    """Record counter samples on the global tracer (no-op when off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.counter(name, **values)


def merge(records: list[dict] | None) -> None:
    """Merge exported child spans into the global tracer (no-op when off)."""
    tracer = _TRACER
    if tracer is not None and records:
        tracer.merge(records)


def export_spans() -> list[dict]:
    """Export the global tracer's spans ([] when tracing is off)."""
    tracer = _TRACER
    return tracer.export() if tracer is not None else []


def fork_child(tid: str) -> Tracer:
    """Fresh tracer for a worker process; install in the child, export,
    and :func:`merge` the result back in the parent."""
    return Tracer(tid=tid)


# ----------------------------------------------------------------------
# Serialisation: JSONL and Chrome trace format
# ----------------------------------------------------------------------


def write_jsonl(records: list[dict], path: str) -> None:
    """Write spans as JSON Lines (one span object per line)."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> list[dict]:
    """Read spans written by :func:`write_jsonl`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def to_chrome_trace(records: list[dict]) -> dict:
    """Convert span dicts to the Chrome trace event format.

    The result is a ``{"traceEvents": [...]}`` object accepted by Perfetto
    and ``chrome://tracing``.  Timestamps are microseconds relative to the
    earliest span, so parent and merged-worker spans share one timeline.
    """
    if records:
        base = min(record["t0"] for record in records)
    else:
        base = 0.0
    events = []
    for record in records:
        kind = record.get("kind", "span")
        ts = (record["t0"] - base) * 1e6
        common = {
            "name": record["name"],
            "pid": record.get("pid", 0),
            "tid": str(record.get("tid", "main")),
            "ts": ts,
        }
        if kind == "counter":
            events.append(
                {**common, "ph": "C", "args": record.get("args", {})}
            )
        elif kind == "event":
            events.append(
                {
                    **common,
                    "ph": "i",
                    "s": "t",
                    "args": record.get("args", {}),
                }
            )
        else:
            events.append(
                {
                    **common,
                    "ph": "X",
                    "dur": (record["t1"] - record["t0"]) * 1e6,
                    "args": {
                        **record.get("args", {}),
                        "path": record.get("path", record["name"]),
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: list[dict], path: str) -> None:
    """Write spans as a Chrome-trace JSON file (open in Perfetto)."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(records), handle)
