"""Bounded, monotonically-sequenced structured event stream.

Where :mod:`repro.obs.trace` records *how long* things took, this module
records *what happened*: restarts, learned-clause export/import, lazy
refinement rounds, descent bound improvements, checkpoint writes, deadline
hits, worker crashes.  Events are kept in a bounded ring (oldest dropped
first, with a drop counter) and exported as JSON Lines via ``--events``.

The module-global API mirrors :mod:`repro.obs.trace`: instrumentation
points call :func:`emit` (one global read + no-op when disabled), the CLI
installs an :class:`EventLog` around a run, and fork workers (portfolio
members, service workers) install a fresh child log via :func:`fork_child`,
ship :meth:`EventLog.drain` output in their outcome/reply dicts, and the
parent absorbs it with :func:`merge`.  Timestamps are ``perf_counter``
values on the fork-shared monotonic clock, so :meth:`EventLog.export`
can re-sequence the merged stream into one monotone order.

An optional ``listener`` receives every locally-emitted *and* merged event
record; the ``--live`` single-line progress renderer (:class:`LiveLine` +
:func:`live_listener`) is built on it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque

#: Default ring capacity; generous for real runs, small enough to bound
#: worker→parent reply payloads.
DEFAULT_CAPACITY = 10000


class EventLog:
    """Bounded ring of structured events for one process."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        source: str = "main",
        listener=None,
    ):
        self.capacity = max(1, int(capacity))
        self.source = source
        self.pid = os.getpid()
        self.listener = listener
        self.dropped = 0
        self._seq = 0
        self._events: deque = deque()

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, kind: str, **args) -> None:
        """Record one event (and notify the listener, if any)."""
        self._seq += 1
        record = {
            "seq": self._seq,
            "t": time.perf_counter(),
            "kind": kind,
            "source": self.source,
            "pid": self.pid,
            "args": args,
        }
        self._append(record)

    def _append(self, record: dict) -> None:
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(record)
        if self.listener is not None:
            try:
                self.listener(record)
            except Exception:
                pass

    def merge(self, records) -> None:
        """Absorb events drained from a child log (fork worker)."""
        for record in records or ():
            self._append(dict(record))

    def export(self) -> list[dict]:
        """All retained events, re-sequenced monotonically by timestamp.

        Merged worker events interleave with the parent's on the shared
        ``perf_counter`` timeline; ``seq`` is rewritten to the global
        monotone order (ties broken by arrival order).
        """
        ordered = sorted(
            self._events, key=lambda record: record.get("t", 0.0)
        )
        out = []
        for index, record in enumerate(ordered, start=1):
            clone = dict(record)
            clone["seq"] = index
            out.append(clone)
        return out

    def drain(self) -> list[dict]:
        """Export raw retained events and clear the ring (worker side:
        ship per-probe deltas without re-sending history)."""
        out = [dict(record) for record in self._events]
        self._events.clear()
        return out

    def counts(self) -> dict:
        """Per-kind event counts (for metrics / quick summaries)."""
        out: dict = {}
        for record in self._events:
            key = record.get("kind", "?")
            out[key] = out.get(key, 0) + 1
        return out


# ----------------------------------------------------------------------
# Module-global log (what the instrumentation points talk to)
# ----------------------------------------------------------------------

_LOG: EventLog | None = None


def install(log: EventLog) -> EventLog:
    """Install ``log`` as the process-global event log; returns it."""
    global _LOG
    _LOG = log
    return log


def reset() -> None:
    """Disable event recording (the default state)."""
    global _LOG
    _LOG = None


def get_log() -> EventLog | None:
    """The installed log, or None when events are disabled."""
    return _LOG


def enabled() -> bool:
    """Whether event recording is currently on."""
    return _LOG is not None


def emit(kind: str, **args) -> None:
    """Emit an event on the global log (no-op when disabled)."""
    log = _LOG
    if log is not None:
        log.emit(kind, **args)


def merge(records) -> None:
    """Merge drained child events into the global log (no-op when off)."""
    log = _LOG
    if log is not None and records:
        log.merge(records)


def export_events() -> list[dict]:
    """Export the global log's events ([] when disabled)."""
    log = _LOG
    return log.export() if log is not None else []


def drain_events() -> list[dict]:
    """Drain the global log (worker side; [] when disabled)."""
    log = _LOG
    return log.drain() if log is not None else []


def fork_child(source: str, capacity: int = DEFAULT_CAPACITY) -> EventLog:
    """Fresh log for a worker process; install in the child, ship
    :meth:`EventLog.drain` output in the outcome, :func:`merge` in the
    parent."""
    return EventLog(capacity=capacity, source=source)


# ----------------------------------------------------------------------
# JSONL I/O
# ----------------------------------------------------------------------


def write_jsonl(records: list[dict], path: str) -> None:
    """Write events as JSON Lines (one event object per line)."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> list[dict]:
    """Read events written by :func:`write_jsonl`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Live single-line progress renderer (--live)
# ----------------------------------------------------------------------


class LiveLine:
    """Single-line carriage-return progress renderer for a terminal.

    Writes throttled ``\\r``-prefixed updates to ``stream`` (stderr by
    default), padding with spaces so a shorter line fully overwrites a
    longer one, and finishes with a newline on :meth:`close`.
    """

    def __init__(self, stream=None, min_interval_s: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._last_len = 0
        self._last_write = 0.0
        self._wrote = False

    def update(self, text: str, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_write < self.min_interval_s:
            return
        self._last_write = now
        pad = " " * max(0, self._last_len - len(text))
        try:
            self.stream.write("\r" + text + pad)
            self.stream.flush()
        except Exception:
            return
        self._last_len = len(text)
        self._wrote = True

    def close(self) -> None:
        if self._wrote:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except Exception:
                pass
            self._wrote = False


def live_listener(line: LiveLine, label: str = "run"):
    """Event listener rendering progress/descent events onto ``line``.

    Tracks the latest solver progress snapshot, best descent cost, lazy
    refinement round, and notable one-off events (deadline hits, crashes)
    and renders them as one summary line.
    """
    state = {
        "conflicts": 0, "propagations": 0, "restarts": 0,
        "cost": None, "round": None, "note": None, "probes": 0,
    }

    def render(force: bool = False) -> None:
        parts = [
            f"{label}:",
            f"conflicts {state['conflicts']:,}",
            f"props {state['propagations']:,}",
            f"restarts {state['restarts']:,}",
        ]
        if state["probes"]:
            parts.append(f"probes {state['probes']}")
        if state["cost"] is not None:
            parts.append(f"best {state['cost']}")
        if state["round"] is not None:
            parts.append(f"round {state['round']}")
        if state["note"]:
            parts.append(f"[{state['note']}]")
        line.update(" ".join(parts), force=force)

    def on_event(record: dict) -> None:
        kind = record.get("kind", "")
        args = record.get("args", {})
        if kind == "progress":
            for key in ("conflicts", "propagations", "restarts"):
                value = args.get(key)
                if isinstance(value, (int, float)):
                    state[key] = max(state[key], int(value))
            render()
        elif kind == "descent.improved":
            state["cost"] = args.get("cost", state["cost"])
            render(force=True)
        elif kind == "lazy.round":
            state["round"] = args.get("round", state["round"])
            render(force=True)
        elif kind == "probe.done":
            state["probes"] += 1
            render()
        elif kind in ("deadline.hit", "worker.crash"):
            state["note"] = kind
            render(force=True)
        elif kind == "fuzz.scenario":
            state["note"] = (
                f"scenario {args.get('index', '?')}/{args.get('count', '?')}"
            )
            render(force=True)

    return on_event


def progress_callback(interval_conflicts: int = 2000):
    """An ``on_progress``-shaped hook forwarding solver snapshots to the
    trace counter track and the event stream, or None when both are off.

    Serial call sites attach this to their solver; fork workers build
    their own (the enabled state is checked at attach time).
    """
    from repro.obs import trace

    trace_on = trace.enabled()
    events_on = enabled()
    if not (trace_on or events_on):
        return None

    def hook(snapshot: dict) -> None:
        if trace_on:
            trace.counter("solver.progress", **snapshot)
        if events_on:
            emit("progress", **snapshot)

    return hook
