"""Human-readable run reports from a trace + a metrics payload.

:class:`RunReport` aggregates the spans of one run into a timing tree
(total time and share of wall clock per span path, across all processes)
and appends the metrics registry content — the terminal-friendly
counterpart of opening the Chrome trace in Perfetto.  The ``repro report``
CLI subcommand is a thin wrapper over this module.
"""

from __future__ import annotations

from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:8.2f}ms"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class RunReport:
    """Aggregated timing/metrics breakdown of one run."""

    def __init__(
        self,
        spans: list[dict] | None = None,
        metrics: dict | None = None,
    ):
        self.spans = [
            span for span in (spans or [])
            if span.get("kind", "span") == "span"
        ]
        self.events = [
            span for span in (spans or [])
            if span.get("kind") == "event"
        ]
        self.metrics = metrics or {}

    @classmethod
    def from_files(
        cls,
        trace_path: str | None = None,
        metrics_path: str | None = None,
    ) -> "RunReport":
        spans = trace_mod.read_jsonl(trace_path) if trace_path else []
        metrics = metrics_mod.read_json(metrics_path) if metrics_path else {}
        return cls(spans, metrics)

    # -- aggregation ---------------------------------------------------

    def wall_time_s(self) -> float:
        """End-to-end wall clock covered by the trace."""
        if not self.spans:
            return 0.0
        return max(s["t1"] for s in self.spans) - min(
            s["t0"] for s in self.spans
        )

    def timing_rows(self) -> list[tuple[str, int, float]]:
        """``(path, count, total_seconds)`` rows, in first-seen order."""
        totals: dict[str, list] = {}
        for span in sorted(self.spans, key=lambda s: s["t0"]):
            path = span.get("path", span["name"])
            entry = totals.get(path)
            if entry is None:
                totals[path] = [1, span["t1"] - span["t0"]]
            else:
                entry[0] += 1
                entry[1] += span["t1"] - span["t0"]
        return [
            (path, count, total) for path, (count, total) in totals.items()
        ]

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        lines: list[str] = []
        wall = self.wall_time_s()
        if self.spans:
            pids = {span.get("pid", 0) for span in self.spans}
            tracks = {
                (span.get("pid", 0), span.get("tid", "main"))
                for span in self.spans
            }
            lines.append(
                f"Trace: {len(self.spans)} spans, {len(pids)} process(es), "
                f"{len(tracks)} track(s), wall {wall:.3f}s"
            )
            lines.append("")
            header = f"{'span':<44}{'count':>7}{'total':>11}{'% wall':>9}"
            lines.append(header)
            lines.append("-" * len(header))
            for path, count, total in self.timing_rows():
                depth = path.count("/")
                name = "  " * depth + path.rsplit("/", 1)[-1]
                share = (100.0 * total / wall) if wall > 0 else 0.0
                lines.append(
                    f"{name:<44}{count:>7}{_format_seconds(total):>11}"
                    f"{share:>8.1f}%"
                )
            if self.events:
                lines.append("")
                lines.append(f"Events: {len(self.events)}")
                for event in self.events[:20]:
                    args = ", ".join(
                        f"{k}={_format_value(v)}"
                        for k, v in event.get("args", {}).items()
                    )
                    lines.append(f"  {event['name']}  {args}")
                if len(self.events) > 20:
                    lines.append(f"  ... {len(self.events) - 20} more")
        if self.metrics:
            if lines:
                lines.append("")
            lines.append(f"Metrics: {len(self.metrics)} keys")
            lines.append("")
            for name, value in sorted(self.metrics.items()):
                if isinstance(value, dict):  # histogram summary
                    mean = value.get("mean")
                    detail = (
                        f"n={value.get('count', 0)}"
                        " mean="
                        f"{_format_value(mean) if mean is not None else '-'}"
                        f" min={_format_value(value.get('min'))}"
                        f" max={_format_value(value.get('max'))}"
                    )
                    lines.append(f"  {name:<44}{detail}")
                else:
                    lines.append(f"  {name:<44}{_format_value(value)}")
        if not lines:
            lines.append("(empty report: no spans and no metrics)")
        return "\n".join(lines)
