"""Human-readable run reports from a trace + a metrics payload.

:class:`RunReport` aggregates the spans of one run into a timing tree
(total time and share of wall clock per span path, across all processes)
and appends the metrics registry content — the terminal-friendly
counterpart of opening the Chrome trace in Perfetto.  The ``repro report``
CLI subcommand is a thin wrapper over this module.

The ``--metrics`` file may also be a fuzz-report artifact
(``repro fuzz --report``): its embedded ``scenario.*`` metrics render
through the same path, prefixed by a per-scenario verdict summary.

:func:`read_history` / :func:`format_trend` render the per-key
performance trajectories of a ``BENCH_HISTORY.jsonl`` file
(``benchmarks/history.py``) for the ``repro trend`` subcommand.
"""

from __future__ import annotations

import json

from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:8.2f}ms"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class RunReport:
    """Aggregated timing/metrics breakdown of one run."""

    def __init__(
        self,
        spans: list[dict] | None = None,
        metrics: dict | None = None,
        fuzz: dict | None = None,
    ):
        self.spans = [
            span for span in (spans or [])
            if span.get("kind", "span") == "span"
        ]
        self.events = [
            span for span in (spans or [])
            if span.get("kind") == "event"
        ]
        self.metrics = metrics or {}
        self.fuzz = fuzz

    @classmethod
    def from_files(
        cls,
        trace_path: str | None = None,
        metrics_path: str | None = None,
    ) -> "RunReport":
        spans = trace_mod.read_jsonl(trace_path) if trace_path else []
        metrics = metrics_mod.read_json(metrics_path) if metrics_path else {}
        fuzz = None
        if isinstance(metrics.get("records"), list) and isinstance(
            metrics.get("metrics"), dict
        ):
            # A ``repro fuzz --report`` artifact: lift its embedded
            # registry so the ``scenario.*`` keys render normally.
            fuzz = metrics
            metrics = metrics["metrics"]
        return cls(spans, metrics, fuzz)

    # -- aggregation ---------------------------------------------------

    def wall_time_s(self) -> float:
        """End-to-end wall clock covered by the trace."""
        if not self.spans:
            return 0.0
        return max(s["t1"] for s in self.spans) - min(
            s["t0"] for s in self.spans
        )

    def timing_rows(self) -> list[tuple[str, int, float]]:
        """``(path, count, total_seconds)`` rows, in first-seen order."""
        totals: dict[str, list] = {}
        for span in sorted(self.spans, key=lambda s: s["t0"]):
            path = span.get("path", span["name"])
            entry = totals.get(path)
            if entry is None:
                totals[path] = [1, span["t1"] - span["t0"]]
            else:
                entry[0] += 1
                entry[1] += span["t1"] - span["t0"]
        return [
            (path, count, total) for path, (count, total) in totals.items()
        ]

    # -- rendering -----------------------------------------------------

    def fuzz_rows(self) -> list[str]:
        """One summary line per fuzz record (empty unless the metrics
        payload was a fuzz-report artifact)."""
        if not self.fuzz:
            return []
        rows = []
        for record in self.fuzz.get("records", []):
            verdicts = record.get("verdicts", {})
            verdict = "?"
            if verdicts:
                first = next(iter(verdicts.values()))
                verdict = "SAT" if first else "UNSAT"
            agree = (
                record.get("verdicts_agree", True)
                and record.get("optima_agree", True)
            )
            rows.append(
                f"  seed {record.get('seed', '?'):<10} "
                f"{record.get('name', '?'):<28} {verdict:<6}"
                f"{'agree' if agree else 'DISAGREE'}"
            )
        return rows

    def render(self) -> str:
        lines: list[str] = []
        wall = self.wall_time_s()
        if self.fuzz:
            ok = self.fuzz.get("ok")
            lines.append(
                f"Fuzz run: seed {self.fuzz.get('seed', '?')}, "
                f"{len(self.fuzz.get('records', []))} scenario(s), "
                f"{'all paths agree' if ok else 'DISAGREEMENTS FOUND'}"
            )
            lines.extend(self.fuzz_rows())
            lines.append("")
        if self.spans:
            pids = {span.get("pid", 0) for span in self.spans}
            tracks = {
                (span.get("pid", 0), span.get("tid", "main"))
                for span in self.spans
            }
            lines.append(
                f"Trace: {len(self.spans)} spans, {len(pids)} process(es), "
                f"{len(tracks)} track(s), wall {wall:.3f}s"
            )
            lines.append("")
            header = f"{'span':<44}{'count':>7}{'total':>11}{'% wall':>9}"
            lines.append(header)
            lines.append("-" * len(header))
            for path, count, total in self.timing_rows():
                depth = path.count("/")
                name = "  " * depth + path.rsplit("/", 1)[-1]
                share = (100.0 * total / wall) if wall > 0 else 0.0
                lines.append(
                    f"{name:<44}{count:>7}{_format_seconds(total):>11}"
                    f"{share:>8.1f}%"
                )
            if self.events:
                lines.append("")
                lines.append(f"Events: {len(self.events)}")
                for event in self.events[:20]:
                    args = ", ".join(
                        f"{k}={_format_value(v)}"
                        for k, v in event.get("args", {}).items()
                    )
                    lines.append(f"  {event['name']}  {args}")
                if len(self.events) > 20:
                    lines.append(f"  ... {len(self.events) - 20} more")
        if self.metrics:
            if lines:
                lines.append("")
            kernels = {
                key[len("solver.kernel."):]: value
                for key, value in self.metrics.items()
                if key.startswith("solver.kernel.")
            }
            if kernels:
                # Which CDCL engine(s) answered (the dual-build kernel
                # selection, see repro.sat.kernel), counted per solve.
                lines.append(
                    "SAT engine: " + ", ".join(
                        f"{kind} ({int(count)} solve call(s))"
                        for kind, count in sorted(kernels.items())
                    )
                )
                lines.append("")
            lines.append(f"Metrics: {len(self.metrics)} keys")
            lines.append("")
            for name, value in sorted(self.metrics.items()):
                if isinstance(value, dict):  # histogram summary
                    mean = value.get("mean")
                    detail = (
                        f"n={value.get('count', 0)}"
                        " mean="
                        f"{_format_value(mean) if mean is not None else '-'}"
                        f" min={_format_value(value.get('min'))}"
                        f" max={_format_value(value.get('max'))}"
                    )
                    lines.append(f"  {name:<44}{detail}")
                else:
                    lines.append(f"  {name:<44}{_format_value(value)}")
        if not lines:
            lines.append("(empty report: no spans and no metrics)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Bench-history trajectories (``repro trend``)
# ----------------------------------------------------------------------


def read_history(path: str) -> list[dict]:
    """Read a ``BENCH_HISTORY.jsonl`` file (``benchmarks/history.py``).

    Each line is one bench run: ``{"sha", "time", "bench", "metrics"}``.
    Undecodable lines (torn appends) are skipped.
    """
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "metrics" in record:
                records.append(record)
    return records


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float]) -> str:
    finite = [v for v in values if isinstance(v, (int, float))]
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    if high - low < 1e-12:
        return _SPARK_GLYPHS[0] * len(values)
    out = []
    for value in values:
        frac = (value - low) / (high - low)
        out.append(_SPARK_GLYPHS[int(frac * (len(_SPARK_GLYPHS) - 1))])
    return "".join(out)


def format_trend(
    records: list[dict],
    bench: str | None = None,
    keys: list[str] | None = None,
    last: int = 20,
) -> str:
    """Render per-key performance trajectories across bench runs.

    ``bench`` filters to one benchmark name; ``keys`` to matching metric
    keys (substring match); ``last`` bounds how many most-recent runs
    feed each trajectory.
    """
    if bench:
        records = [r for r in records if r.get("bench") == bench]
    if not records:
        return "no history records found" + (
            f" for bench {bench!r}" if bench else ""
        )
    series: dict[tuple[str, str], list[tuple[str, float]]] = {}
    for record in records:
        name = record.get("bench", "?")
        sha = str(record.get("sha", "?"))[:9]
        for key, value in sorted(record.get("metrics", {}).items()):
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            if keys and not any(fragment in key for fragment in keys):
                continue
            series.setdefault((name, key), []).append((sha, value))
    if not series:
        return "no numeric metric keys matched"
    lines = []
    benches = sorted({name for name, __ in series})
    for name in benches:
        runs = sum(1 for r in records if r.get("bench") == name)
        lines.append(f"{name}  ({runs} run(s))")
        for (bench_name, key), points in sorted(series.items()):
            if bench_name != name:
                continue
            tail = points[-last:]
            values = [v for __, v in tail]
            latest_sha, latest = tail[-1]
            spark = _sparkline(values)
            lo, hi = min(values), max(values)
            lines.append(
                f"  {key:<40} {spark:<{last}} "
                f"last {_format_value(latest)} @ {latest_sha}  "
                f"[{_format_value(lo)} .. {_format_value(hi)}]"
            )
        lines.append("")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
