"""Catalog of metric-key namespaces.

Every metric key in the repository is dotted — ``solver.propagations``,
``lazy.rounds``, ``profile.propagate.time_s`` — and its first component
names the subsystem that owns it.  This module is the single source of
truth for those namespaces: :data:`PREFIXES` lists every allowed first
component, and ``tests/test_obs_keys.py`` AST-scans the source tree for
literal metric registrations to keep new ``foo.*`` families from drifting
in silently.  Adding a namespace is deliberate: extend :data:`PREFIXES`
(alphabetical) with a one-line comment saying which module owns it.
"""

from __future__ import annotations

#: Allowed first components of dotted metric keys, by owning subsystem.
PREFIXES = frozenset({
    "batch",        # tasks/batch.py — parallel scenario batches
    "bench",        # benchmarks/*.py — benchmark gauges
    "checkpoint",   # opt/checkpoint.py — descent checkpoint I/O
    "deadline",     # deadline governance (solver, descents, tasks)
    "descent",      # opt/minimize.py — linear/binary descent counters
    "diagnosis",    # tasks/verification.py — unsat-core diagnosis
    "encoder",      # encoding/encoder.py — encoding size counters
    "events",       # obs/events.py — event-stream bookkeeping
    "fuzz",         # scenarios/fuzz.py — fuzz-harness events
    "gateway",      # gateway/server.py — always-on solve gateway
    "lazy",         # encoding/lazy.py — CEGAR refinement counters
    "portfolio",    # sat/portfolio.py — one-shot portfolio counters
    "profile",      # obs/profile.py — hot-path phase profiler
    "retry",        # sat/service.py — worker retry/backoff counters
    "scenario",     # scenarios/fuzz.py — per-scenario fuzz metrics
    "service",      # sat/service.py — persistent solver service
    "share",        # sat/service.py — learned-clause exchange
    "simplify",     # encoding/simplify.py — preprocessing counters
    "solver",       # sat/solver.py stats via absorb_solver_stats
    "task",         # tasks/*.py — task-level runtime gauges
})


def prefix_of(key: str) -> str:
    """The namespace component of a dotted metric key."""
    return key.partition(".")[0]


def is_catalogued(key: str) -> bool:
    """Whether ``key``'s namespace is registered in :data:`PREFIXES`."""
    return prefix_of(key) in PREFIXES


def check_keys(keys) -> list[str]:
    """Return the keys whose namespace is *not* catalogued (sorted)."""
    return sorted({key for key in keys if not is_catalogued(key)})
