"""Hot-path phase profiler for the CDCL search loop.

The ROADMAP's top open item — compiling the CDCL hot path — needs evidence
first: where does :meth:`Solver._search` actually spend its time?  This
module provides a :class:`PhaseProfiler` that attributes wall time and
operation counts to the five phases of the search loop

    propagate · analyze · backtrack · decide · restart

with *amortized* clock reads: every operation is counted (two dict
increments), but ``time.perf_counter`` is only read during *sampled
conflict intervals* — the stretch of search between two conflicts, sampled
one in every ``sample_period``.  Total per-phase time is then estimated by
scaling the sampled time by the op-count ratio, which keeps the overhead
well under 5% while the shares still sum to ~100%.

The profiler exports a flat dict of additive numeric counters (see
:meth:`PhaseProfiler.as_counters`) that rides inside ``SolverStats`` —
snapshot/delta/merge work per-key, so per-probe service deltas and
portfolio fork-merges need no special casing.  :func:`profile_summary`
derives the per-phase estimates and shares from the raw counters and
:func:`format_top` renders the ``repro top`` attribution table.

Deliberately dependency-free (stdlib only) so :mod:`repro.sat.solver` can
import it without pulling in the rest of the observability stack.
"""

from __future__ import annotations

import time

PHASES = ("propagate", "analyze", "backtrack", "decide", "restart")


class PhaseProfiler:
    """Samples per-phase wall time over conflict intervals.

    ``sample_period`` selects how often a conflict interval is timed: 1
    times everything, the default 16 reads the clock during ~6% of the
    search.  Counters are cumulative over the profiler's (= the solver's)
    lifetime; consumers diff them per solve via ``SolverStats.delta``.
    """

    __slots__ = (
        "period", "active", "intervals", "sampled_intervals",
        "counts", "sampled", "times",
    )

    def __init__(self, sample_period: int = 16) -> None:
        self.period = max(1, int(sample_period))
        # The first interval is always sampled so short solves still get
        # a timing signal.
        self.active = True
        self.intervals = 1
        self.sampled_intervals = 1
        self.counts = {phase: 0 for phase in PHASES}
        self.sampled = {phase: 0 for phase in PHASES}
        self.times = {phase: 0.0 for phase in PHASES}

    def on_conflict(self) -> None:
        """Advance to the next conflict interval; decide whether to time it."""
        self.intervals += 1
        active = (self.intervals % self.period) == 0
        if active:
            self.sampled_intervals += 1
        self.active = active

    def run(self, phase, fn, *args):
        """Count one ``phase`` operation, timing it if the interval is
        sampled, and return ``fn(*args)``."""
        self.counts[phase] += 1
        if not self.active:
            return fn(*args)
        start = time.perf_counter()
        result = fn(*args)
        self.times[phase] += time.perf_counter() - start
        self.sampled[phase] += 1
        return result

    def as_counters(self) -> dict:
        """Flat additive counters (``propagate.time_s``, ``decide.count``,
        ...) suitable for per-key snapshot/delta/merge."""
        out: dict = {
            "intervals": self.intervals,
            "sampled_intervals": self.sampled_intervals,
        }
        for phase in PHASES:
            out[f"{phase}.count"] = self.counts[phase]
            out[f"{phase}.sampled"] = self.sampled[phase]
            out[f"{phase}.time_s"] = self.times[phase]
        return out


def extract_profile(metrics: dict) -> dict:
    """Pull the profile counters out of a flat metrics/stats mapping.

    Accepts keys with or without the ``profile.`` / ``solver.profile.``
    prefixes and returns them unprefixed (``propagate.time_s`` ...).
    """
    out: dict = {}
    for key, value in metrics.items():
        for prefix in ("solver.profile.", "profile."):
            if key.startswith(prefix):
                out[key[len(prefix):]] = value
                break
        else:
            if key.partition(".")[0] in PHASES or key in (
                "intervals", "sampled_intervals"
            ):
                out[key] = value
    return out


def merge_profiles(dicts) -> dict:
    """Sum flat profile-counter dicts (portfolio/service fork-merge)."""
    merged: dict = {}
    for entry in dicts:
        if not entry:
            continue
        for key, value in entry.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


def profile_summary(counters: dict) -> dict:
    """Derive per-phase time estimates and shares from raw counters.

    Sampled time is scaled by ``count / sampled`` per phase (phases whose
    interval was never sampled keep their raw time).  Shares are the
    estimated times normalised to sum to 1.0.
    """
    phases: dict = {}
    total_est = 0.0
    for phase in PHASES:
        count = counters.get(f"{phase}.count", 0)
        sampled = counters.get(f"{phase}.sampled", 0)
        time_s = counters.get(f"{phase}.time_s", 0.0)
        est = time_s * (count / sampled) if sampled else time_s
        phases[phase] = {
            "count": count,
            "sampled": sampled,
            "time_s": time_s,
            "est_time_s": est,
        }
        total_est += est
    dominant = None
    for phase, row in phases.items():
        row["share"] = row["est_time_s"] / total_est if total_est else 0.0
        if dominant is None or row["est_time_s"] > phases[dominant]["est_time_s"]:
            dominant = phase
    return {
        "phases": phases,
        "dominant": dominant,
        "total_est_s": total_est,
        "intervals": counters.get("intervals", 0),
        "sampled_intervals": counters.get("sampled_intervals", 0),
    }


def format_top(metrics: dict) -> str:
    """Render the hot-path attribution table for ``repro top``.

    ``metrics`` is a flat metrics (or solver-stats) mapping as written by
    ``--metrics``; profile keys may carry the ``profile.`` or
    ``solver.profile.`` prefix.
    """
    counters = extract_profile(metrics)
    summary = profile_summary(counters)
    if summary["total_est_s"] <= 0 and not any(
        row["count"] for row in summary["phases"].values()
    ):
        return (
            "no profile data found — rerun with --profile "
            "(and --metrics FILE) to record the hot-path attribution"
        )
    lines = ["hot-path phase attribution (estimated from sampled intervals)"]
    lines.append(
        f"  {'phase':<10} {'est time':>10} {'share':>7} "
        f"{'ops':>12} {'sampled':>9}"
    )
    ordered = sorted(
        summary["phases"].items(),
        key=lambda kv: kv[1]["est_time_s"],
        reverse=True,
    )
    for phase, row in ordered:
        lines.append(
            f"  {phase:<10} {row['est_time_s']:>9.3f}s "
            f"{row['share'] * 100:>6.1f}% {row['count']:>12d} "
            f"{row['sampled']:>9d}"
        )
    lines.append(
        f"  {'total':<10} {summary['total_est_s']:>9.3f}s "
        f"{sum(r['share'] for r in summary['phases'].values()) * 100:>6.1f}%"
    )
    if summary["dominant"]:
        lines.append(f"dominant phase: {summary['dominant']}")
    lines.append(
        f"intervals: {summary['intervals']} "
        f"(sampled {summary['sampled_intervals']})"
    )
    for key, label in (
        ("profile.props_per_s", "props/s"),
        ("profile.conflicts_per_s", "conflicts/s"),
    ):
        value = metrics.get(key, metrics.get("solver." + key))
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"{label}: {value:,.0f}")
    return "\n".join(lines)
